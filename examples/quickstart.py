#!/usr/bin/env python
"""Quickstart: map a stencil application onto a torus with RAHTM.

Builds a 2-D halo-exchange workload (256 tasks), maps it onto a 4x4x4
torus (concentration factor 4) with RAHTM and with the platform-default
dimension-order mapping, and compares the mapping-quality metrics and the
simulated execution time.

Run:  python examples/quickstart.py
"""

from repro import RAHTMConfig, RAHTMMapper, evaluate_mapping, torus
from repro.baselines import DimOrderMapper
from repro.routing import MinimalAdaptiveRouter
from repro.simulator import NetworkModel, calibrate_compute, halo_application


def main() -> None:
    topology = torus(4, 4, 4)
    app = halo_application((16, 16), volume=64_000.0, iterations=200)
    graph = app.comm_graph()
    print(f"topology: {topology.describe()}")
    print(f"workload: {graph}")

    router = MinimalAdaptiveRouter(topology)
    network = NetworkModel(router)

    default = DimOrderMapper(topology).map(graph)
    # Calibrate compute so the default mapping spends ~40% communicating.
    app = calibrate_compute(app, default, network, 0.40)

    config = RAHTMConfig(beam_width=16, max_orientations=24,
                         milp_time_limit=30.0, seed=0)
    mapper = RAHTMMapper(topology, config)
    mapping = mapper.map(graph)

    print("\nmapping quality (lower is better):")
    for label, m in [("default (dim order)", default), ("RAHTM", mapping)]:
        report = evaluate_mapping(router, m, graph)
        sim = app.simulate(m, network)
        print(f"  {label:<20} {report}")
        print(
            f"  {'':<20} simulated: total {sim.total_seconds:.3f}s, "
            f"comm {sim.comm_seconds:.3f}s "
            f"({sim.comm_fraction:.0%} of execution)"
        )
    print("\nRAHTM phase timing:")
    print(mapper.timer.report())


if __name__ == "__main__":
    main()
