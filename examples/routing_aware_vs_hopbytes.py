#!/usr/bin/env python
"""Figure 1 as a runnable demo: why hop-bytes misleads adaptive routers.

Maps a four-process graph with one dominant pair onto a 2x2 mesh two ways
and prints per-channel loads, showing the hop-bytes optimum concentrating
the heavy flow on one link while the MCL optimum splits it across the two
minimal paths of the diagonal.

Run:  python examples/routing_aware_vs_hopbytes.py
"""

import numpy as np

from repro import CommGraph, Mapping, evaluate_mapping
from repro.core.milp import brute_force_mapping
from repro.routing import MinimalAdaptiveRouter
from repro.topology import mesh


def show(label: str, mapping: Mapping, graph, router) -> None:
    report = evaluate_mapping(router, mapping, graph)
    print(f"\n{label}")
    print(f"  placement: task -> node {mapping.task_to_node.tolist()}")
    print(f"  {report}")
    srcs, dsts, vols = mapping.network_flows(graph)
    loads = router.link_loads(srcs, dsts, vols)
    topo = router.topology
    for slot in np.flatnonzero(loads > 0):
        u = int(topo.channel_src[slot])
        v = int(topo.channel_dst[slot])
        print(f"  channel {topo.coords(u).tolist()} -> "
              f"{topo.coords(v).tolist()}: load {loads[slot]:.1f}")


def main() -> None:
    heavy, light = 100.0, 1.0
    graph = CommGraph.from_edges(4, [
        (0, 1, heavy), (1, 0, heavy),
        (0, 2, light), (2, 0, light),
        (1, 3, light), (3, 1, light),
        (2, 3, light), (3, 2, light),
    ])
    topo = mesh(2, 2)
    router = MinimalAdaptiveRouter(topo)

    # Hop-bytes optimum: the heavy pair adjacent (nodes 0 and 1).
    show("hop-bytes-optimal mapping (routing-unaware)",
         Mapping(topo, [0, 1, 2, 3]), graph, router)

    # MCL optimum under all-minimal-paths routing: found exhaustively,
    # equals what the Table II MILP returns.
    result = brute_force_mapping(topo, graph, evaluator="uniform")
    show("MCL-optimal mapping (routing-aware, the RAHTM objective)",
         Mapping(topo, result.assignment), graph, router)

    print("\nThe routing-aware mapping halves the hottest channel: the "
          "heavy pair sits on the diagonal so adaptive routing spreads it "
          "over two disjoint minimal paths (paper, Figure 1).")


if __name__ == "__main__":
    main()
