#!/usr/bin/env python
"""Section VI applied: RAHTM-style mapping on fat-trees and dragonflies.

The paper claims its ideas extend to any partitionable topology. This
example maps NAS CG onto a fat-tree and a dragonfly with the hierarchical
mappers from ``repro.extensions`` and compares against naive and random
placement — the same MCL story on three different networks.

Run:  python examples/other_topologies.py
"""

import numpy as np

from repro import Mapping, evaluate_mapping
from repro.extensions import (
    Dragonfly,
    DragonflyMapper,
    DragonflyRouter,
    FatTree,
    FatTreeMapper,
    FatTreeRouter,
)
from repro.workloads import nas_cg


def compare(label, topology, router, mapper, graph, seed=0):
    print(f"\n{label}: {topology.describe()}")
    conc = graph.num_tasks // topology.num_nodes
    rng = np.random.default_rng(seed)
    candidates = {
        "naive (rank order)": Mapping(
            topology, np.arange(graph.num_tasks) // conc, tasks_per_node=conc
        ),
        "random": Mapping(
            topology, rng.permutation(graph.num_tasks) // conc,
            tasks_per_node=conc,
        ),
        "hierarchical (RAHTM-style)": mapper.map(graph),
    }
    for name, mapping in candidates.items():
        report = evaluate_mapping(router, mapping, graph)
        print(f"  {name:<28} MCL={report.mcl:12.4g} "
              f"hop-bytes={report.hop_bytes:12.4g}")


def main() -> None:
    graph = nas_cg(128, "W")

    ft = FatTree(arity=2, levels=6)  # 64 leaves, concentration 2
    compare("fat-tree", ft, FatTreeRouter(ft), FatTreeMapper(ft), graph)

    df = Dragonfly(groups=4, routers_per_group=8, hosts_per_router=2,
                   global_per_router=1)  # 64 hosts, concentration 2
    compare("dragonfly", df, DragonflyRouter(df), DragonflyMapper(df), graph)

    print("\nSame objective, same hierarchy idea, three topologies — the "
          "portability the paper's Section VI argues for.")


if __name__ == "__main__":
    main()
