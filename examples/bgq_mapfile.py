#!/usr/bin/env python
"""Produce a BG/Q mapfile for a NAS CG run — the paper's deliverable.

RAHTM is an offline tool: its output is a mapfile the BG/Q MPI runtime
consumes on every subsequent run. This example profiles CG through the
virtual-MPI recorder (the IPM stand-in), maps it with RAHTM onto a small
BG/Q partition, writes the mapfile, and reads it back to verify.

Run:  python examples/bgq_mapfile.py [output_path]
"""

import sys

from repro import RAHTMConfig, RAHTMMapper, evaluate_mapping
from repro.baselines import DimOrderMapper
from repro.mapping import read_mapfile, write_mapfile
from repro.profile import VirtualMPI, profile_commgraph
from repro.routing import MinimalAdaptiveRouter
from repro.topology import BGQTopology
from repro.workloads import nas_cg


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "cg_rahtm.map"
    # A small BG/Q sub-partition: 4x4x4x2x2 nodes, 2 tasks per node. The
    # non-uniform D/E dimensions exercise the paper's partition-and-stitch
    # path (Section III-B).
    bgq = BGQTopology(shape=(4, 4, 4, 2, 2), tasks_per_node=2)
    print(f"platform: {bgq}")

    # 1. "Profile" the application: replay CG's traffic through the
    #    virtual-MPI recorder and aggregate it IPM-style.
    reference = nas_cg(bgq.num_tasks, "W")
    vm = VirtualMPI(bgq.num_tasks)
    for s, d, v in zip(reference.srcs, reference.dsts, reference.vols):
        vm.send(int(s), int(d), float(v))
    graph, ipm = profile_commgraph(vm)
    print()
    print(ipm.banner())

    # 2. Map offline with RAHTM.
    config = RAHTMConfig(beam_width=16, max_orientations=16,
                         milp_time_limit=20.0, seed=0)
    mapping = RAHTMMapper(bgq, config).map(graph)
    router = MinimalAdaptiveRouter(bgq.network)
    print(f"\nRAHTM:   {evaluate_mapping(router, mapping, graph)}")
    default = DimOrderMapper(bgq, "ABCDET").map(graph)
    print(f"ABCDET:  {evaluate_mapping(router, default, graph)}")

    # 3. Emit the mapfile the MPI runtime would consume, and verify it.
    write_mapfile(out_path, mapping, bgq)
    recovered = read_mapfile(out_path, bgq)
    assert (recovered.task_to_node == mapping.task_to_node).all()
    print(f"\nwrote {mapping.num_tasks}-rank mapfile to {out_path!r} "
          "(A B C D E T per line) and verified the round-trip")


if __name__ == "__main__":
    main()
