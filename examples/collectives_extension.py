#!/usr/bin/env python
"""Section VI extension: mapping applications with collectives.

The paper's profiling could not see inside collectives; Section VI
proposes expanding each collective into its *implementation's*
point-to-point pattern. This example maps an application whose traffic is
dominated by allreduce, expanded two ways (recursive doubling vs a ring
allgather-based implementation), and shows RAHTM adapts the mapping to the
algorithm actually used.

Run:  python examples/collectives_extension.py
"""

from repro import RAHTMConfig, RAHTMMapper, evaluate_mapping, torus
from repro.baselines import DimOrderMapper
from repro.profile import VirtualMPI
from repro.routing import MinimalAdaptiveRouter
from repro.workloads import halo2d


def build_graph(num_ranks: int, algorithm: str):
    """A stencil application plus a heavy per-iteration allreduce."""
    vm = VirtualMPI(num_ranks)
    halo = halo2d(8, 8, volume=1_000.0)
    for s, d, v in zip(halo.srcs, halo.dsts, halo.vols):
        vm.send(int(s), int(d), float(v))
    vm.collective(algorithm, nbytes=50_000.0)
    return vm.comm_graph()


def main() -> None:
    topo = torus(4, 4)
    router = MinimalAdaptiveRouter(topo)
    config = RAHTMConfig(beam_width=16, max_orientations=16,
                         milp_time_limit=15.0, seed=0)

    for algorithm in ("allreduce-recursive-doubling", "allgather-ring"):
        graph = build_graph(64, algorithm)
        rahtm = RAHTMMapper(topo, config).map(graph)
        default = DimOrderMapper(topo).map(graph)
        r_rep = evaluate_mapping(router, rahtm, graph)
        d_rep = evaluate_mapping(router, default, graph)
        print(f"\ncollective implementation: {algorithm}")
        print(f"  default MCL {d_rep.mcl:10.1f}   RAHTM MCL {r_rep.mcl:10.1f} "
              f"({100 * (1 - r_rep.mcl / d_rep.mcl):+.0f}%)")
    print("\nThe two implementations produce different traffic and "
          "different optimal mappings — exactly why Section VI insists the "
          "expansion must follow the implementation, not the MPI call name.")


if __name__ == "__main__":
    main()
