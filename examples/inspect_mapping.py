#!/usr/bin/env python
"""Inspect where a mapping puts load: grids, histograms, per-dimension bars.

Maps NAS BT two ways (default dimension order vs RAHTM) and renders the
text diagnostics from ``repro.visualize`` — the load histogram's right
tail is the contention RAHTM exists to squash.

Run:  python examples/inspect_mapping.py
"""

from repro import RAHTMConfig, RAHTMMapper, torus
from repro.baselines import DimOrderMapper
from repro.routing import MinimalAdaptiveRouter
from repro.visualize import (
    dimension_load_text,
    load_histogram_text,
    mapping_grid_text,
)
from repro.workloads import nas_bt


def main() -> None:
    topo = torus(4, 4)
    graph = nas_bt(64, "W")  # 8x8 multipartition grid, concentration 4
    router = MinimalAdaptiveRouter(topo)

    mappers = {
        "default (ABT)": DimOrderMapper(topo),
        "RAHTM": RAHTMMapper(topo, RAHTMConfig(
            beam_width=16, max_orientations=16, milp_time_limit=15.0,
            refine_iterations=1000, seed=0,
        )),
    }
    for label, mapper in mappers.items():
        mapping = mapper.map(graph)
        print(f"\n=== {label} ===")
        print(mapping_grid_text(mapping))
        print()
        print(dimension_load_text(router, mapping, graph))
        print()
        print(load_histogram_text(router, mapping, graph, bins=8))


if __name__ == "__main__":
    main()
