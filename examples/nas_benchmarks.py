#!/usr/bin/env python
"""The paper's evaluation in miniature: NAS BT/SP/CG across all mappers.

Regenerates Figure 8 (overall execution time), Figure 9 (communication
fraction) and Figure 10 (communication time) at a configurable scale.

Run:  python examples/nas_benchmarks.py [tiny|small|medium|paper]

``tiny`` (default) finishes in ~2 minutes; ``small`` in ~5-10 minutes;
``paper`` is the full 16,384-task BG/Q configuration and runs for hours —
matching the paper's own offline-mapping budget.
"""

import sys

from repro.experiments import fig8, fig9, fig10, run_comparison
from repro.utils.logconf import enable_console_logging


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    enable_console_logging()
    result = run_comparison(scale)
    print()
    print(fig8.from_comparison(result).to_text())
    print()
    print(fig9.from_comparison(result).to_text())
    print()
    print(fig10.from_comparison(result).to_text())
    print()
    print(result.mapping_seconds.to_text())
    rahtm = fig8.from_comparison(result).get("geomean", "RAHTM")
    print(
        f"\nRAHTM mean execution-time change: {100 * (rahtm - 1):+.1f}% "
        f"(paper: -9% at 16K tasks)"
    )


if __name__ == "__main__":
    main()
