"""Figure 7 — the phase-3 beam merge.

Benchmarks one full hierarchical merge on the walk-through example and
prints the MCL-vs-beam-width table showing the search's contribution.
"""

from repro.core.clustering import build_cluster_hierarchy
from repro.core.merge import MergeConfig, hierarchical_merge
from repro.core.pseudo_pin import pseudo_pin
from repro.experiments import fig7
from repro.routing import MinimalAdaptiveRouter
from repro.topology import CubeHierarchy, torus
from repro.workloads import random_uniform


def test_fig7_walkthrough(benchmark, capsys):
    table = benchmark(fig7.run)
    with capsys.disabled():
        print()
        print(table.to_text())


def test_fig7_merge_beam64(benchmark):
    topo = torus(4, 4)
    cube_h = CubeHierarchy(topo)
    graph = random_uniform(16, 64, max_volume=50.0, seed=7)
    hierarchy = build_cluster_hierarchy(graph, 16, 4, 2)
    pin = pseudo_pin(hierarchy, cube_h, time_limit=20.0)
    router = MinimalAdaptiveRouter(topo)

    def merge():
        return hierarchical_merge(
            topo, router, cube_h, hierarchy.node_graph,
            pin.cluster_to_node, MergeConfig(beam_width=64, seed=0),
        )

    assignment, stats = benchmark(merge)
    assert stats["evaluations"] > 0
