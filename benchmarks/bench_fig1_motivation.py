"""Figure 1 — the routing-awareness motivation example.

Regenerates the 2x2 comparison: the hop-bytes-optimal placement leaves the
heavy pair on a single channel (MCL == heavy volume) while the MCL-optimal
placement halves it by exploiting both minimal paths.
"""

from repro.experiments import fig1


def test_fig1_motivation(benchmark, capsys):
    table = benchmark(fig1.run)
    assert table.get("MCL/MAR", "MCL") < table.get("hop-bytes", "MCL")
    with capsys.disabled():
        print()
        print(table.to_text())
