"""Ablations of RAHTM's design decisions (Section III discussion).

- **Beam width** (the paper's N = 64): quality vs cost of the merge beam.
- **Routing awareness**: the same pipeline evaluated with the MCL/MAR
  objective vs dimension-order routing, and vs the hop-bytes annealer —
  the Figure 1 argument at workload scale.
- **MILP vs greedy phase 2**: the paper's "optimal leaf solve" choice.
- **Phase-overlap sensitivity**: the simulator's one free parameter swept
  over [0, 1] to show RAHTM's win is not an artifact of the default 0.5.
"""

import pytest

from repro.baselines import DimOrderMapper, HopBytesMapper
from repro.core.rahtm import RAHTMConfig, RAHTMMapper
from repro.experiments.report import Table
from repro.metrics import evaluate_mapping
from repro.routing import MinimalAdaptiveRouter
from repro.simulator import NetworkModel, NetworkParams
from repro.simulator.apps import cg_application
from repro.simulator.app import calibrate_compute
from repro.workloads import nas_cg


@pytest.fixture(scope="module")
def cg_setup(scale):
    topo = scale.topology()
    graph = nas_cg(scale.num_tasks, scale.problem_class)
    router = MinimalAdaptiveRouter(topo)
    return topo, graph, router


def _cfg(scale, **kw):
    base = scale.rahtm
    return RAHTMConfig(**{**base.__dict__, **kw})


@pytest.mark.parametrize("beam", [1, 8, 64])
def test_ablation_beam_width(benchmark, cg_setup, scale, beam, capsys):
    topo, graph, router = cg_setup
    cfg = _cfg(scale, beam_width=beam)

    def run():
        return RAHTMMapper(topo, cfg).map(graph)

    mapping = benchmark.pedantic(run, rounds=1, iterations=1)
    mcl = evaluate_mapping(router, mapping, graph).mcl
    with capsys.disabled():
        print(f"\nbeam={beam}: CG MCL={mcl:.4g}")


def test_ablation_routing_awareness(benchmark, cg_setup, scale, capsys):
    """RAHTM's own objective vs routing-unaware alternatives."""
    topo, graph, router = cg_setup
    table = Table("Ablation: objective/routing awareness (CG MCL)")

    def run_all():
        from repro.baselines import RecursiveBisectionMapper

        out = {}
        out["rahtm-mar"] = RAHTMMapper(topo, _cfg(scale)).map(graph)
        out["rahtm-dor"] = RAHTMMapper(
            topo, _cfg(scale, routing="dor")
        ).map(graph)
        out["anneal-hopbytes"] = HopBytesMapper(
            topo, "hopbytes", iterations=3000, seed=0
        ).map(graph)
        out["recursive-bisection"] = RecursiveBisectionMapper(
            topo, seed=0
        ).map(graph)
        out["default"] = DimOrderMapper(topo).map(graph)
        return out

    mappings = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for label, mapping in mappings.items():
        table.set(label, "MCL", evaluate_mapping(router, mapping, graph).mcl)
    with capsys.disabled():
        print()
        print(table.to_text())
    assert table.get("rahtm-mar", "MCL") <= table.get("default", "MCL")


def test_ablation_milp_vs_greedy_phase2(benchmark, cg_setup, scale, capsys):
    topo, graph, router = cg_setup

    def run_both():
        milp = RAHTMMapper(topo, _cfg(scale, use_milp=True)).map(graph)
        greedy = RAHTMMapper(topo, _cfg(scale, use_milp=False)).map(graph)
        return milp, greedy

    milp, greedy = benchmark.pedantic(run_both, rounds=1, iterations=1)
    m_mcl = evaluate_mapping(router, milp, graph).mcl
    g_mcl = evaluate_mapping(router, greedy, graph).mcl
    with capsys.disabled():
        print(f"\nphase2 MILP MCL={m_mcl:.4g} vs greedy MCL={g_mcl:.4g}")


def test_ablation_fluid_vs_mcl_model(benchmark, cg_setup, scale, capsys):
    """Second-opinion timing model: does RAHTM's win survive max-min fair
    fluid simulation of each phase (no MCL abstraction)?"""
    from repro.simulator.fluid import FluidPhaseSimulator
    from repro.simulator.apps import cg_application as build_cg

    topo, graph, router = cg_setup
    default = DimOrderMapper(topo).map(graph)
    rahtm = RAHTMMapper(topo, _cfg(scale)).map(graph)
    app = build_cg(scale.num_tasks, scale.problem_class)
    fluid = FluidPhaseSimulator(router, link_bandwidth=1.8e9)

    def run():
        out = {}
        for label, mapping in (("default", default), ("rahtm", rahtm)):
            total = 0.0
            for phase in app.phases:
                srcs, dsts, vols = mapping.network_flows(phase)
                total += fluid.phase_time(srcs, dsts, vols)
            out[label] = total
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = times["rahtm"] / times["default"]
    with capsys.disabled():
        print(f"\nfluid-model comm ratio (RAHTM/default, serialized "
              f"phases): {ratio:.3f}")


def test_ablation_timing_models_cross_check(benchmark, cg_setup, scale,
                                            capsys):
    """Three timing models (MCL drain, max-min fluid, adaptive packet DES)
    on the same phase: they must agree within a small factor, validating
    the analytic abstraction the paper optimizes."""
    from repro.simulator.des import AdaptivePacketSimulator
    from repro.simulator.fluid import FluidPhaseSimulator

    topo, graph, router = cg_setup
    mapping = DimOrderMapper(topo).map(graph)
    srcs, dsts, vols = mapping.network_flows(graph)
    # scale volumes down so the DES packet budget is comfortable
    scale_f = 1e-3
    bw = 1.8e9 * scale_f

    def run():
        mcl_t = router.link_loads(srcs, dsts, vols * scale_f).max() / bw
        fluid_t = FluidPhaseSimulator(router, bw).phase_time(
            srcs, dsts, vols * scale_f
        )
        des = AdaptivePacketSimulator(
            topo, link_bandwidth=bw,
            packet_bytes=max(float(vols.max() * scale_f / 8), 1.0),
            hop_latency=0.0,
        )
        des_t = des.phase_time(srcs, dsts, vols * scale_f)
        return mcl_t, fluid_t, des_t

    mcl_t, fluid_t, des_t = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\ntiming models on CG aggregate: MCL {mcl_t * 1e3:.3f}ms  "
              f"fluid {fluid_t * 1e3:.3f}ms  DES {des_t * 1e3:.3f}ms")
    assert fluid_t >= mcl_t * 0.999
    assert 0.5 * mcl_t <= des_t <= 4.0 * mcl_t


def test_ablation_phase_overlap_sweep(benchmark, cg_setup, scale, capsys):
    """RAHTM's simulated win across the phase-overlap parameter."""
    topo, graph, router = cg_setup
    default = DimOrderMapper(topo).map(graph)
    rahtm = RAHTMMapper(topo, _cfg(scale)).map(graph)
    app = cg_application(scale.num_tasks, scale.problem_class)
    table = Table("Ablation: comm-time ratio (RAHTM/default) vs phase overlap")

    def sweep():
        out = {}
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            net = NetworkModel(router, NetworkParams(phase_overlap=alpha))
            capp = calibrate_compute(app, default, net, 0.72)
            ratio = (
                capp.simulate(rahtm, net).comm_seconds
                / capp.simulate(default, net).comm_seconds
            )
            out[alpha] = ratio
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for alpha, ratio in ratios.items():
        table.set(f"overlap={alpha}", "comm_ratio", ratio)
    with capsys.disabled():
        print()
        print(table.to_text())
    # full overlap = pure aggregate-MCL regime: RAHTM must win there
    assert ratios[1.0] < 1.0
