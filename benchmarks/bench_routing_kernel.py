"""Microbenchmarks of the MCL-evaluation kernel.

Phase 3 performs tens of thousands of link-load evaluations; these benches
track the throughput of the stencil scatter-add engine that makes the
merge search affordable.
"""

import numpy as np
import pytest

from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter
from repro.topology import torus


@pytest.fixture(scope="module")
def flows444():
    topo = torus(4, 4, 4)
    rng = np.random.default_rng(0)
    m = 2000
    srcs = rng.integers(0, topo.num_nodes, m)
    dsts = rng.integers(0, topo.num_nodes, m)
    vols = rng.uniform(1, 100, m)
    return topo, srcs, dsts, vols


def test_mar_link_loads_2000_flows(benchmark, flows444):
    topo, srcs, dsts, vols = flows444
    router = MinimalAdaptiveRouter(topo)
    router.link_loads(srcs, dsts, vols)  # warm the stencil cache
    loads = benchmark(router.link_loads, srcs, dsts, vols)
    assert loads.max() > 0


def test_dor_link_loads_2000_flows(benchmark, flows444):
    topo, srcs, dsts, vols = flows444
    router = DimensionOrderRouter(topo)
    router.link_loads(srcs, dsts, vols)
    loads = benchmark(router.link_loads, srcs, dsts, vols)
    assert loads.max() > 0


def test_mar_stencil_construction(benchmark):
    topo = torus(8, 8, 8)

    def build():
        router = MinimalAdaptiveRouter(topo)
        return router.stencil((4, 4, 4))  # worst case: ties everywhere

    st = benchmark(build)
    assert st.num_entries > 0
