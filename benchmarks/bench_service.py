"""Service-layer benchmarks: cold vs. warm engine runs, batch overhead.

Quantifies the two wins the job engine buys: parallel fan-out of the
mapper x workload grid and warm-cache reruns that skip mapper work
entirely. The warm path should be orders of magnitude faster than cold.
"""

from __future__ import annotations

import pytest

from repro.service import (
    MapperConfig,
    MappingEngine,
    MappingJob,
    TopologySpec,
    WorkloadSpec,
)

MAPPER_CONFIGS = [
    MapperConfig.make("dimorder", order="ABT"),
    MapperConfig.make("dimorder", order="TAB"),
    MapperConfig.make("hilbert"),
    MapperConfig.make("rubik"),
]
WORKLOADS = ["halo2d:8x8", "ring:64", "transpose:8", "bisection:64"]


def _grid_jobs():
    return [
        MappingJob(TopologySpec((8, 8)), WorkloadSpec(workload), config)
        for workload in WORKLOADS
        for config in MAPPER_CONFIGS
    ]


def test_bench_engine_cold(benchmark):
    """Uncached serial engine pass over the 4x4 job grid."""

    def cold():
        engine = MappingEngine(jobs=1)
        outcomes = engine.run(_grid_jobs())
        assert all(o.ok for o in outcomes)
        return engine.stats.executed

    assert benchmark(cold) == len(WORKLOADS) * len(MAPPER_CONFIGS)


def test_bench_engine_warm(benchmark, tmp_path):
    """Warm-cache pass: every job answered from the result store."""
    cache = tmp_path / "cache"
    MappingEngine(cache_dir=cache).run(_grid_jobs())

    def warm():
        engine = MappingEngine(cache_dir=cache)
        outcomes = engine.run(_grid_jobs())
        assert all(o.result.from_cache for o in outcomes)
        return engine.stats.cache_hits

    assert benchmark(warm) == len(WORKLOADS) * len(MAPPER_CONFIGS)


@pytest.mark.parametrize("jobs", [1, 4])
def test_bench_engine_fanout(benchmark, jobs):
    """Pool fan-out vs. serial on the same uncached grid."""

    def run():
        outcomes = MappingEngine(jobs=jobs).run(_grid_jobs())
        assert all(o.ok for o in outcomes)

    benchmark.pedantic(run, rounds=3, iterations=1)
