"""Service-layer benchmarks: cold vs. warm engine runs, batch overhead.

Quantifies the two wins the job engine buys: parallel fan-out of the
mapper x workload grid and warm-cache reruns that skip mapper work
entirely. The warm path should be orders of magnitude faster than cold.
"""

from __future__ import annotations

import pytest

from repro.service import (
    MapperConfig,
    MappingEngine,
    MappingJob,
    ResultStore,
    TopologySpec,
    WorkloadSpec,
)

MAPPER_CONFIGS = [
    MapperConfig.make("dimorder", order="ABT"),
    MapperConfig.make("dimorder", order="TAB"),
    MapperConfig.make("hilbert"),
    MapperConfig.make("rubik"),
]
WORKLOADS = ["halo2d:8x8", "ring:64", "transpose:8", "bisection:64"]


def _grid_jobs():
    return [
        MappingJob(TopologySpec((8, 8)), WorkloadSpec(workload), config)
        for workload in WORKLOADS
        for config in MAPPER_CONFIGS
    ]


def test_bench_engine_cold(benchmark):
    """Uncached serial engine pass over the 4x4 job grid."""

    def cold():
        engine = MappingEngine(jobs=1)
        outcomes = engine.run(_grid_jobs())
        assert all(o.ok for o in outcomes)
        return engine.stats.executed

    assert benchmark(cold) == len(WORKLOADS) * len(MAPPER_CONFIGS)


def test_bench_engine_warm(benchmark, tmp_path):
    """Warm-cache pass: every job answered from the result store."""
    cache = tmp_path / "cache"
    MappingEngine(cache_dir=cache).run(_grid_jobs())

    def warm():
        engine = MappingEngine(cache_dir=cache)
        outcomes = engine.run(_grid_jobs())
        assert all(o.result.from_cache for o in outcomes)
        return engine.stats.cache_hits

    assert benchmark(warm) == len(WORKLOADS) * len(MAPPER_CONFIGS)


@pytest.mark.parametrize("jobs", [1, 4])
def test_bench_engine_fanout(benchmark, jobs):
    """Pool fan-out vs. serial on the same uncached grid."""

    def run():
        outcomes = MappingEngine(jobs=jobs).run(_grid_jobs())
        assert all(o.ok for o in outcomes)

    benchmark.pedantic(run, rounds=3, iterations=1)


_STORE_PAYLOAD = {"mapping": list(range(256)), "report": {"mcl": 123.5}}


@pytest.mark.parametrize("fsync", [True, False], ids=["fsync", "nofsync"])
def test_bench_store_put_durable(benchmark, tmp_path, fsync):
    """Commit-protocol cost per put (checksum + tmp/rename, +-fsync)."""
    store = ResultStore(tmp_path / "cache", fsync=fsync)
    keys = [f"{i:02x}" * 32 for i in range(64)]

    def puts():
        for key in keys:
            store.put(key, _STORE_PAYLOAD)

    benchmark(puts)


def test_bench_store_get_verified(benchmark, tmp_path):
    """Read path: every get re-verifies the envelope's SHA-256."""
    store = ResultStore(tmp_path / "cache", fsync=False)
    keys = [f"{i:02x}" * 32 for i in range(64)]
    for key in keys:
        store.put(key, _STORE_PAYLOAD)

    def gets():
        for key in keys:
            assert store.get(key) is not None

    benchmark(gets)
