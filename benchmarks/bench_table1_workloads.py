"""Table I — benchmark workload generation.

Benchmarks the communication-graph generators and prints the Table I
summary (suite, structure, volume) produced through the virtual-MPI/IPM
profiling path.
"""

from repro.experiments import table1
from repro.workloads import nas_bt, nas_cg, nas_sp


def test_table1_generate_bt(benchmark, scale):
    g = benchmark(nas_bt, scale.num_tasks, scale.problem_class)
    assert g.num_edges > 0


def test_table1_generate_sp(benchmark, scale):
    g = benchmark(nas_sp, scale.num_tasks, scale.problem_class)
    assert g.num_edges > 0


def test_table1_generate_cg(benchmark, scale):
    g = benchmark(nas_cg, scale.num_tasks, scale.problem_class)
    assert g.num_edges > 0


def test_table1_report(benchmark, scale, capsys):
    table = benchmark(table1.run, scale)
    with capsys.disabled():
        print()
        print(table.to_text())
