#!/usr/bin/env python
"""Emit a schema-versioned benchmark snapshot for the CI perf gate.

Runs the standard mapper x benchmark grid (``repro.experiments.runner``)
at one scale, collects per-cell mapping quality (MCL — deterministic)
and timing (map seconds + RAHTM per-phase wall times — noisy), and
writes one JSON document::

    {
      "schema": 1,
      "scale": "tiny",
      "repeats": 3,
      "phases": {"phase1-concentration": 0.012, ...},   # min over repeats
      "cells": {"BT": {"RAHTM": {"mcl": ..., "map_seconds": ...}, ...}}
    }

Timings take the *minimum* over ``--repeat`` runs, the standard
noise-suppression trick for wall-clock benchmarks. The committed
baseline lives at ``benchmarks/BENCH_PR3.json``;
``benchmarks/compare_snapshots.py`` gates CI on it.

Usage::

    PYTHONPATH=src python benchmarks/snapshot.py --scale tiny \
        --out benchmarks/BENCH_PR3.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SNAPSHOT_SCHEMA_VERSION = 1


def run_grid(scale_name: str) -> dict:
    """One pass over the grid; returns phases + per-cell numbers."""
    from repro.experiments.config import get_scale
    from repro.experiments.runner import (
        benchmark_workload_specs,
        default_mapper_configs,
    )
    from repro.service.engine import MappingEngine
    from repro.service.jobs import MappingJob, TopologySpec, WorkloadSpec

    scale = get_scale(scale_name)
    topo_spec = TopologySpec.from_topology(scale.topology())
    cells: dict[str, dict] = {}
    phases: dict[str, float] = {}
    # No cache: a snapshot that hit the store would report 0s timings.
    engine = MappingEngine(cache_dir=None)
    for bench, workload in benchmark_workload_specs(scale).items():
        cells[bench] = {}
        for label, config in default_mapper_configs(scale):
            job = MappingJob(
                topology=topo_spec,
                workload=WorkloadSpec(workload, seed=0),
                mapper=config,
            )
            result = engine.run_one(job)
            cells[bench][label] = {
                "mcl": result.report.mcl,
                "map_seconds": result.map_seconds,
            }
            for phase, seconds in (result.phase_seconds or {}).items():
                phases[phase] = phases.get(phase, 0.0) + seconds
    return {"phases": phases, "cells": cells}


def merge_min(runs: list[dict]) -> dict:
    """Fold repeats: min for timings, first run's MCLs (deterministic)."""
    out = {
        "phases": dict(runs[0]["phases"]),
        "cells": {
            b: {m: dict(v) for m, v in row.items()}
            for b, row in runs[0]["cells"].items()
        },
    }
    for run in runs[1:]:
        for phase, seconds in run["phases"].items():
            out["phases"][phase] = min(out["phases"].get(phase, seconds), seconds)
        for bench, row in run["cells"].items():
            for label, cell in row.items():
                mine = out["cells"][bench][label]
                mine["map_seconds"] = min(mine["map_seconds"], cell["map_seconds"])
                if mine["mcl"] != cell["mcl"]:
                    raise SystemExit(
                        f"non-deterministic MCL for {bench}/{label}: "
                        f"{mine['mcl']} vs {cell['mcl']}"
                    )
    return out


def take_snapshot(scale: str, repeats: int) -> dict:
    runs = [run_grid(scale) for _ in range(max(repeats, 1))]
    merged = merge_min(runs)
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "scale": scale,
        "repeats": max(repeats, 1),
        "phases": {k: merged["phases"][k] for k in sorted(merged["phases"])},
        "cells": merged["cells"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="tiny",
        help="experiment scale (default: tiny)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="runs to min-fold timings over (default: 3)",
    )
    parser.add_argument("--out", default="-", help="output path ('-' = stdout)")
    args = parser.parse_args(argv)
    snap = take_snapshot(args.scale, args.repeat)
    text = json.dumps(snap, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
