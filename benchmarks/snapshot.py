#!/usr/bin/env python
"""Emit a schema-versioned benchmark snapshot for the CI perf gate.

Runs the standard mapper x benchmark grid (``repro.experiments.runner``)
at one scale, collects per-cell mapping quality (MCL — deterministic)
and timing (map seconds + RAHTM per-phase wall times — noisy), and
writes one JSON document::

    {
      "schema": 1,
      "scale": "tiny",
      "repeats": 3,
      "pr": "PR4",                                      # trajectory label
      "phases": {"phase1-concentration": 0.012, ...},   # min over repeats
      "cells": {"BT": {"RAHTM": {"mcl": ..., "map_seconds": ...,
                                 "hotspot": {"slot": ..., "label": ...,
                                             "load": ...}}, ...}},
      "serve": {"submit_to_done_seconds": ...,          # daemon micro-bench
                "cache_hit_submit_seconds": ...},
      "fleet": {"workers1_seconds": ...,                # distributed backend
                "workers3_seconds": ...},               # 1 vs 3 workers
      "vectorized": {"stencil_accumulate_seconds": ..., # hot-path kernels
                     "orientation_batch_seconds": ...,
                     "merge_scoring_seconds": ...},
      "telemetry": {"sample_seconds": ...,              # registry sampling
                    "render_prometheus_seconds": ...,
                    "overhead_fraction": ...}           # vs 1s tick budget
    }

Timings take the *minimum* over ``--repeat`` runs, the standard
noise-suppression trick for wall-clock benchmarks. The ``hotspot`` key
(the netview top-1 link per cell) is optional and deterministic: the
compare gate uses it to *explain* MCL drift when it happens. Committed
baselines form a trajectory — ``BENCH_PR3.json``, ``BENCH_PR4.json``, …
— at the repo root (legacy baselines live in ``benchmarks/``);
``benchmarks/compare_snapshots.py latest`` gates CI on the newest one
and can print the whole multi-PR trend.

Usage::

    PYTHONPATH=src python benchmarks/snapshot.py --scale tiny \
        --pr PR4 --out BENCH_PR4.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SNAPSHOT_SCHEMA_VERSION = 1


def run_grid(scale_name: str, explain: dict | None = None) -> dict:
    """One pass over the grid; returns phases + per-cell numbers.

    ``explain`` (optional dict) collects each cell's compact netview
    summary — the full attribution picture behind the snapshot, written
    separately via ``--explain-out`` so the committed baseline stays
    small.
    """
    from repro.experiments.config import get_scale
    from repro.experiments.runner import (
        benchmark_workload_specs,
        default_mapper_configs,
    )
    from repro.service.engine import MappingEngine
    from repro.service.jobs import (
        JobRuntime,
        MappingJob,
        TopologySpec,
        WorkloadSpec,
    )

    scale = get_scale(scale_name)
    topo_spec = TopologySpec.from_topology(scale.topology())
    cells: dict[str, dict] = {}
    phases: dict[str, float] = {}
    # No cache: a snapshot that hit the store would report 0s timings.
    # The netview flag attributes each cell's MCL to its hottest link so
    # the compare gate can explain drift, not just detect it.
    engine = MappingEngine(cache_dir=None, runtime=JobRuntime(netview=True))
    for bench, workload in benchmark_workload_specs(scale).items():
        cells[bench] = {}
        for label, config in default_mapper_configs(scale):
            job = MappingJob(
                topology=topo_spec,
                workload=WorkloadSpec(workload, seed=0),
                mapper=config,
            )
            result = engine.run_one(job)
            cells[bench][label] = {
                "mcl": result.report.mcl,
                "map_seconds": result.map_seconds,
            }
            if result.netview and result.netview.get("top"):
                top = result.netview["top"][0]
                cells[bench][label]["hotspot"] = {
                    "slot": top["slot"],
                    "label": top["label"],
                    "load": top["load"],
                }
            if explain is not None and result.netview:
                explain.setdefault(bench, {})[label] = result.netview
            for phase, seconds in (result.phase_seconds or {}).items():
                phases[phase] = phases.get(phase, 0.0) + seconds
    return {"phases": phases, "cells": cells}


def bench_serve(repeats: int) -> dict:
    """Daemon submit->result latency over real HTTP, min over repeats.

    Boots an in-process ``repro serve`` daemon on a throwaway cache and
    times the two paths a client actually feels: a *cold* submit (fresh
    spec, scheduled + mapped + result committed) polled to ``done``, and
    a *warm* resubmit of the same spec (idempotent join of the done job,
    one HTTP round trip). Each repeat uses a distinct workload seed so
    every cold run really executes the mapper.
    """
    import tempfile
    import threading
    import time

    from repro.serve import DaemonConfig, MappingDaemon, ServeClient
    from repro.service.jobs import (
        MapperConfig,
        MappingJob,
        TopologySpec,
        WorkloadSpec,
    )

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache:
        daemon = MappingDaemon(
            DaemonConfig(cache_dir=cache, port=0, janitor_interval=0.0)
        )
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        try:
            if not daemon.ready.wait(15):
                raise SystemExit("serve bench: daemon never became ready")
            client = ServeClient(daemon.url, timeout=15)
            cold: list[float] = []
            warm: list[float] = []
            for seed in range(max(repeats, 1)):
                spec = MappingJob(
                    topology=TopologySpec((4, 4)),
                    workload=WorkloadSpec("halo2d:4x4", seed=seed),
                    mapper=MapperConfig.make("dimorder"),
                ).payload()
                start = time.perf_counter()
                code, doc = client.submit(spec)
                if code != 202:
                    raise SystemExit(f"serve bench: submit -> {code} {doc}")
                final = client.wait(doc["id"], timeout=60, poll=0.01)
                cold.append(time.perf_counter() - start)
                if final["state"] != "done":
                    raise SystemExit(
                        f"serve bench: job {final['state']}: {final.get('error')}"
                    )
                start = time.perf_counter()
                code, doc = client.submit(spec)
                warm.append(time.perf_counter() - start)
                if code != 200 or doc["state"] != "done":
                    raise SystemExit(
                        f"serve bench: resubmit not idempotent: {code} {doc}"
                    )
            return {
                "submit_to_done_seconds": min(cold),
                "cache_hit_submit_seconds": min(warm),
            }
        finally:
            daemon.stop("bench complete")
            thread.join(15)


def bench_fleet(repeats: int) -> dict:
    """Distributed-backend batch latency, 1 vs 3 workers, min over repeats.

    Pushes the same six-job batch through the fleet (coordinator + N
    spawned worker subprocesses over the shared board) on a throwaway
    cache per run, so every repeat really claims, executes and commits —
    no store hits. Jobs this small cannot show fan-out *speedup*; the
    two numbers track what the protocol costs end to end (claim, lease
    heartbeat, receipt, settle) at one worker and how that overhead
    scales with worker-spawn fan-out at three.
    """
    import tempfile
    import time

    from repro.distributed import DistributedConfig
    from repro.service.engine import MappingEngine
    from repro.service.jobs import (
        MapperConfig,
        MappingJob,
        TopologySpec,
        WorkloadSpec,
    )

    def batch() -> list:
        return [
            MappingJob(
                topology=TopologySpec((4, 4)),
                workload=WorkloadSpec(workload, seed=seed),
                mapper=MapperConfig.make("dimorder"),
            )
            for workload in ("halo2d:4x4", "ring:16", "transpose:4")
            for seed in (0, 1)
        ]

    out: dict[str, float] = {}
    for workers in (1, 3):
        times: list[float] = []
        for _ in range(max(repeats, 1)):
            with tempfile.TemporaryDirectory(prefix="bench-fleet-") as cache:
                engine = MappingEngine(
                    cache_dir=cache,
                    backend="distributed",
                    distributed=DistributedConfig(spawn_workers=workers),
                )
                try:
                    start = time.perf_counter()
                    outcomes = engine.run(batch())
                    elapsed = time.perf_counter() - start
                finally:
                    engine.executor.stop_workers()
                bad = [o.error for o in outcomes if not o.ok]
                if bad:
                    raise SystemExit(f"fleet bench: job failures: {bad}")
                times.append(elapsed)
        out[f"workers{workers}_seconds"] = min(times)
    return out


def bench_vectorized(repeats: int) -> dict:
    """Hot-path kernel micro-benches, min over repeats.

    Times the three vectorized kernels the mapper spends its life in,
    on fixed seeded workloads sized to finish in well under a second:

    - ``stencil_accumulate_seconds`` — ``link_loads`` over 20k random
      flows on an 8x8x8 torus (the CSR expand + scatter-add path);
    - ``orientation_batch_seconds`` — ``apply_batch`` of the full B_4
      hyperoctahedral group over 4,096 coordinates;
    - ``merge_scoring_seconds`` — ``link_loads_many`` with 16 candidate
      rows x 2k flows on a 4^4 torus (the merge/stitch batch path).

    Warm-up runs first so stencil construction and pair-table builds are
    excluded — the committed numbers track the steady-state kernels the
    compare gate wants to watch.
    """
    import time

    import numpy as np

    from repro.core.orientation import all_orientations, apply_batch
    from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
    from repro.topology.cartesian import CartesianTopology

    def best(fn) -> float:
        times = []
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    rng = np.random.default_rng(0)

    topo = CartesianTopology((8, 8, 8), wrap=True)
    router = MinimalAdaptiveRouter(topo)
    srcs = rng.integers(0, topo.num_nodes, size=20_000)
    dsts = rng.integers(0, topo.num_nodes, size=20_000)
    vols = rng.random(20_000)
    router.link_loads(srcs, dsts, vols)  # warm stencils + pair tables
    accumulate = best(lambda: router.link_loads(srcs, dsts, vols))

    coords = rng.integers(0, 4, size=(4_096, 4))
    orients = all_orientations(4)
    apply_batch(orients, coords, (4, 4, 4, 4))  # warm
    orientation = best(lambda: apply_batch(orients, coords, (4, 4, 4, 4)))

    topo4 = CartesianTopology((4, 4, 4, 4), wrap=True)
    router4 = MinimalAdaptiveRouter(topo4)
    B, m = 16, 2_000
    bsrcs = rng.integers(0, topo4.num_nodes, size=(B, m))
    bdsts = rng.integers(0, topo4.num_nodes, size=(B, m))
    bvols = rng.random(m)
    S = topo4.num_channel_slots
    router4.link_loads_many(bsrcs, bdsts, bvols, np.zeros((B, S)))  # warm
    scoring = best(
        lambda: router4.link_loads_many(bsrcs, bdsts, bvols, np.zeros((B, S)))
    )

    return {
        "stencil_accumulate_seconds": accumulate,
        "orientation_batch_seconds": orientation,
        "merge_scoring_seconds": scoring,
    }


def bench_telemetry(repeats: int) -> dict:
    """Telemetry-plane sampling overhead, min over repeats.

    Populates a standalone registry at serve-daemon scale (50 counters,
    10 histograms x 1,000 observations, a handful of gauges — more
    instruments than a busy multi-tenant daemon actually carries) and
    times one :meth:`TimeSeriesRecorder.sample` tick plus one Prometheus
    exposition render. ``overhead_fraction`` is the sample cost against
    a worst-case 1 s telemetry interval; the compare gate fails the
    build if the sampler would eat >=1% of the daemon's time.
    """
    import time

    from repro.observability.metrics import MetricsRegistry
    from repro.observability.prometheus import render_prometheus
    from repro.observability.timeseries import TimeSeriesRecorder

    registry = MetricsRegistry()
    for i in range(50):
        registry.counter(f"serve.tenant.t{i % 10}.counter_{i}").inc(i * 7)
    for i in range(5):
        registry.gauge(f"serve.gauge_{i}").set(i * 1.5)
    for i in range(10):
        hist = registry.histogram(f"serve.tenant.t{i}.e2e_seconds")
        for j in range(1_000):
            hist.record((j % 97) / 13.0)

    recorder = TimeSeriesRecorder(registry, capacity=720)
    recorder.sample()  # warm: first tick has no rate deltas to compute

    def best(fn) -> float:
        times = []
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    sample = best(recorder.sample)
    render = best(lambda: render_prometheus(registry.snapshot()))
    return {
        "sample_seconds": sample,
        "render_prometheus_seconds": render,
        "overhead_fraction": sample / 1.0,
    }


def merge_min(runs: list[dict]) -> dict:
    """Fold repeats: min for timings, first run's MCLs (deterministic)."""
    out = {
        "phases": dict(runs[0]["phases"]),
        "cells": {
            b: {m: dict(v) for m, v in row.items()}
            for b, row in runs[0]["cells"].items()
        },
    }
    for run in runs[1:]:
        for phase, seconds in run["phases"].items():
            out["phases"][phase] = min(out["phases"].get(phase, seconds), seconds)
        for bench, row in run["cells"].items():
            for label, cell in row.items():
                mine = out["cells"][bench][label]
                mine["map_seconds"] = min(mine["map_seconds"], cell["map_seconds"])
                if mine["mcl"] != cell["mcl"]:
                    raise SystemExit(
                        f"non-deterministic MCL for {bench}/{label}: "
                        f"{mine['mcl']} vs {cell['mcl']}"
                    )
    return out


def take_snapshot(
    scale: str, repeats: int, pr: str | None = None,
    explain: dict | None = None, serve: bool = True, fleet: bool = True,
    vectorized: bool = True, telemetry: bool = True,
) -> dict:
    runs = []
    for i in range(max(repeats, 1)):
        # The explain artifact is identical across repeats (netviews are
        # deterministic): collect it on the first pass only.
        runs.append(run_grid(scale, explain=explain if i == 0 else None))
    merged = merge_min(runs)
    snap = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "scale": scale,
        "repeats": max(repeats, 1),
        "phases": {k: merged["phases"][k] for k in sorted(merged["phases"])},
        "cells": merged["cells"],
    }
    if serve:
        snap["serve"] = bench_serve(repeats)
    if fleet:
        snap["fleet"] = bench_fleet(repeats)
    if vectorized:
        snap["vectorized"] = bench_vectorized(repeats)
    if telemetry:
        snap["telemetry"] = bench_telemetry(repeats)
    if pr:
        snap["pr"] = str(pr)
    return snap


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="tiny",
        help="experiment scale (default: tiny)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="runs to min-fold timings over (default: 3)",
    )
    parser.add_argument(
        "--pr",
        default=None,
        help="trajectory label stored in the snapshot (e.g. PR4)",
    )
    parser.add_argument(
        "--explain-out",
        default=None,
        help="also write the per-cell netview summaries (JSON) here",
    )
    parser.add_argument("--out", default="-", help="output path ('-' = stdout)")
    parser.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the daemon submit->result latency micro-bench",
    )
    parser.add_argument(
        "--no-fleet",
        action="store_true",
        help="skip the distributed-backend 1-vs-3-worker micro-bench",
    )
    parser.add_argument(
        "--no-vectorized",
        action="store_true",
        help="skip the vectorized hot-path kernel micro-benches",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip the telemetry sampling-overhead micro-bench",
    )
    args = parser.parse_args(argv)
    explain: dict | None = {} if args.explain_out else None
    snap = take_snapshot(
        args.scale,
        args.repeat,
        pr=args.pr,
        explain=explain,
        serve=not args.no_serve,
        fleet=not args.no_fleet,
        vectorized=not args.no_vectorized,
        telemetry=not args.no_telemetry,
    )
    text = json.dumps(snap, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    if args.explain_out:
        doc = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "kind": "bench_explain",
            "scale": args.scale,
            "pr": args.pr,
            "cells": explain,
        }
        Path(args.explain_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"explain artifact written to {args.explain_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
