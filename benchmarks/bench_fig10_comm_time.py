"""Figure 10 — communication time vs mapping.

Prints the normalized communication-time table and asserts the headline
shape: RAHTM reduces mean communication time substantially (the paper
reports ~20%), and beats every dimension-permutation mapping.
"""

from repro.experiments import fig10


def test_fig10_comm_time(benchmark, comparison, capsys):
    table = benchmark(fig10.from_comparison, comparison)
    with capsys.disabled():
        print()
        print(table.to_text())
    cols = table.col_labels
    rahtm = table.get("geomean", "RAHTM")
    assert rahtm < 1.0
    for col in cols[1:3]:  # the alternate dimension permutations
        assert rahtm < table.get("geomean", col)
    # the permutations are non-uniform: at least one benchmark regresses
    worst_perm = max(
        table.get(b, cols[1]) for b in ("BT", "SP", "CG")
    )
    assert worst_perm > 1.0
