"""Table II — the fission MILP.

Benchmarks representative phase-2 subproblem solves (2-ary n-cubes for
n = 2, 3, with mesh and double-wide-torus variants) and prints the model
sizes, optima, and enumeration cross-checks.
"""

import pytest

from repro.commgraph import CommGraph
from repro.core.milp import solve_cluster_milp
from repro.experiments import table2
from repro.topology import hypercube
from repro.utils.rng import as_rng
from repro.workloads import halo_nd


def _random_graph(n, seed):
    rng = as_rng(seed)
    edges = [
        (s, d, float(rng.integers(1, 100)))
        for s in range(n)
        for d in range(n)
        if s != d and rng.random() < 0.6
    ]
    return CommGraph.from_edges(n, edges)


@pytest.mark.parametrize("n", [2, 3])
def test_table2_milp_halo(benchmark, n):
    cube = hypercube(n)
    graph = halo_nd((2,) * n, volume=10.0, wrap=False)
    res = benchmark(solve_cluster_milp, cube, graph, 60.0)
    assert res.optimal


def test_table2_milp_random_n2(benchmark):
    res = benchmark(
        solve_cluster_milp, hypercube(2), _random_graph(4, 0), 60.0
    )
    assert res.optimal


def test_table2_milp_torus_root(benchmark):
    res = benchmark(
        solve_cluster_milp, hypercube(2, wrap=True), _random_graph(4, 1), 60.0
    )
    assert res.optimal


def test_table2_report(benchmark, capsys):
    table = benchmark.pedantic(table2.run, kwargs={"time_limit": 60},
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table.to_text())
