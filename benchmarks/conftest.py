"""Shared fixtures for the benchmark harness.

The figure benches share one comparison run per scale (session-scoped) so
``pytest benchmarks/ --benchmark-only`` stays affordable; the heavyweight
RAHTM mapping itself is benchmarked separately in ``bench_opt_time.py``.

Set ``RAHTM_BENCH_SCALE`` to ``small``/``medium``/``paper`` to rerun the
whole harness at a larger scale (minutes to hours).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_scale, run_comparison

BENCH_SCALE = os.environ.get("RAHTM_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def scale():
    return get_scale(BENCH_SCALE)


@pytest.fixture(scope="session")
def comparison(scale):
    """One full benchmarks x mappers sweep shared by the figure benches."""
    return run_comparison(scale)
