"""Mechanical verification of the paper's Section V claims.

Consumes the shared comparison run and prints PASS/FAIL for each headline
claim (see ``repro.experiments.claims``); the core RAHTM claims are
asserted, the baseline-characterization ones are reported.
"""

from repro.experiments.claims import check_claims


def test_paper_claims(benchmark, comparison, capsys):
    claims = benchmark(check_claims, comparison)
    with capsys.disabled():
        print()
        for claim in claims:
            print(claim)
    by_name = {c.claim: c for c in claims}
    assert by_name[
        "RAHTM improves mean execution time (paper -9%)"
    ].holds
    assert by_name[
        "RAHTM improves mean communication time substantially (paper -20%)"
    ].holds
