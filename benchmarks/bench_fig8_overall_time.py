"""Figure 8 — overall execution time vs mapping.

Prints the normalized execution-time table (rows BT/SP/CG + geomean,
columns default/permutations/Hilbert/RHT/RAHTM) and asserts the paper's
headline shape: RAHTM's geomean beats the default while the alternate
dimension permutations do not.
"""

from repro.experiments import fig8
from repro.experiments.report import geomean


def test_fig8_overall_time(benchmark, comparison, capsys):
    table = benchmark(fig8.from_comparison, comparison)
    with capsys.disabled():
        print()
        print(table.to_text())
    rahtm = table.get("geomean", "RAHTM")
    default = table.get("geomean", table.col_labels[0])
    assert default == 1.0
    assert rahtm < 1.0, "RAHTM must improve mean execution time"
    # the second dimension permutation is no better than the default
    assert table.get("geomean", table.col_labels[1]) >= 0.99
