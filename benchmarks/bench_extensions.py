"""Section VI extension benches: mapping on fat-trees and dragonflies.

Times the hierarchical mappers and verifies the qualitative claim: on a
clustered workload, hierarchical mapping beats random placement on MCL for
every topology family.
"""

import numpy as np

from repro.extensions import (
    Dragonfly,
    DragonflyMapper,
    DragonflyRouter,
    FatTree,
    FatTreeMapper,
    FatTreeRouter,
)
from repro.mapping import Mapping
from repro.workloads import nas_cg


def _mcl(router, mapping, graph):
    srcs, dsts, vols = mapping.network_flows(graph)
    return router.max_channel_load(srcs, dsts, vols)


def test_fattree_hierarchical_mapping(benchmark, capsys):
    ft = FatTree(arity=2, levels=7)  # 128 leaves
    graph = nas_cg(256, "W")
    mapper = FatTreeMapper(ft)
    mapping = benchmark(mapper.map, graph)
    router = FatTreeRouter(ft)
    rng = np.random.default_rng(0)
    rand = Mapping(ft, rng.permutation(256) // 2, tasks_per_node=2)
    mapped_mcl = _mcl(router, mapping, graph)
    rand_mcl = _mcl(router, rand, graph)
    with capsys.disabled():
        print(f"\nfat-tree CG: hierarchical MCL {mapped_mcl:.3g} vs "
              f"random {rand_mcl:.3g}")
    assert mapped_mcl <= rand_mcl


def test_dragonfly_hierarchical_mapping(benchmark, capsys):
    df = Dragonfly(groups=8, routers_per_group=4, hosts_per_router=4,
                   global_per_router=2)  # 128 hosts
    graph = nas_cg(256, "W")
    mapper = DragonflyMapper(df)
    mapping = benchmark(mapper.map, graph)
    router = DragonflyRouter(df)
    rng = np.random.default_rng(0)
    rand = Mapping(df, rng.permutation(256) // 2, tasks_per_node=2)
    mapped_mcl = _mcl(router, mapping, graph)
    rand_mcl = _mcl(router, rand, graph)
    with capsys.disabled():
        print(f"\ndragonfly CG: hierarchical MCL {mapped_mcl:.3g} vs "
              f"random {rand_mcl:.3g}")
    assert mapped_mcl <= rand_mcl


def test_fattree_router_kernel(benchmark):
    ft = FatTree(arity=4, levels=4)  # 256 leaves
    router = FatTreeRouter(ft)
    rng = np.random.default_rng(1)
    srcs = rng.integers(0, 256, 2000)
    dsts = rng.integers(0, 256, 2000)
    vols = rng.uniform(1, 100, 2000)
    loads = benchmark(router.link_loads, srcs, dsts, vols)
    assert loads.max() > 0
