#!/usr/bin/env python
"""Gate a benchmark snapshot against a committed baseline.

Compares a fresh ``benchmarks/snapshot.py`` output to the checked-in
baseline and exits non-zero when

- any pipeline phase or per-cell ``map_seconds`` regressed by more than
  ``--threshold`` (default 30%) — timings under ``--floor`` seconds in
  *both* snapshots are skipped as noise, and every ratio check carries an
  additive ``--slack`` allowance (default 20 ms) so cells the vectorized
  hot path pushed down to milliseconds cannot flap the gate on scheduler
  jitter alone;
- any per-cell MCL changed at all (mapping quality is deterministic, so
  any drift is a real behavior change, better or worse); when both
  snapshots carry per-cell ``hotspot`` attributions the failure message
  says *which link* the MCL moved to — drift is never unexplained;
- the snapshots' schema versions or scales differ;
- the telemetry sampler's ``overhead_fraction`` is at or above 1% of a
  worst-case 1 s tick — an absolute budget, not a ratio against the
  baseline.

The baseline argument may be a path or the literal ``latest``: the
newest ``BENCH_PR<N>.json`` found at the repo root (falling back to
``benchmarks/``) is used, so the gate follows the trajectory without CI
edits per PR. ``--trend`` additionally prints the whole multi-PR
trajectory as a table.

A missing baseline is a *skip with notice* (exit 0): the first PR that
introduces the snapshot has nothing to compare against, and CI should
not fail on it. Usage::

    python benchmarks/compare_snapshots.py latest fresh.json \
        --threshold 0.30 --trend
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load(path: str) -> dict | None:
    p = Path(path)
    if not p.exists():
        return None
    return json.loads(p.read_text())


def discover_baselines() -> list[Path]:
    """Every committed ``BENCH_PR<N>.json``, oldest PR first.

    Repo-root snapshots win name collisions with legacy ``benchmarks/``
    ones (the trajectory moved to the root in PR 4).
    """
    found: dict[str, Path] = {}
    for directory in (REPO_ROOT / "benchmarks", REPO_ROOT):
        for p in sorted(directory.glob("BENCH_PR*.json")):
            found[p.name] = p

    def pr_number(p: Path) -> int:
        m = re.search(r"BENCH_PR(\d+)", p.name)
        return int(m.group(1)) if m else -1

    return sorted(found.values(), key=pr_number)


def latest_baseline() -> Path | None:
    baselines = discover_baselines()
    return baselines[-1] if baselines else None


def trend_table(snapshots: list[tuple[str, dict]]) -> str:
    """The bench trajectory: one row per snapshot, label -> aggregates.

    The per-phase columns (``milp_s``, ``merge_s``, ``refine_s``) are the
    RAHTM pipeline's own clocks, so hot-path speedups show up as their
    own trajectory instead of hiding inside the grid total. ``merge_s``
    folds in the partitioned path's stitch phase when present.
    """
    header = (
        f"{'snapshot':<16}{'scale':<8}{'cells':>6}{'geomean MCL':>14}"
        f"{'sum map_s':>11}{'milp_s':>9}{'merge_s':>9}{'refine_s':>9}"
        f"{'serve_ms':>10}{'fleet_ms':>10}"
    )
    lines = ["bench trajectory:", header, "-" * len(header)]
    for label, snap in snapshots:
        cells = [
            cell
            for row in snap.get("cells", {}).values()
            for cell in row.values()
        ]
        mcls = [float(c["mcl"]) for c in cells if float(c.get("mcl", 0)) > 0]
        geomean = (
            math.exp(sum(math.log(m) for m in mcls) / len(mcls)) if mcls else 0.0
        )
        map_s = sum(float(c.get("map_seconds", 0.0)) for c in cells)
        phases = snap.get("phases", {})
        milp_s = float(phases.get("phase2-milp", 0.0))
        merge_s = float(phases.get("phase3-merge", 0.0)) + float(
            phases.get("phase3-stitch", 0.0)
        )
        refine_s = float(phases.get("phase4-refine", 0.0))
        cold = snap.get("serve", {}).get("submit_to_done_seconds")
        serve_ms = f"{cold * 1000:.1f}" if cold is not None else "-"
        fanout = snap.get("fleet", {}).get("workers3_seconds")
        fleet_ms = f"{fanout * 1000:.1f}" if fanout is not None else "-"
        lines.append(
            f"{label:<16}{snap.get('scale', '?'):<8}{len(cells):>6}"
            f"{geomean:>14.6g}{map_s:>11.3f}{milp_s:>9.3f}{merge_s:>9.3f}"
            f"{refine_s:>9.3f}{serve_ms:>10}{fleet_ms:>10}"
        )
    return "\n".join(lines)


def compare(
    baseline: dict,
    current: dict,
    threshold: float,
    floor: float,
    slack: float = 0.02,
) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return failures
    if baseline.get("scale") != current.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')!r} "
            f"vs current {current.get('scale')!r}"
        )
        return failures

    def check_timing(label: str, base: float, cur: float) -> None:
        if base < floor and cur < floor:
            return  # noise-floor territory; ratios are meaningless
        if base <= 0:
            return
        # The ratio gate alone flaps on ms-scale cells (a 3 ms -> 5 ms
        # scheduler hiccup is a "67% regression"); the additive slack is
        # an absolute allowance every check gets on top of the ratio.
        if cur > base * (1.0 + threshold) + slack:
            ratio = cur / base
            failures.append(
                f"{label}: {base:.4g}s -> {cur:.4g}s "
                f"({(ratio - 1.0) * 100:.0f}% slower, "
                f"threshold {threshold * 100:.0f}% + {slack * 1000:.0f}ms)"
            )

    # Daemon latency micro-bench: only gated when the baseline carries it
    # (snapshots before PR 6 predate `repro serve`).
    for key, base in baseline.get("serve", {}).items():
        cur = current.get("serve", {}).get(key)
        if cur is None:
            failures.append(f"serve metric {key!r} missing from current snapshot")
            continue
        check_timing(f"serve {key}", float(base), float(cur))

    # Distributed-fleet micro-bench: same deal, gated only when the
    # baseline carries it (snapshots before PR 7 predate the fleet).
    for key, base in baseline.get("fleet", {}).items():
        cur = current.get("fleet", {}).get(key)
        if cur is None:
            failures.append(f"fleet metric {key!r} missing from current snapshot")
            continue
        check_timing(f"fleet {key}", float(base), float(cur))

    # Vectorized hot-path kernel micro-benches: gated only when the
    # baseline carries them (snapshots before PR 8 predate the family).
    for key, base in baseline.get("vectorized", {}).items():
        cur = current.get("vectorized", {}).get(key)
        if cur is None:
            failures.append(
                f"vectorized metric {key!r} missing from current snapshot"
            )
            continue
        check_timing(f"vectorized {key}", float(base), float(cur))

    # Telemetry-plane micro-bench: the usual ratio gate when the baseline
    # carries it (snapshots before PR 9 predate the telemetry plane), plus
    # an *absolute* budget — the registry sampler runs inside the daemon's
    # maintenance loop, so it must stay under 1% of a worst-case 1 s tick
    # no matter what the baseline says.
    for key, base in baseline.get("telemetry", {}).items():
        cur = current.get("telemetry", {}).get(key)
        if cur is None:
            failures.append(
                f"telemetry metric {key!r} missing from current snapshot"
            )
            continue
        if key != "overhead_fraction":
            check_timing(f"telemetry {key}", float(base), float(cur))
    overhead = current.get("telemetry", {}).get("overhead_fraction")
    if overhead is not None and float(overhead) >= 0.01:
        failures.append(
            f"telemetry overhead_fraction {float(overhead):.4f} >= 0.01: "
            "registry sampling would eat >=1% of a 1s telemetry tick"
        )

    for phase, base in baseline.get("phases", {}).items():
        cur = current.get("phases", {}).get(phase)
        if cur is None:
            failures.append(f"phase {phase!r} missing from current snapshot")
            continue
        check_timing(f"phase {phase}", float(base), float(cur))

    for bench, row in baseline.get("cells", {}).items():
        for label, cell in row.items():
            other = current.get("cells", {}).get(bench, {}).get(label)
            if other is None:
                failures.append(f"cell {bench}/{label} missing from current")
                continue
            if cell.get("mcl") != other.get("mcl"):
                msg = (
                    f"cell {bench}/{label}: MCL changed "
                    f"{cell.get('mcl')} -> {other.get('mcl')} "
                    "(mapping quality must be deterministic)"
                )
                hot_a = cell.get("hotspot")
                hot_b = other.get("hotspot")
                if hot_a and hot_b:
                    # Per-flow attribution turns bare drift into a story:
                    # where the bottleneck was, where it went.
                    if hot_a.get("slot") == hot_b.get("slot"):
                        msg += (
                            f"; hotspot stayed at {hot_a.get('label')} "
                            f"(load {hot_a.get('load')} -> "
                            f"{hot_b.get('load')})"
                        )
                    else:
                        msg += (
                            f"; hotspot moved {hot_a.get('label')} -> "
                            f"{hot_b.get('label')}"
                        )
                failures.append(msg)
            check_timing(
                f"cell {bench}/{label} map_seconds",
                float(cell.get("map_seconds", 0.0)),
                float(other.get("map_seconds", 0.0)),
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline",
        help="committed baseline snapshot, or 'latest' to use the "
             "newest BENCH_PR<N>.json in the repo",
    )
    parser.add_argument("current", help="freshly produced snapshot")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed slowdown fraction (default: 0.30)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.05,
        help="seconds below which timings are noise (default: 0.05)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.02,
        help="absolute seconds every timing check may exceed the ratio "
             "threshold by before failing (default: 0.02)",
    )
    parser.add_argument(
        "--trend",
        action="store_true",
        help="print the multi-PR bench trajectory before the verdict",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline
    if baseline_path == "latest":
        found = latest_baseline()
        if found is None:
            print(
                "NOTICE: no BENCH_PR*.json baseline committed yet; "
                "skipping the perf gate (commit one via "
                "benchmarks/snapshot.py)"
            )
            return 0
        baseline_path = str(found)
        print(f"latest committed baseline: {baseline_path}")

    baseline = load(baseline_path)
    if baseline is None:
        print(
            f"NOTICE: no baseline at {baseline_path}; skipping the "
            "perf gate (commit one via benchmarks/snapshot.py)"
        )
        return 0
    current = load(args.current)
    if current is None:
        print(f"error: current snapshot {args.current} not found", file=sys.stderr)
        return 2

    if args.trend:
        history = [
            (p.name.replace(".json", ""), json.loads(p.read_text()))
            for p in discover_baselines()
        ]
        history.append((current.get("pr") or "current", current))
        print(trend_table(history))

    failures = compare(
        baseline, current, args.threshold, args.floor, args.slack
    )
    if failures:
        print(f"perf gate FAILED ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "perf gate passed: no phase regressed beyond "
        f"{args.threshold * 100:.0f}%, MCLs unchanged"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
