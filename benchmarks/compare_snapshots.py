#!/usr/bin/env python
"""Gate a benchmark snapshot against a committed baseline.

Compares a fresh ``benchmarks/snapshot.py`` output to the checked-in
baseline and exits non-zero when

- any pipeline phase or per-cell ``map_seconds`` regressed by more than
  ``--threshold`` (default 30%) — timings under ``--floor`` seconds in
  *both* snapshots are skipped as noise;
- any per-cell MCL changed at all (mapping quality is deterministic, so
  any drift is a real behavior change, better or worse);
- the snapshots' schema versions or scales differ.

A missing baseline is a *skip with notice* (exit 0): the first PR that
introduces the snapshot has nothing to compare against, and CI should
not fail on it. Usage::

    python benchmarks/compare_snapshots.py benchmarks/BENCH_PR3.json \
        fresh.json --threshold 0.30
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict | None:
    p = Path(path)
    if not p.exists():
        return None
    return json.loads(p.read_text())


def compare(
    baseline: dict,
    current: dict,
    threshold: float,
    floor: float,
) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return failures
    if baseline.get("scale") != current.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')!r} "
            f"vs current {current.get('scale')!r}"
        )
        return failures

    def check_timing(label: str, base: float, cur: float) -> None:
        if base < floor and cur < floor:
            return  # noise-floor territory; ratios are meaningless
        if base <= 0:
            return
        ratio = cur / base
        if ratio > 1.0 + threshold:
            failures.append(
                f"{label}: {base:.4g}s -> {cur:.4g}s "
                f"({(ratio - 1.0) * 100:.0f}% slower, "
                f"threshold {threshold * 100:.0f}%)"
            )

    for phase, base in baseline.get("phases", {}).items():
        cur = current.get("phases", {}).get(phase)
        if cur is None:
            failures.append(f"phase {phase!r} missing from current snapshot")
            continue
        check_timing(f"phase {phase}", float(base), float(cur))

    for bench, row in baseline.get("cells", {}).items():
        for label, cell in row.items():
            other = current.get("cells", {}).get(bench, {}).get(label)
            if other is None:
                failures.append(f"cell {bench}/{label} missing from current")
                continue
            if cell.get("mcl") != other.get("mcl"):
                failures.append(
                    f"cell {bench}/{label}: MCL changed "
                    f"{cell.get('mcl')} -> {other.get('mcl')} "
                    "(mapping quality must be deterministic)"
                )
            check_timing(
                f"cell {bench}/{label} map_seconds",
                float(cell.get("map_seconds", 0.0)),
                float(other.get("map_seconds", 0.0)),
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline snapshot")
    parser.add_argument("current", help="freshly produced snapshot")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed slowdown fraction (default: 0.30)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.05,
        help="seconds below which timings are noise (default: 0.05)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    if baseline is None:
        print(
            f"NOTICE: no baseline at {args.baseline}; skipping the "
            "perf gate (commit one via benchmarks/snapshot.py)"
        )
        return 0
    current = load(args.current)
    if current is None:
        print(f"error: current snapshot {args.current} not found", file=sys.stderr)
        return 2

    failures = compare(baseline, current, args.threshold, args.floor)
    if failures:
        print(f"perf gate FAILED ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "perf gate passed: no phase regressed beyond "
        f"{args.threshold * 100:.0f}%, MCLs unchanged"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
