"""Figure 9 — communication/computation fractions.

Prints the per-benchmark split under the default mapping; the simulator is
calibrated to the paper's measurements (CG > 70%, BT/SP ~ 35-40%), so this
bench doubles as a calibration check.
"""

import pytest

from repro.experiments import fig9
from repro.simulator.apps import PAPER_COMM_FRACTIONS


def test_fig9_comm_fraction(benchmark, comparison, capsys):
    table = benchmark(fig9.from_comparison, comparison)
    with capsys.disabled():
        print()
        print(table.to_text())
    for bench, frac in PAPER_COMM_FRACTIONS.items():
        assert table.get(bench, "communication") == pytest.approx(
            frac, abs=0.01
        )
        assert table.get("CG", "communication") > table.get(
            bench, "communication"
        ) - 1e-9  # CG dominates, per the paper
