"""Section V-B — offline mapping (optimization) time.

Benchmarks a full RAHTM run per benchmark at the bench scale and prints
the per-phase wall-clock breakdown (the paper reports 33 minutes for BT up
to ~35 hours for CG at 16K tasks on CPLEX; scaled-down runs here take
seconds to minutes).
"""

from repro.core.rahtm import RAHTMMapper
from repro.experiments.runner import benchmark_apps


def _bench_mapping(benchmark, scale, bench_name):
    app = benchmark_apps(scale)[bench_name]
    graph = app.comm_graph()

    def run():
        mapper = RAHTMMapper(scale.topology(), scale.rahtm)
        mapper.map(graph)
        return mapper

    mapper = benchmark.pedantic(run, rounds=1, iterations=1)
    return mapper


def test_opt_time_bt(benchmark, scale, capsys):
    mapper = _bench_mapping(benchmark, scale, "BT")
    with capsys.disabled():
        print("\nBT phase breakdown:")
        print(mapper.timer.report())


def test_opt_time_sp(benchmark, scale):
    _bench_mapping(benchmark, scale, "SP")


def test_opt_time_cg(benchmark, scale, capsys):
    mapper = _bench_mapping(benchmark, scale, "CG")
    with capsys.disabled():
        print("\nCG phase breakdown:")
        print(mapper.timer.report())
