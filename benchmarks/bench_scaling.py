"""Scaling study bench (paper Section VI's cost discussion).

Runs RAHTM on CG across scales and prints the cost/quality curve —
mapping seconds and MCL ratio vs the default mapping. The paper's own
curve ends at 16K tasks / 35 CPLEX-hours; set ``RAHTM_BENCH_SCALE`` high
and extend ``scales`` to climb it.
"""

from repro.experiments import scaling


def test_scaling_curve(benchmark, capsys):
    table = benchmark.pedantic(
        scaling.run, kwargs={"scales": ("tiny", "small")},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(table.to_text())
    # cost grows with scale; quality (ratio <= 1) holds at every scale
    assert table.get("small", "mapping_s") > table.get("tiny", "mapping_s")
    for name in ("tiny", "small"):
        assert table.get(name, "mcl_ratio") <= 1.05
