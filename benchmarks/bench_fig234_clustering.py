"""Figures 2-4 — phase-1 clustering walk-through.

Regenerates the tile-shape search of Figure 2 and the contracted cluster
graphs of Figures 3/4 on the 16-task running example, and times the full
hierarchy construction at bench scale.
"""

from repro.core.clustering import build_cluster_hierarchy
from repro.experiments import fig234
from repro.topology.hierarchy import CubeHierarchy
from repro.workloads import nas_bt


def test_fig234_walkthrough(benchmark, capsys):
    table = benchmark(fig234.run)
    with capsys.disabled():
        print()
        print(table.to_text())


def test_fig234_hierarchy_at_scale(benchmark, scale):
    graph = nas_bt(scale.num_tasks, scale.problem_class)
    topo = scale.topology()
    cube_h = CubeHierarchy(topo)

    def build():
        return build_cluster_hierarchy(
            graph, topo.num_nodes, 2**cube_h.n, cube_h.num_levels
        )

    hierarchy = benchmark(build)
    assert hierarchy.num_node_clusters == topo.num_nodes
