"""Valiant (two-phase randomized) oblivious routing.

Valiant's algorithm routes every packet minimally to a *uniformly random
intermediate node*, then minimally to its destination. It trades doubled
hop counts for worst-case load balance — the classic counterpoint to both
dimension-order and minimal-adaptive routing, and a useful anchor when
judging how much a mapping matters: under Valiant, loads are nearly
traffic-oblivious, so mappings barely matter.

The *expected* channel loads of the randomized algorithm are deterministic
and, on a torus, translation-invariant, so the stencil machinery applies:
the Valiant stencil for offset ``delta`` averages, over all intermediate
offsets ``w``, the minimal stencil to ``w`` plus the minimal stencil from
``w`` to ``delta`` (shifted by ``w``). Stencils touch the whole torus but
are computed once per distinct offset.

Only fully-wrapped topologies are supported: on a mesh, Valiant's loads
depend on absolute position and the translation-invariant stencil model
does not apply.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import Router, Stencil
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter

__all__ = ["ValiantRouter"]


class ValiantRouter(Router):
    """Expected-load model of Valiant two-phase randomized routing."""

    name = "valiant"

    def __init__(self, topology):
        if not all(topology.wrap):
            raise RoutingError(
                "ValiantRouter requires a fully-wrapped torus (loads on a "
                "mesh are not translation-invariant)"
            )
        super().__init__(topology)
        self._minimal = MinimalAdaptiveRouter(topology)

    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        topo = self.topology
        V = topo.num_nodes
        shape = np.asarray(topo.shape, dtype=np.int64)
        delta_arr = np.asarray(delta, dtype=np.int64)
        acc: dict[tuple, float] = {}
        inv_v = 1.0 / V

        def add(offsets, dims, dirs, fracs, shift):
            for off, dim, dr, frac in zip(offsets, dims, dirs, fracs):
                key = (tuple(int(x) for x in (shift + off)), int(dim), int(dr))
                acc[key] = acc.get(key, 0.0) + float(frac) * inv_v

        for w_node in range(V):
            w = topo.coords_array[w_node]
            # Phase 1: source -> source + w, minimal offset representative.
            d1 = _reduce(w, shape)
            st1 = self._minimal.stencil(tuple(int(x) for x in d1))
            add(st1.offsets, st1.dims, st1.dirs, st1.fracs,
                np.zeros(topo.ndim, dtype=np.int64))
            # Phase 2: intermediate -> destination, offsets shifted by w.
            d2 = _reduce(delta_arr - w, shape)
            st2 = self._minimal.stencil(tuple(int(x) for x in d2))
            add(st2.offsets, st2.dims, st2.dirs, st2.fracs, w)

        if not acc:
            empty = np.empty((0, topo.ndim), dtype=np.int64)
            z = np.empty(0, dtype=np.int64)
            return Stencil(empty, z, z.copy(), np.empty(0))
        keys = list(acc.keys())
        return Stencil(
            offsets=np.array([k[0] for k in keys], dtype=np.int64),
            dims=np.array([k[1] for k in keys], dtype=np.int64),
            dirs=np.array([k[2] for k in keys], dtype=np.int64),
            fracs=np.array([acc[k] for k in keys]),
        )


def _reduce(offset: np.ndarray, shape: np.ndarray) -> np.ndarray:
    """Minimal wrapped representative of an offset (ties report +k/2)."""
    m = np.mod(offset, shape)
    red = np.where(m > shape // 2, m - shape, m)
    red = np.where((shape % 2 == 0) & (m == shape // 2), shape // 2, red)
    return red
