"""Valiant (two-phase randomized) oblivious routing.

Valiant's algorithm routes every packet minimally to a *uniformly random
intermediate node*, then minimally to its destination. It trades doubled
hop counts for worst-case load balance — the classic counterpoint to both
dimension-order and minimal-adaptive routing, and a useful anchor when
judging how much a mapping matters: under Valiant, loads are nearly
traffic-oblivious, so mappings barely matter.

The *expected* channel loads of the randomized algorithm are deterministic
and, on a torus, translation-invariant, so the stencil machinery applies:
the Valiant stencil for offset ``delta`` averages, over all intermediate
offsets ``w``, the minimal stencil to ``w`` plus the minimal stencil from
``w`` to ``delta`` (shifted by ``w``). Stencils touch the whole torus but
are computed once per distinct offset.

Only fully-wrapped topologies are supported: on a mesh, Valiant's loads
depend on absolute position and the translation-invariant stencil model
does not apply.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import Router, Stencil
from repro.routing.minimal_adaptive import (
    MinimalAdaptiveRouter,
    accumulate_stencil_entries,
)

__all__ = ["ValiantRouter"]


class ValiantRouter(Router):
    """Expected-load model of Valiant two-phase randomized routing."""

    name = "valiant"

    def __init__(self, topology, scalar_fallback=None):
        if not all(topology.wrap):
            raise RoutingError(
                "ValiantRouter requires a fully-wrapped torus (loads on a "
                "mesh are not translation-invariant)"
            )
        super().__init__(topology, scalar_fallback=scalar_fallback)
        self._minimal = MinimalAdaptiveRouter(topology)

    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        topo = self.topology
        V = topo.num_nodes
        shape = np.asarray(topo.shape, dtype=np.int64)
        delta_arr = np.asarray(delta, dtype=np.int64)
        inv_v = 1.0 / V

        off_parts: list[np.ndarray] = []
        dim_parts: list[np.ndarray] = []
        dir_parts: list[np.ndarray] = []
        frac_parts: list[np.ndarray] = []

        def add(st: Stencil, shift: np.ndarray) -> None:
            if st.num_entries == 0:
                return
            off_parts.append(st.offsets + shift[None, :])
            dim_parts.append(st.dims)
            dir_parts.append(st.dirs)
            frac_parts.append(st.fracs)

        for w_node in range(V):
            w = topo.coords_array[w_node]
            # Phase 1: source -> source + w, minimal offset representative.
            d1 = _reduce(w, shape)
            add(self._minimal.stencil(tuple(int(x) for x in d1)),
                np.zeros(topo.ndim, dtype=np.int64))
            # Phase 2: intermediate -> destination, offsets shifted by w.
            d2 = _reduce(delta_arr - w, shape)
            add(self._minimal.stencil(tuple(int(x) for x in d2)), w)

        if not off_parts:
            empty = np.empty((0, topo.ndim), dtype=np.int64)
            z = np.empty(0, dtype=np.int64)
            return Stencil(empty, z, z.copy(), np.empty(0))
        fracs = np.concatenate(frac_parts)
        return accumulate_stencil_entries(
            np.concatenate(off_parts),
            np.concatenate(dim_parts),
            np.concatenate(dir_parts),
            fracs,
            stream_weights=np.full(len(fracs), inv_v),
        )


def _reduce(offset: np.ndarray, shape: np.ndarray) -> np.ndarray:
    """Minimal wrapped representative of an offset (ties report +k/2)."""
    m = np.mod(offset, shape)
    red = np.where(m > shape // 2, m - shape, m)
    red = np.where((shape % 2 == 0) & (m == shape // 2), shape // 2, red)
    return red
