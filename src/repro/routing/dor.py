"""Deterministic dimension-order routing (DOR).

The routing-unaware comparison point: each flow follows the single path
that corrects dimensions in a fixed order (default: dimension 0 first, as
in e-cube routing). On a torus the shorter way around is taken; ties
(offset exactly ``k/2``) break toward the + direction, matching common
hardware conventions.

Under DOR the channel loads of a mapping are exactly its hop-bytes spread
along one path per flow, which is why hop-bytes is the natural objective
for DOR-era mappers — and why it misleads on adaptively-routed machines
(the paper's Figure 1 argument).
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import Router, Stencil

__all__ = ["DimensionOrderRouter"]


class DimensionOrderRouter(Router):
    """Single-path e-cube router.

    Parameters
    ----------
    topology:
        Target topology.
    dim_order:
        Order in which dimensions are corrected; defaults to
        ``0, 1, ..., ndim-1``.
    """

    name = "dimension-order"

    def __init__(self, topology, dim_order=None):
        super().__init__(topology)
        if dim_order is None:
            dim_order = tuple(range(topology.ndim))
        dim_order = tuple(int(d) for d in dim_order)
        if sorted(dim_order) != list(range(topology.ndim)):
            raise RoutingError(
                f"dim_order must be a permutation of 0..{topology.ndim - 1}, "
                f"got {dim_order}"
            )
        self.dim_order = dim_order

    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        topo = self.topology
        ndim = topo.ndim
        entries_off = []
        entries_dim = []
        entries_dir = []
        pos = np.zeros(ndim, dtype=np.int64)
        for d in self.dim_order:
            off = int(delta[d])
            k = topo.shape[d]
            if off == 0:
                continue
            if not topo.wrap[d]:
                if abs(off) >= k:
                    raise RoutingError(
                        f"offset {off} out of range for mesh dimension {d}"
                    )
                steps, sign, direction = abs(off), (1 if off > 0 else -1), (
                    0 if off > 0 else 1
                )
            else:
                plus = off % k
                minus = k - plus
                if plus <= minus:  # tie breaks toward +
                    steps, sign, direction = plus, 1, 0
                else:
                    steps, sign, direction = minus, -1, 1
            for _ in range(steps):
                entries_off.append(pos.copy())
                entries_dim.append(d)
                entries_dir.append(direction)
                pos[d] += sign
        if not entries_off:
            empty = np.empty((0, ndim), dtype=np.int64)
            z = np.empty(0, dtype=np.int64)
            return Stencil(empty, z, z.copy(), np.empty(0))
        return Stencil(
            np.array(entries_off, dtype=np.int64),
            np.array(entries_dim, dtype=np.int64),
            np.array(entries_dir, dtype=np.int64),
            np.ones(len(entries_off)),
        )
