"""Deterministic dimension-order routing (DOR).

The routing-unaware comparison point: each flow follows the single path
that corrects dimensions in a fixed order (default: dimension 0 first, as
in e-cube routing). On a torus the shorter way around is taken; ties
(offset exactly ``k/2``) break toward the + direction, matching common
hardware conventions.

Under DOR the channel loads of a mapping are exactly its hop-bytes spread
along one path per flow, which is why hop-bytes is the natural objective
for DOR-era mappers — and why it misleads on adaptively-routed machines
(the paper's Figure 1 argument).
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import Router, Stencil

__all__ = ["DimensionOrderRouter"]


class DimensionOrderRouter(Router):
    """Single-path e-cube router.

    Parameters
    ----------
    topology:
        Target topology.
    dim_order:
        Order in which dimensions are corrected; defaults to
        ``0, 1, ..., ndim-1``.
    scalar_fallback:
        Force the scalar reference load path (see :class:`Router`).
    """

    name = "dimension-order"

    def __init__(self, topology, dim_order=None, scalar_fallback=None):
        super().__init__(topology, scalar_fallback=scalar_fallback)
        if dim_order is None:
            dim_order = tuple(range(topology.ndim))
        dim_order = tuple(int(d) for d in dim_order)
        if sorted(dim_order) != list(range(topology.ndim)):
            raise RoutingError(
                f"dim_order must be a permutation of 0..{topology.ndim - 1}, "
                f"got {dim_order}"
            )
        self.dim_order = dim_order

    def _stencil_signature(self) -> tuple:
        return (*super()._stencil_signature(), self.dim_order)

    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        topo = self.topology
        ndim = topo.ndim
        # Resolve direction per dimension, then emit each dimension's run
        # of channel entries as one arange along that axis.
        moves = []  # (dim, steps, sign, direction) in correction order
        for d in self.dim_order:
            off = int(delta[d])
            k = topo.shape[d]
            if off == 0:
                continue
            if not topo.wrap[d]:
                if abs(off) >= k:
                    raise RoutingError(
                        f"offset {off} out of range for mesh dimension {d}"
                    )
                steps, sign, direction = abs(off), (1 if off > 0 else -1), (
                    0 if off > 0 else 1
                )
            else:
                plus = off % k
                minus = k - plus
                if plus <= minus:  # tie breaks toward +
                    steps, sign, direction = plus, 1, 0
                else:
                    steps, sign, direction = minus, -1, 1
            moves.append((d, steps, sign, direction))
        total = sum(s for (_, s, _, _) in moves)
        if total == 0:
            empty = np.empty((0, ndim), dtype=np.int64)
            z = np.empty(0, dtype=np.int64)
            return Stencil(empty, z, z.copy(), np.empty(0))
        offsets = np.zeros((total, ndim), dtype=np.int64)
        dims = np.empty(total, dtype=np.int64)
        dirs = np.empty(total, dtype=np.int64)
        pos = np.zeros(ndim, dtype=np.int64)
        at = 0
        for d, steps, sign, direction in moves:
            run = slice(at, at + steps)
            offsets[run] = pos
            offsets[run, d] += sign * np.arange(steps, dtype=np.int64)
            dims[run] = d
            dirs[run] = direction
            pos[d] += sign * steps
            at += steps
        return Stencil(offsets, dims, dirs, np.ones(total))
