"""Oblivious all-minimal-paths approximation of minimal adaptive routing.

BG/Q's minimal adaptive routing (MAR) dynamically picks among minimal
paths to balance load. Following the paper (Section III-D), we approximate
it with an *oblivious* router that splits every flow **uniformly over all
minimal Manhattan paths** between source and destination — the
approximation under which both the Table II MILP and the merge-phase MCL
evaluation operate.

Direction resolution per dimension on a torus: the shorter way around is
minimal; at a tie (offset of exactly ``k/2`` on an even-arity dimension)
*both* directions are minimal and each direction combination carries an
equal share (the interleaving counts coincide because the step counts do).
The arity-2 case degenerates to a 50/50 split over the two parallel
channels — the paper's double-wide-link equivalence.

The fraction of minimal paths crossing the channel leaving lattice offset
``x`` along dimension ``d`` is ``N(0→x) · N(x+e_d→S) / N(0→S)`` with ``N``
the multinomial path count; see :mod:`repro.routing.paths`.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import Router, Stencil
from repro.routing.paths import lattice_path_counts

__all__ = ["MinimalAdaptiveRouter"]


class MinimalAdaptiveRouter(Router):
    """Uniform-over-all-minimal-paths oblivious router."""

    name = "minimal-adaptive"

    def _direction_options(self, delta):
        """Per-dimension list of (dir, steps, sign) minimal options."""
        topo = self.topology
        options = []
        for d in range(topo.ndim):
            off = int(delta[d])
            k = topo.shape[d]
            if off == 0:
                options.append([(0, 0, 0)])
                continue
            if not topo.wrap[d]:
                if abs(off) >= k:
                    raise RoutingError(
                        f"offset {off} out of range for mesh dimension {d} (k={k})"
                    )
                if off > 0:
                    options.append([(0, off, 1)])
                else:
                    options.append([(1, -off, -1)])
                continue
            plus = off % k
            minus = k - plus
            if plus < minus:
                options.append([(0, plus, 1)])
            elif minus < plus:
                options.append([(1, minus, -1)])
            else:  # tie: both directions minimal
                options.append([(0, plus, 1), (1, minus, -1)])
        return options

    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        topo = self.topology
        ndim = topo.ndim
        options = self._direction_options(delta)
        combos = list(itertools.product(*options))
        weight = 1.0 / len(combos)

        acc: dict[tuple, float] = {}
        for combo in combos:
            steps = tuple(s for (_, s, _) in combo)
            signs = np.array([sg for (_, _, sg) in combo], dtype=np.int64)
            dirs = [dr for (dr, _, _) in combo]
            if sum(steps) == 0:
                continue
            N = lattice_path_counts(steps)
            total = N[tuple(steps)]
            # A[x] = paths from x to S
            A = np.flip(N)
            for d in range(ndim):
                s_d = steps[d]
                if s_d == 0:
                    continue
                # Edges leave x with x_d in [0, s_d); crossing fraction:
                before = _axis_slice(N, d, 0, s_d)
                after = _axis_slice(A, d, 1, s_d + 1)
                fracs = before * after / total
                # Lattice coordinates of the sliced box.
                box = tuple(
                    (s + 1) if dd != d else s for dd, s in enumerate(steps)
                )
                coords = _box_coords(box)  # (E_d, ndim) lattice offsets
                offsets = coords * signs[None, :]
                f = fracs.ravel() * weight
                for row, frac in zip(offsets, f):
                    key = (tuple(int(v) for v in row), d, dirs[d])
                    acc[key] = acc.get(key, 0.0) + float(frac)

        return _stencil_from_dict(acc, ndim)


def _axis_slice(arr: np.ndarray, axis: int, start: int, stop: int) -> np.ndarray:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(start, stop)
    return arr[tuple(sl)]


def _box_coords(box: tuple[int, ...]) -> np.ndarray:
    grids = np.meshgrid(*[np.arange(b) for b in box], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=-1)


def _stencil_from_dict(acc: dict, ndim: int) -> Stencil:
    if not acc:
        empty = np.empty((0, ndim), dtype=np.int64)
        z = np.empty(0, dtype=np.int64)
        return Stencil(empty, z, z.copy(), np.empty(0))
    keys = list(acc.keys())
    offsets = np.array([k[0] for k in keys], dtype=np.int64)
    dims = np.array([k[1] for k in keys], dtype=np.int64)
    dirs = np.array([k[2] for k in keys], dtype=np.int64)
    fracs = np.array([acc[k] for k in keys], dtype=np.float64)
    return Stencil(offsets, dims, dirs, fracs)
