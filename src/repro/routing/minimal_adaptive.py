"""Oblivious all-minimal-paths approximation of minimal adaptive routing.

BG/Q's minimal adaptive routing (MAR) dynamically picks among minimal
paths to balance load. Following the paper (Section III-D), we approximate
it with an *oblivious* router that splits every flow **uniformly over all
minimal Manhattan paths** between source and destination — the
approximation under which both the Table II MILP and the merge-phase MCL
evaluation operate.

Direction resolution per dimension on a torus: the shorter way around is
minimal; at a tie (offset of exactly ``k/2`` on an even-arity dimension)
*both* directions are minimal and each direction combination carries an
equal share (the interleaving counts coincide because the step counts do).
The arity-2 case degenerates to a 50/50 split over the two parallel
channels — the paper's double-wide-link equivalence.

The fraction of minimal paths crossing the channel leaving lattice offset
``x`` along dimension ``d`` is ``N(0→x) · N(x+e_d→S) / N(0→S)`` with ``N``
the multinomial path count; see :mod:`repro.routing.paths`.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import Router, Stencil
from repro.routing.paths import lattice_path_counts

__all__ = ["MinimalAdaptiveRouter", "accumulate_stencil_entries"]


class MinimalAdaptiveRouter(Router):
    """Uniform-over-all-minimal-paths oblivious router."""

    name = "minimal-adaptive"

    def _direction_options(self, delta):
        """Per-dimension list of (dir, steps, sign) minimal options."""
        topo = self.topology
        options = []
        for d in range(topo.ndim):
            off = int(delta[d])
            k = topo.shape[d]
            if off == 0:
                options.append([(0, 0, 0)])
                continue
            if not topo.wrap[d]:
                if abs(off) >= k:
                    raise RoutingError(
                        f"offset {off} out of range for mesh dimension {d} (k={k})"
                    )
                if off > 0:
                    options.append([(0, off, 1)])
                else:
                    options.append([(1, -off, -1)])
                continue
            plus = off % k
            minus = k - plus
            if plus < minus:
                options.append([(0, plus, 1)])
            elif minus < plus:
                options.append([(1, minus, -1)])
            else:  # tie: both directions minimal
                options.append([(0, plus, 1), (1, minus, -1)])
        return options

    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        topo = self.topology
        ndim = topo.ndim
        options = self._direction_options(delta)
        combos = list(itertools.product(*options))
        weight = 1.0 / len(combos)

        off_parts: list[np.ndarray] = []
        dim_parts: list[np.ndarray] = []
        dir_parts: list[np.ndarray] = []
        frac_parts: list[np.ndarray] = []
        for combo in combos:
            steps = tuple(s for (_, s, _) in combo)
            signs = np.array([sg for (_, _, sg) in combo], dtype=np.int64)
            dirs = [dr for (dr, _, _) in combo]
            if sum(steps) == 0:
                continue
            N = lattice_path_counts(steps)
            total = N[tuple(steps)]
            # A[x] = paths from x to S
            A = np.flip(N)
            for d in range(ndim):
                s_d = steps[d]
                if s_d == 0:
                    continue
                # Edges leave x with x_d in [0, s_d); crossing fraction:
                before = _axis_slice(N, d, 0, s_d)
                after = _axis_slice(A, d, 1, s_d + 1)
                fracs = before * after / total
                # Lattice coordinates of the sliced box.
                box = tuple(
                    (s + 1) if dd != d else s for dd, s in enumerate(steps)
                )
                coords = _box_coords(box)  # (E_d, ndim) lattice offsets
                off_parts.append(coords * signs[None, :])
                dim_parts.append(np.full(len(coords), d, dtype=np.int64))
                dir_parts.append(np.full(len(coords), dirs[d], dtype=np.int64))
                frac_parts.append(fracs.ravel() * weight)

        if not off_parts:
            empty = np.empty((0, ndim), dtype=np.int64)
            z = np.empty(0, dtype=np.int64)
            return Stencil(empty, z, z.copy(), np.empty(0))
        return accumulate_stencil_entries(
            np.concatenate(off_parts),
            np.concatenate(dim_parts),
            np.concatenate(dir_parts),
            np.concatenate(frac_parts),
        )


def _axis_slice(arr: np.ndarray, axis: int, start: int, stop: int) -> np.ndarray:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(start, stop)
    return arr[tuple(sl)]


def _box_coords(box: tuple[int, ...]) -> np.ndarray:
    grids = np.meshgrid(*[np.arange(b) for b in box], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=-1)


def accumulate_stencil_entries(
    offsets: np.ndarray,
    dims: np.ndarray,
    dirs: np.ndarray,
    fracs: np.ndarray,
    stream_weights: np.ndarray | None = None,
) -> Stencil:
    """Fold a (channel, fraction) entry stream into a deduplicated stencil.

    Entries sharing a (offset, dim, dir) channel key are summed; output
    entries appear in first-appearance stream order and each key's
    fractions accumulate in stream order (``np.add.at`` is sequential),
    so the result is bitwise-identical to the dict-accumulation loop it
    replaces. ``stream_weights`` optionally scales each entry's fraction
    first (e.g. the Valiant ``1/V`` intermediate-node weight).
    """
    ndim = offsets.shape[1]
    fracs = fracs.astype(np.float64, copy=False)
    if stream_weights is not None:
        fracs = fracs * stream_weights
    # Collision-free integer key: mixed-radix offset coords + dim + dir.
    lo = offsets.min(axis=0)
    radix = offsets.max(axis=0) - lo + 1
    keys = np.zeros(len(offsets), dtype=np.int64)
    for d in range(ndim):
        keys = keys * radix[d] + (offsets[:, d] - lo[d])
    keys = (keys * ndim + dims) * 2 + dirs
    _, first, inv = np.unique(keys, return_index=True, return_inverse=True)
    appear = np.argsort(first, kind="stable")  # unique ids, appearance order
    rank = np.empty_like(appear)
    rank[appear] = np.arange(len(appear))
    ids = rank[inv]
    acc = np.zeros(len(appear))
    np.add.at(acc, ids, fracs)
    rep = first[appear]  # stream index of each output entry's first hit
    return Stencil(offsets[rep], dims[rep], dirs[rep], acc)
