"""Monotone lattice-path counting.

A minimal Manhattan path taking ``s = (s_0, ..., s_{n-1})`` steps (one
direction per dimension) is an interleaving of the per-dimension steps; the
number of such paths is the multinomial coefficient
``(sum s)! / prod(s_d!)``. The fraction of uniformly-chosen minimal paths
crossing a given channel factorizes into path counts before and after the
channel, which is what :mod:`repro.routing.minimal_adaptive` uses.

Counts are exact in float64 for the step totals this library encounters
(``sum s`` up to ~30 on realistic tori); a guard raises beyond the exact
range rather than silently losing precision.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import RoutingError

__all__ = ["multinomial", "lattice_path_counts"]

# (sum s)! must stay exactly representable; 2^53 > 18! but we only need the
# *ratio* to ~1e-12, so allow factorials up to 170 (float64 overflow bound)
# and verify the total is modest.
_MAX_TOTAL_STEPS = 120
_FACTORIALS = np.array([math.factorial(i) for i in range(171)], dtype=np.float64)


def multinomial(steps) -> float:
    """Multinomial coefficient ``(sum steps)! / prod(steps_d!)``.

    >>> multinomial([2, 1])
    3.0
    """
    steps = np.asarray(steps, dtype=np.int64)
    if np.any(steps < 0):
        raise RoutingError(f"negative step counts: {steps}")
    total = int(steps.sum())
    if total > _MAX_TOTAL_STEPS:
        raise RoutingError(
            f"path length {total} exceeds supported maximum "
            f"{_MAX_TOTAL_STEPS}; topology too large for exact path counting"
        )
    return float(_FACTORIALS[total] / np.prod(_FACTORIALS[steps]))


def lattice_path_counts(steps: tuple[int, ...]) -> np.ndarray:
    """Paths from the origin to every lattice point of the step box.

    Returns an array ``N`` of shape ``tuple(s+1 for s in steps)`` where
    ``N[x]`` is the number of monotone paths from ``0`` to ``x``. Computed
    with the multinomial closed form, vectorized over the box.
    """
    steps = tuple(int(s) for s in steps)
    if any(s < 0 for s in steps):
        raise RoutingError(f"negative step counts: {steps}")
    total = sum(steps)
    if total > _MAX_TOTAL_STEPS:
        raise RoutingError(
            f"path length {total} exceeds supported maximum {_MAX_TOTAL_STEPS}"
        )
    if not steps:
        return np.array(1.0)
    grids = np.meshgrid(
        *[np.arange(s + 1) for s in steps], indexing="ij", sparse=False
    )
    coords = np.stack(grids, axis=-1)  # box shape + (ndim,)
    totals = coords.sum(axis=-1)
    counts = _FACTORIALS[totals] / np.prod(_FACTORIALS[coords], axis=-1)
    return counts
