"""Routing models and channel-load computation.

The quality metric RAHTM optimizes is the **maximum channel load (MCL)**
under the platform's routing algorithm. BG/Q uses minimal adaptive routing
(MAR); following the paper (Section III-D and refs [19, 20] therein) we
model it as an *oblivious* router that spreads every flow uniformly over
all minimal (Manhattan) paths — :class:`MinimalAdaptiveRouter`. The
routing-unaware comparison point is classic dimension-order routing
(:class:`DimensionOrderRouter`).

Both routers work by *stencils*: for a source-destination offset ``delta``
the per-channel fraction of the flow is translation-invariant, so it is
computed once per distinct ``delta`` and scattered into a dense load vector
for every flow sharing it. This makes one MCL evaluation a handful of numpy
scatter-adds — the inner loop of RAHTM's merge phase.
"""

from repro.routing.base import Router, Stencil
from repro.routing.dor import DimensionOrderRouter
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.routing.paths import lattice_path_counts, multinomial
from repro.routing.valiant import ValiantRouter

__all__ = [
    "Router",
    "Stencil",
    "DimensionOrderRouter",
    "MinimalAdaptiveRouter",
    "ValiantRouter",
    "lattice_path_counts",
    "multinomial",
]
