"""Router interface and the stencil-based load computation engine.

A :class:`Stencil` describes, for one source-destination offset ``delta``,
which channels a unit flow touches and with what fraction, *relative to the
flow's source node*. Translation invariance of tori/meshes makes stencils
reusable across all flows sharing a ``delta``.

Two load paths share the stencil machinery:

- the **vectorized CSR path** (default): every cached stencil's entries
  live in one concatenated entry table (``indptr``-sliced, CSR style — the
  same flow x link representation the attribution layer derives); a call
  expands all flows to table entries at once and performs a *single*
  ordered ``np.add.at`` scatter. Entry expansion follows exactly the
  (offset-group, flow, entry) order of the scalar path, so per-slot
  accumulation order — and therefore every float in the result — is
  bitwise-identical to the scalar reference.
- the **scalar reference path**: the original one-scatter-per-offset-group
  loop, retained as the correctness oracle for the property tests and as
  an escape hatch (``REPRO_SCALAR_ROUTING=1`` in the environment, or
  ``Router(..., scalar_fallback=True)``) for environments where the
  batched numpy path misbehaves.

:meth:`Router.link_loads_many` scores many candidate flow sets (e.g. all
orientations of a merge-phase block) in one batched scatter — the merge
hot path — again bitwise-identical to per-candidate calls.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.observability.metrics import get_registry
from repro.topology.cartesian import CartesianTopology

__all__ = [
    "Stencil",
    "Router",
    "ScatterPlan",
    "PairPlan",
    "scalar_routing_requested",
    "clear_stencil_cache",
]


def scalar_routing_requested() -> bool:
    """True when the environment forces the scalar reference path."""
    return os.environ.get("REPRO_SCALAR_ROUTING", "").strip() not in ("", "0")


# Process-wide stencil memo. Stencils are pure functions of (router type
# and parameters, topology shape/wrap, delta), so routers with equal
# signatures share them across instances — repeated mapper runs (bench
# repeats, hierarchy levels, serve requests) skip rebuilding identical
# stencils. Sharing is bitwise-safe: the cached object is the exact array
# set a fresh build would produce, and consumers never mutate stencils.
_STENCIL_MEMO: dict[tuple, Stencil] = {}
_STENCIL_MEMO_CAP = 100_000


def clear_stencil_cache() -> None:
    """Drop the process-wide stencil memo (for tests and benchmarks)."""
    _STENCIL_MEMO.clear()


@dataclass(frozen=True)
class Stencil:
    """Per-channel unit-flow fractions for one source-relative offset.

    Attributes
    ----------
    offsets:
        (E, ndim) signed coordinate offsets of each channel's *source node*
        relative to the flow source.
    dims:
        (E,) dimension index of each channel.
    dirs:
        (E,) direction of each channel (0 = +, 1 = -).
    fracs:
        (E,) fraction of the flow volume carried (sums to hops-per-path
        averaged over paths, i.e. ``sum(fracs) == mean path length``).
    """

    offsets: np.ndarray
    dims: np.ndarray
    dirs: np.ndarray
    fracs: np.ndarray

    @property
    def num_entries(self) -> int:
        return len(self.fracs)

    @property
    def mean_path_length(self) -> float:
        """Expected hop count of the flow (== total fraction mass)."""
        return float(self.fracs.sum())


@dataclass(frozen=True)
class ScatterPlan:
    """Precomputed scatter expansion of one fixed (srcs, dsts) flow set.

    :meth:`add_into` replays the expansion against any volume vector:
    ``plan.add_into(out, vols)`` is bitwise-identical to
    ``router.link_loads(srcs, dsts, vols, out=out)`` for the endpoints
    the plan was built from. Hot loops that re-score the same flow set
    under several volume signs (the refine pass's propose/rollback
    pattern) pay the grouping + expansion cost once.
    """

    slots: np.ndarray     # (T,) channel-slot id per expanded entry
    fracs: np.ndarray     # (T,) stencil fraction per expanded entry
    flow_idx: np.ndarray  # (T,) index into the *original* vols array

    def add_into(self, out: np.ndarray, vols: np.ndarray) -> np.ndarray:
        np.add.at(out, self.slots, vols[self.flow_idx] * self.fracs)
        return out


@dataclass(frozen=True)
class PairPlan:
    """A scatter with contributions already multiplied in.

    ``add_into(out, sign=-1)`` scatters the exact negation — IEEE
    negation is exact, so propose/rollback loops replay removals
    bitwise without recomputing anything.
    """

    slots: np.ndarray    # (T,) channel-slot id per expanded entry
    contrib: np.ndarray  # (T,) volume x fraction per expanded entry

    def add_into(self, out: np.ndarray, sign: float = 1.0) -> np.ndarray:
        np.add.at(out, self.slots, self.contrib if sign > 0 else -self.contrib)
        return out


class Router(abc.ABC):
    """Routing model bound to one topology.

    Subclasses implement :meth:`_build_stencil`; everything else (caching,
    grouping, scatter-adds, MCL) is shared.

    Parameters
    ----------
    topology:
        Target topology.
    scalar_fallback:
        ``True`` forces the scalar reference implementation of
        :meth:`link_loads`; ``None`` (default) consults the
        ``REPRO_SCALAR_ROUTING`` environment variable.
    """

    name: str = "router"

    def __init__(
        self, topology: CartesianTopology, scalar_fallback: bool | None = None
    ):
        self.topology = topology
        self._stencils: dict[tuple[int, ...], Stencil] = {}
        if scalar_fallback is None:
            scalar_fallback = scalar_routing_requested()
        self.scalar_fallback = bool(scalar_fallback)
        # CSR stencil table: per-key ids into concatenated entry arrays,
        # rebuilt lazily whenever a new offset's stencil lands in the cache.
        self._stencil_seq: list[Stencil] = []
        self._stencil_ids: dict[tuple[int, ...], int] = {}
        self._table_dirty = True
        self._tab_indptr = np.zeros(1, dtype=np.int64)
        self._tab_offsets = np.empty((0, topology.ndim), dtype=np.int64)
        self._tab_dims = np.empty(0, dtype=np.int64)
        self._tab_dirs = np.empty(0, dtype=np.int64)
        self._tab_fracs = np.empty(0, dtype=np.float64)
        # Pairwise (src*V + dst) -> offset-key/delta lookup, built lazily
        # for small-enough topologies: hot callers (the refine loop) then
        # skip per-call delta reduction entirely.
        self._pair_keys: np.ndarray | None = None
        self._pair_deltas: np.ndarray | None = None
        # Per-pair (slots, fracs) expansions: (src, dst) pairs recur
        # heavily in the refine loop, so their entry streams are cached
        # whole in a pooled CSR (pid -> cache id -> pooled slice) that a
        # hot call assembles with pure gathers. Bounded so pathological
        # pair churn cannot eat the heap.
        self._pair_cid: np.ndarray | None = None
        self._pp_count = 0
        self._pp_indptr = np.zeros(1024, dtype=np.int64)
        self._pp_slots = np.empty(0, dtype=np.int64)
        self._pp_fracs = np.empty(0, dtype=np.float64)
        self._pair_cache_cap = 262144
        self._sid_by_key: dict[int, int] = {}
        # Dense key -> stencil id map (-1 = unseen) when the key space is
        # small enough; replaces the per-group dict loop with one gather.
        kspace = 1
        for k in topology.shape:
            kspace *= 2 * int(k) + 1
        self._sid_dense: np.ndarray | None = (
            np.full(kspace, -1, dtype=np.int64) if kspace <= 4_000_000 else None
        )
        self._wrap_dims = np.array(
            [d for d in range(topology.ndim) if topology.wrap[d]],
            dtype=np.int64,
        )
        self._shape_row = np.asarray(topology.shape, dtype=np.int64)[None, :]
        self._wrap_extents = self._shape_row[0, self._wrap_dims]
        self._all_wrap = len(self._wrap_dims) == topology.ndim
        # Bound once: stencil cache traffic is hot-path telemetry.
        registry = get_registry()
        self._m_stencil_hits = registry.counter("router.stencil_hits")
        self._m_stencil_misses = registry.counter("router.stencil_misses")
        self._m_load_calls = registry.counter("router.link_load_calls")
        self._m_batch_calls = registry.counter("router.batch_load_calls")
        self._m_scatter_entries = registry.counter("router.scatter_entries")

    # -- stencils -----------------------------------------------------------------
    def stencil(self, delta) -> Stencil:
        """Stencil for a signed per-dimension offset (cached)."""
        key = tuple(int(x) for x in np.asarray(delta).ravel())
        if len(key) != self.topology.ndim:
            raise RoutingError(
                f"delta has {len(key)} entries for a {self.topology.ndim}-D topology"
            )
        st = self._stencils.get(key)
        if st is None:
            gkey = (self._stencil_signature(), key)
            st = _STENCIL_MEMO.get(gkey)
            if st is None:
                self._m_stencil_misses.inc()
                st = self._build_stencil(key)
                if len(_STENCIL_MEMO) < _STENCIL_MEMO_CAP:
                    _STENCIL_MEMO[gkey] = st
            else:
                self._m_stencil_hits.inc()
            self._stencils[key] = st
            self._stencil_ids[key] = len(self._stencil_seq)
            self._stencil_seq.append(st)
            self._table_dirty = True
        else:
            self._m_stencil_hits.inc()
        return st

    def _stencil_signature(self) -> tuple:
        """Hashable identity of this router's stencil function.

        Routers with equal signatures produce identical stencils for any
        delta and therefore share the process-wide memo. Subclasses whose
        stencils depend on extra parameters must extend this.
        """
        t = self.topology
        return (
            f"{type(self).__module__}.{type(self).__qualname__}",
            tuple(int(x) for x in t.shape),
            tuple(bool(w) for w in t.wrap),
        )

    @abc.abstractmethod
    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        """Compute the stencil for one offset; called once per distinct offset."""

    def _refresh_table(self) -> None:
        """Rebuild the concatenated CSR entry table after cache growth."""
        if not self._table_dirty:
            return
        sts = self._stencil_seq
        counts = np.array([s.num_entries for s in sts], dtype=np.int64)
        self._tab_indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        )
        if sts:
            self._tab_offsets = np.concatenate(
                [np.atleast_2d(s.offsets).reshape(-1, self.topology.ndim)
                 for s in sts]
            )
            self._tab_dims = np.concatenate([s.dims for s in sts])
            self._tab_dirs = np.concatenate([s.dirs for s in sts])
            self._tab_fracs = np.concatenate([s.fracs for s in sts])
        self._table_dirty = False

    def stencil_slots(self, st: Stencil, src_nodes) -> np.ndarray:
        """Channel-slot ids ``st`` touches for each source node, shape (m, E).

        Shared by :meth:`link_loads`, the fluid simulator's usage matrix
        and the attribution engine so the three can never disagree on
        which channels a flow crosses.
        """
        topo = self.topology
        src_nodes = np.asarray(src_nodes, dtype=np.int64)
        c = topo.coords_array[src_nodes][:, None, :] + st.offsets[None, :, :]
        for d in range(topo.ndim):
            if topo.wrap[d]:
                c[..., d] %= topo.shape[d]
        nodes = c @ topo.strides
        return (nodes * topo.ndim + st.dims[None, :]) * 2 + st.dirs[None, :]

    def group_flows_by_offset(self, srcs, dsts):
        """Group flow indices by their routing offset.

        Returns ``(deltas, groups)`` where ``deltas`` is the (m, ndim)
        signed offset array and ``groups`` is a list of flow-index
        arrays — one per distinct offset, covering all flows. Grouping
        uses a mixed-radix key (offsets are bounded by the shape, so
        shifting into ``[0, 2k)`` per dim is collision-free).
        """
        deltas = self.topology.delta(srcs, dsts)
        order, starts, sizes = self._offset_groups(deltas)
        bounds = np.concatenate((starts, [len(order)]))
        groups = [order[bounds[i]: bounds[i + 1]] for i in range(len(starts))]
        return deltas, groups

    def _keys_for(self, deltas: np.ndarray) -> np.ndarray:
        """Collision-free mixed-radix key per offset row (sort == group)."""
        shape_arr = np.asarray(self.topology.shape, dtype=np.int64)
        keys = np.zeros(deltas.shape[0], dtype=np.int64)
        for d in range(self.topology.ndim):
            keys = keys * (2 * shape_arr[d] + 1) + (deltas[:, d] + shape_arr[d])
        return keys

    @staticmethod
    def _group_sorted(keys: np.ndarray):
        """(order, starts, sizes) of a stable sort-and-group over keys."""
        order = np.argsort(keys, kind="stable")
        n = len(order)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return order, empty, empty.copy()
        keys_sorted = keys[order]
        mask = np.empty(n, dtype=bool)
        mask[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=mask[1:])
        starts = np.flatnonzero(mask)
        sizes = np.empty(len(starts), dtype=np.int64)
        sizes[:-1] = starts[1:] - starts[:-1]
        sizes[-1] = n - starts[-1]
        return order, starts, sizes

    def _offset_groups(self, deltas: np.ndarray):
        """Stable grouping of flows by offset key.

        Returns ``(order, starts, sizes)``: flow indices sorted stably by
        mixed-radix offset key, the start position of each distinct-key
        group within ``order``, and each group's size.
        """
        return self._group_sorted(self._keys_for(deltas))

    def _build_pair_tables(self) -> None:
        """Precompute offset keys and deltas for every (src, dst) pair."""
        topo = self.topology
        V = topo.num_nodes
        s = np.repeat(np.arange(V, dtype=np.int64), V)
        d = np.tile(np.arange(V, dtype=np.int64), V)
        deltas = topo.delta(s, d)
        self._pair_deltas = deltas
        self._pair_keys = self._keys_for(deltas)
        self._pair_cid = np.full(V * V, -1, dtype=np.int64)

    # -- load computation -----------------------------------------------------------
    def link_loads(self, srcs, dsts, vols, out: np.ndarray | None = None) -> np.ndarray:
        """Dense per-channel-slot load vector for a set of flows.

        Parameters
        ----------
        srcs, dsts:
            Node ids (arrays of equal length). Flows with ``src == dst``
            stay on-node and contribute no network load.
        vols:
            Flow volumes (bytes or relative units).
        out:
            Optional preallocated/accumulating load vector of length
            ``topology.num_channel_slots``; loads are *added* into it.
        """
        topo = self.topology
        self._m_load_calls.inc()
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        if not (srcs.shape == dsts.shape == vols.shape) or srcs.ndim != 1:
            raise RoutingError("srcs, dsts, vols must be equal-length 1-D arrays")
        if out is None:
            out = np.zeros(topo.num_channel_slots)
        elif out.shape != (topo.num_channel_slots,):
            raise RoutingError(
                f"out has shape {out.shape}, expected ({topo.num_channel_slots},)"
            )
        if len(srcs) == 0:
            return out

        offnode = srcs != dsts
        if not offnode.all():
            srcs, dsts, vols = srcs[offnode], dsts[offnode], vols[offnode]
            if len(srcs) == 0:
                return out

        if self.scalar_fallback:
            return self._link_loads_scalar(srcs, dsts, vols, out)

        for flows_exp, entries_exp in self._iter_expanded(srcs, dsts):
            slots = self._entry_slots(srcs[flows_exp], entries_exp)
            np.add.at(out, slots, vols[flows_exp] * self._tab_fracs[entries_exp])
        return out

    def _link_loads_scalar(self, srcs, dsts, vols, out) -> np.ndarray:
        """Scalar reference path: one scatter-add per distinct offset.

        The vectorized path is defined as bitwise-equal to this loop;
        property tests enforce the equivalence.
        """
        deltas, groups = self.group_flows_by_offset(srcs, dsts)
        for rows in groups:
            st = self.stencil(deltas[rows[0]])
            if st.num_entries == 0:
                continue
            slots = self.stencil_slots(st, srcs[rows])
            contrib = vols[rows][:, None] * st.fracs[None, :]
            np.add.at(out, slots.ravel(), contrib.ravel())
        return out

    def _expansion_parts(self, srcs: np.ndarray, dsts: np.ndarray):
        """Group-level expansion metadata for a set of off-node flows.

        Returns ``(order, per_flow, entry_start)`` — sorted flow indices
        (ascending offset key, stable), the table-entry count per sorted
        flow, and each sorted flow's first table-entry index. The full
        (flow, entry) stream is the per-flow runs laid out in this order;
        callers may materialize it whole or in consecutive chunks — both
        produce the identical stream.
        """
        topo = self.topology
        V = topo.num_nodes
        if (
            self._pair_keys is None
            and V * V * (topo.ndim + 1) <= 16_000_000
        ):
            self._build_pair_tables()
        if self._pair_keys is not None:
            pid = srcs * V + dsts
            keys = self._pair_keys[pid]
            deltas = None
        else:
            pid = None
            deltas = topo.delta(srcs, dsts)
            keys = self._keys_for(deltas)
        order, starts, sizes = self._group_sorted(keys)
        group_keys = keys[order[starts]]
        if self._sid_dense is not None:
            sids = self._sid_dense[group_keys]
            miss = np.flatnonzero(sids < 0)
        else:
            sids = np.array(
                [self._sid_by_key.get(int(k), -1) for k in group_keys],
                dtype=np.int64,
            )
            miss = np.flatnonzero(sids < 0)
        for j in miss:
            f = order[starts[j]]
            row = self._pair_deltas[pid[f]] if deltas is None else deltas[f]
            dkey = tuple(int(x) for x in row)
            self.stencil(dkey)  # counts the hit/miss, builds if new
            sid = self._stencil_ids[dkey]
            sids[j] = sid
            if self._sid_dense is not None:
                self._sid_dense[group_keys[j]] = sid
            else:
                self._sid_by_key[int(group_keys[j])] = sid
        hits = len(starts) - len(miss)
        if hits:
            self._m_stencil_hits.inc(hits)
        self._refresh_table()
        indptr = self._tab_indptr
        ecnt = indptr[sids + 1] - indptr[sids]            # entries per group
        per_flow = np.repeat(ecnt, sizes)                 # entries per sorted flow
        entry_start = np.repeat(indptr[sids], sizes)      # first entry per flow
        return order, per_flow, entry_start

    @staticmethod
    def _materialize_expansion(order, per_flow, entry_start):
        """Expand (flow, entry-count, entry-start) runs into flat pairs."""
        total = int(per_flow.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        flows_exp = np.repeat(order, per_flow)
        flow_start = np.cumsum(per_flow) - per_flow       # expansion offsets
        within = np.arange(total, dtype=np.int64) - np.repeat(
            flow_start, per_flow
        )
        entries_exp = np.repeat(entry_start, per_flow) + within
        return flows_exp, entries_exp

    def _expand_entries(self, srcs: np.ndarray, dsts: np.ndarray):
        """Expand off-node flows into (flow_index, table_entry) pairs.

        The pair stream is ordered by (ascending offset key, flow position
        within the key group, stencil entry) — exactly the order the
        scalar path scatters in, which is what keeps the single
        ``np.add.at`` bitwise-faithful to the per-group loop.
        """
        order, per_flow, entry_start = self._expansion_parts(srcs, dsts)
        total = int(per_flow.sum())
        self._m_scatter_entries.inc(total)
        return self._materialize_expansion(order, per_flow, entry_start)

    # Expanded (flow, entry) pairs processed per scatter pass. Bounding the
    # pass keeps every temporary at a few MB so the allocator reuses warm
    # heap pages and the working set stays cache-resident — one giant pass
    # spends most of its time in soft page faults on multi-GB fresh
    # arrays. Sequential ``np.add.at`` over consecutive chunks of one
    # stream applies the identical addition sequence, so chunking never
    # changes a bit of the result.
    _expansion_chunk = 131_072

    def _iter_expanded(self, srcs: np.ndarray, dsts: np.ndarray):
        """Yield the (flow, entry) stream in bounded consecutive chunks."""
        order, per_flow, entry_start = self._expansion_parts(srcs, dsts)
        total = int(per_flow.sum())
        self._m_scatter_entries.inc(total)
        if total == 0:
            return
        if total <= self._expansion_chunk:
            yield self._materialize_expansion(order, per_flow, entry_start)
            return
        ends = np.cumsum(per_flow)
        n = len(order)
        i0 = 0
        while i0 < n:
            base = int(ends[i0] - per_flow[i0])
            i1 = int(np.searchsorted(ends, base + self._expansion_chunk,
                                     side="right"))
            i1 = min(max(i1, i0 + 1), n)  # an oversize flow runs alone
            yield self._materialize_expansion(
                order[i0:i1], per_flow[i0:i1], entry_start[i0:i1]
            )
            i0 = i1

    def _entry_slots(self, src_nodes: np.ndarray, entries: np.ndarray) -> np.ndarray:
        """Channel-slot ids for (source node, table entry) pairs."""
        topo = self.topology
        c = topo.coords_array[src_nodes] + self._tab_offsets[entries]
        if self._all_wrap:
            c %= self._shape_row
        elif len(self._wrap_dims):
            c[:, self._wrap_dims] %= self._wrap_extents
        nodes = c @ topo.strides
        return (nodes * topo.ndim + self._tab_dims[entries]) * 2 + self._tab_dirs[
            entries
        ]

    def link_loads_many(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        vols: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """Accumulate loads for ``B`` candidate flow sets in one scatter.

        Parameters
        ----------
        srcs, dsts:
            (B, m) node-id matrices — row ``b`` is candidate ``b``'s
            endpoints for the same ``m`` logical flows.
        vols:
            (m,) shared flow volumes.
        out:
            (B, num_channel_slots) load matrix; loads are added in place,
            row ``b`` receiving exactly what
            ``link_loads(srcs[b], dsts[b], vols, out=out[b])`` would add
            (bitwise — candidates scatter into disjoint rows and each
            row's entry stream keeps the scalar order).
        """
        topo = self.topology
        self._m_batch_calls.inc()
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        if srcs.ndim != 2 or srcs.shape != dsts.shape:
            raise RoutingError("srcs and dsts must be equal-shape (B, m) arrays")
        B, m = srcs.shape
        if vols.shape != (m,):
            raise RoutingError(f"vols must have shape ({m},), got {vols.shape}")
        S = topo.num_channel_slots
        if out.shape != (B, S):
            raise RoutingError(f"out has shape {out.shape}, expected ({B}, {S})")
        if m == 0 or B == 0:
            return out
        if self.scalar_fallback:
            for b in range(B):
                self.link_loads(srcs[b], dsts[b], vols, out=out[b])
            return out

        flat_s = srcs.ravel()
        flat_d = dsts.ravel()
        keep = np.flatnonzero(flat_s != flat_d)
        if len(keep) == 0:
            return out
        flat_out = out.reshape(-1)
        for pairs_exp, entries_exp in self._iter_expanded(
            flat_s[keep], flat_d[keep]
        ):
            flat_idx = keep[pairs_exp]
            slots = self._entry_slots(flat_s[flat_idx], entries_exp)
            rows = flat_idx // m
            contrib = vols[flat_idx % m] * self._tab_fracs[entries_exp]
            np.add.at(flat_out, rows * S + slots, contrib)
        return out

    def scatter_plan(self, srcs, dsts) -> ScatterPlan:
        """Precompute the load scatter for a fixed endpoint set.

        The returned :class:`ScatterPlan` replays
        ``link_loads(srcs, dsts, vols, out=...)`` bitwise for any
        ``vols`` of the same length (on-node flows contribute nothing
        and are dropped from the plan).
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.shape != dsts.shape or srcs.ndim != 1:
            raise RoutingError("srcs and dsts must be equal-length 1-D arrays")
        keep = np.flatnonzero(srcs != dsts)
        if len(keep) == 0:
            empty = np.empty(0, dtype=np.int64)
            return ScatterPlan(empty, np.empty(0), empty.copy())
        flows_exp, entries_exp = self._expand_entries(srcs[keep], dsts[keep])
        if len(flows_exp) == 0:
            empty = np.empty(0, dtype=np.int64)
            return ScatterPlan(empty, np.empty(0), empty.copy())
        slots = self._entry_slots(srcs[keep][flows_exp], entries_exp)
        return ScatterPlan(
            slots, self._tab_fracs[entries_exp], keep[flows_exp]
        )

    def pair_tables_available(self) -> bool:
        """True when the all-pairs key/delta tables exist (or fit)."""
        if self._pair_keys is not None:
            return True
        topo = self.topology
        V = topo.num_nodes
        if V * V * (topo.ndim + 1) <= 16_000_000:
            self._build_pair_tables()
            return True
        return False

    def _pair_entry(self, pid: int, src: int) -> tuple[np.ndarray, np.ndarray]:
        """(slots, fracs) entry stream for one (src, dst) pair."""
        dkey = tuple(int(x) for x in self._pair_deltas[pid])
        self.stencil(dkey)
        self._refresh_table()
        sid = self._stencil_ids[dkey]
        i0 = int(self._tab_indptr[sid])
        i1 = int(self._tab_indptr[sid + 1])
        if i0 == i1:
            return np.empty(0, dtype=np.int64), np.empty(0)
        entries = np.arange(i0, i1, dtype=np.int64)
        slots = self._entry_slots(
            np.full(i1 - i0, src, dtype=np.int64), entries
        )
        return slots, self._tab_fracs[i0:i1].copy()

    def pair_scatter(self, srcs, dsts, vols) -> PairPlan | None:
        """Build a :class:`PairPlan` from per-pair cached expansions.

        ``plan.add_into(out)`` is bitwise-identical to
        ``link_loads(srcs, dsts, vols, out=out)`` and
        ``plan.add_into(out, sign=-1)`` to the same call with ``-vols``:
        the flow stream is the identical stable key sort, each pair's
        entry block is the identical stencil slice, and IEEE negation
        distributes exactly over the products. Returns ``None`` when the
        all-pairs tables don't fit (callers fall back to
        :meth:`scatter_plan`).

        Unlike :meth:`scatter_plan` the per-pair expansions are cached
        across calls, so hot loops that revisit the same endpoints (the
        refine pass) skip the grouping/expansion machinery entirely.
        """
        if self.scalar_fallback or not self.pair_tables_available():
            return None
        topo = self.topology
        V = topo.num_nodes
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        if not (srcs.shape == dsts.shape == vols.shape) or srcs.ndim != 1:
            raise RoutingError("srcs, dsts, vols must be equal-length 1-D arrays")
        keep = np.flatnonzero(srcs != dsts)
        empty_plan = PairPlan(np.empty(0, dtype=np.int64), np.empty(0))
        if len(keep) == 0:
            return empty_plan
        s = srcs[keep]
        pid = s * V + dsts[keep]
        order = np.argsort(self._pair_keys[pid], kind="stable")
        pid_s = pid[order]
        cids = self._pair_cid[pid_s]
        for j in np.flatnonzero(cids < 0):
            p = int(pid_s[j])
            c = int(self._pair_cid[p])  # a duplicate pid may be cached now
            if c < 0 and self._pp_count < self._pair_cache_cap:
                slots_e, fracs_e = self._pair_entry(p, int(s[order[j]]))
                c = self._pair_pool_append(slots_e, fracs_e)
                self._pair_cid[p] = c
            cids[j] = c
        if (cids < 0).any():
            # Cache cap exhausted: same stream via the uncached expansion.
            vols_k = vols[keep]
            flows_exp, entries_exp = self._expand_entries(s, dsts[keep])
            if len(flows_exp) == 0:
                return empty_plan
            slots = self._entry_slots(s[flows_exp], entries_exp)
            return PairPlan(
                slots, vols_k[flows_exp] * self._tab_fracs[entries_exp]
            )
        indptr = self._pp_indptr
        counts = indptr[cids + 1] - indptr[cids]
        total = int(counts.sum())
        self._m_scatter_entries.inc(total)
        if total == 0:
            return empty_plan
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        idx = np.repeat(indptr[cids], counts) + within
        contrib = np.repeat(vols[keep[order]], counts) * self._pp_fracs[idx]
        return PairPlan(self._pp_slots[idx], contrib)

    def _pair_pool_append(self, slots: np.ndarray, fracs: np.ndarray) -> int:
        """Append one pair's entry stream to the pooled CSR (amortized O(1))."""
        n = len(fracs)
        cnt = self._pp_count
        end = int(self._pp_indptr[cnt])
        need = end + n
        if need > len(self._pp_slots):
            cap = max(1024, 2 * len(self._pp_slots), need)
            grown = np.empty(cap, dtype=np.int64)
            grown[:end] = self._pp_slots[:end]
            self._pp_slots = grown
            grownf = np.empty(cap, dtype=np.float64)
            grownf[:end] = self._pp_fracs[:end]
            self._pp_fracs = grownf
        if cnt + 2 > len(self._pp_indptr):
            grown = np.empty(2 * len(self._pp_indptr), dtype=np.int64)
            grown[: cnt + 1] = self._pp_indptr[: cnt + 1]
            self._pp_indptr = grown
        self._pp_slots[end:need] = slots
        self._pp_fracs[end:need] = fracs
        self._pp_indptr[cnt + 1] = need
        self._pp_count = cnt + 1
        return cnt

    # -- metrics ---------------------------------------------------------------------
    def max_channel_load(self, srcs, dsts, vols) -> float:
        """MCL: the load on the most-loaded channel."""
        loads = self.link_loads(srcs, dsts, vols)
        return float(loads.max()) if loads.size else 0.0

    def average_hops(self, srcs, dsts, vols) -> float:
        """Volume-weighted mean hop count under this router."""
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        total_v = vols.sum()
        if total_v == 0:
            return 0.0
        deltas = self.topology.delta(srcs, dsts)
        hops = np.array(
            [self.stencil(d).mean_path_length for d in deltas]
        )
        return float((hops * vols).sum() / total_v)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.topology!r})"
