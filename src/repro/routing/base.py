"""Router interface and the stencil-based load computation engine.

A :class:`Stencil` describes, for one source-destination offset ``delta``,
which channels a unit flow touches and with what fraction, *relative to the
flow's source node*. Translation invariance of tori/meshes makes stencils
reusable across all flows sharing a ``delta``, so
:meth:`Router.link_loads` groups flows by offset and performs one
vectorized scatter-add per distinct offset.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.observability.metrics import get_registry
from repro.topology.cartesian import CartesianTopology

__all__ = ["Stencil", "Router"]


@dataclass(frozen=True)
class Stencil:
    """Per-channel unit-flow fractions for one source-relative offset.

    Attributes
    ----------
    offsets:
        (E, ndim) signed coordinate offsets of each channel's *source node*
        relative to the flow source.
    dims:
        (E,) dimension index of each channel.
    dirs:
        (E,) direction of each channel (0 = +, 1 = -).
    fracs:
        (E,) fraction of the flow volume carried (sums to hops-per-path
        averaged over paths, i.e. ``sum(fracs) == mean path length``).
    """

    offsets: np.ndarray
    dims: np.ndarray
    dirs: np.ndarray
    fracs: np.ndarray

    @property
    def num_entries(self) -> int:
        return len(self.fracs)

    @property
    def mean_path_length(self) -> float:
        """Expected hop count of the flow (== total fraction mass)."""
        return float(self.fracs.sum())


class Router(abc.ABC):
    """Routing model bound to one topology.

    Subclasses implement :meth:`_build_stencil`; everything else (caching,
    grouping, scatter-adds, MCL) is shared.
    """

    name: str = "router"

    def __init__(self, topology: CartesianTopology):
        self.topology = topology
        self._stencils: dict[tuple[int, ...], Stencil] = {}
        # Bound once: stencil cache traffic is hot-path telemetry.
        registry = get_registry()
        self._m_stencil_hits = registry.counter("router.stencil_hits")
        self._m_stencil_misses = registry.counter("router.stencil_misses")
        self._m_load_calls = registry.counter("router.link_load_calls")

    # -- stencils -----------------------------------------------------------------
    def stencil(self, delta) -> Stencil:
        """Stencil for a signed per-dimension offset (cached)."""
        key = tuple(int(x) for x in np.asarray(delta).ravel())
        if len(key) != self.topology.ndim:
            raise RoutingError(
                f"delta has {len(key)} entries for a {self.topology.ndim}-D topology"
            )
        st = self._stencils.get(key)
        if st is None:
            self._m_stencil_misses.inc()
            st = self._build_stencil(key)
            self._stencils[key] = st
        else:
            self._m_stencil_hits.inc()
        return st

    @abc.abstractmethod
    def _build_stencil(self, delta: tuple[int, ...]) -> Stencil:
        """Compute the stencil for one offset; called once per distinct offset."""

    def stencil_slots(self, st: Stencil, src_nodes) -> np.ndarray:
        """Channel-slot ids ``st`` touches for each source node, shape (m, E).

        Shared by :meth:`link_loads`, the fluid simulator's usage matrix
        and the attribution engine so the three can never disagree on
        which channels a flow crosses.
        """
        topo = self.topology
        src_nodes = np.asarray(src_nodes, dtype=np.int64)
        c = topo.coords_array[src_nodes][:, None, :] + st.offsets[None, :, :]
        for d in range(topo.ndim):
            if topo.wrap[d]:
                c[..., d] %= topo.shape[d]
        nodes = c @ topo.strides
        return (nodes * topo.ndim + st.dims[None, :]) * 2 + st.dirs[None, :]

    def group_flows_by_offset(self, srcs, dsts):
        """Group flow indices by their routing offset.

        Returns ``(deltas, groups)`` where ``deltas`` is the (m, ndim)
        signed offset array and ``groups`` yields ``(rows, delta_row)``
        index arrays — one per distinct offset, covering all flows.
        Grouping uses a mixed-radix key (offsets are bounded by the
        shape, so shifting into ``[0, 2k)`` per dim is collision-free).
        """
        topo = self.topology
        deltas = topo.delta(srcs, dsts)
        shape_arr = np.asarray(topo.shape, dtype=np.int64)
        keys = np.zeros(len(srcs), dtype=np.int64)
        for d in range(topo.ndim):
            keys = keys * (2 * shape_arr[d] + 1) + (deltas[:, d] + shape_arr[d])
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        group_starts = np.flatnonzero(
            np.r_[True, keys_sorted[1:] != keys_sorted[:-1]]
        )
        group_ends = np.r_[group_starts[1:], len(keys_sorted)]
        groups = [order[gs:ge] for gs, ge in zip(group_starts, group_ends)]
        return deltas, groups

    # -- load computation -----------------------------------------------------------
    def link_loads(self, srcs, dsts, vols, out: np.ndarray | None = None) -> np.ndarray:
        """Dense per-channel-slot load vector for a set of flows.

        Parameters
        ----------
        srcs, dsts:
            Node ids (arrays of equal length). Flows with ``src == dst``
            stay on-node and contribute no network load.
        vols:
            Flow volumes (bytes or relative units).
        out:
            Optional preallocated/accumulating load vector of length
            ``topology.num_channel_slots``; loads are *added* into it.
        """
        topo = self.topology
        self._m_load_calls.inc()
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        if not (srcs.shape == dsts.shape == vols.shape) or srcs.ndim != 1:
            raise RoutingError("srcs, dsts, vols must be equal-length 1-D arrays")
        if out is None:
            out = np.zeros(topo.num_channel_slots)
        elif out.shape != (topo.num_channel_slots,):
            raise RoutingError(
                f"out has shape {out.shape}, expected ({topo.num_channel_slots},)"
            )
        if len(srcs) == 0:
            return out

        offnode = srcs != dsts
        if not offnode.all():
            srcs, dsts, vols = srcs[offnode], dsts[offnode], vols[offnode]
            if len(srcs) == 0:
                return out

        deltas, groups = self.group_flows_by_offset(srcs, dsts)
        for rows in groups:
            st = self.stencil(deltas[rows[0]])
            if st.num_entries == 0:
                continue
            slots = self.stencil_slots(st, srcs[rows])
            contrib = vols[rows][:, None] * st.fracs[None, :]
            np.add.at(out, slots.ravel(), contrib.ravel())
        return out

    # -- metrics ---------------------------------------------------------------------
    def max_channel_load(self, srcs, dsts, vols) -> float:
        """MCL: the load on the most-loaded channel."""
        loads = self.link_loads(srcs, dsts, vols)
        return float(loads.max()) if loads.size else 0.0

    def average_hops(self, srcs, dsts, vols) -> float:
        """Volume-weighted mean hop count under this router."""
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        total_v = vols.sum()
        if total_v == 0:
            return 0.0
        deltas = self.topology.delta(srcs, dsts)
        hops = np.array(
            [self.stencil(d).mean_path_length for d in deltas]
        )
        return float((hops * vols).sum() / total_v)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.topology!r})"
