"""repro — a full reproduction of RAHTM (SC'14).

RAHTM (Routing Algorithm aware Hierarchical Task Mapping) maps MPI
processes onto torus-network supercomputers by minimizing the maximum
channel load under the machine's (adaptive) routing algorithm, combining
tile-based clustering, per-level MILP mapping onto 2-ary n-cubes, and a
bottom-up orientation beam search.

Quickstart::

    from repro import RAHTMMapper, RAHTMConfig, torus
    from repro.workloads import nas_cg
    from repro.routing import MinimalAdaptiveRouter
    from repro.metrics import evaluate_mapping

    topo = torus(4, 4, 4)
    graph = nas_cg(256, "C")
    mapping = RAHTMMapper(topo, RAHTMConfig(seed=0)).map(graph)
    print(evaluate_mapping(MinimalAdaptiveRouter(topo), mapping, graph))

Package map
-----------
- :mod:`repro.topology` — tori/meshes, BG/Q, hierarchy, partitioning.
- :mod:`repro.routing` — DOR and the all-minimal-paths MAR approximation.
- :mod:`repro.commgraph` — communication graphs and I/O.
- :mod:`repro.workloads` — NAS BT/SP/CG, stencils, synthetics, collectives.
- :mod:`repro.profile` — virtual-MPI tracing and IPM-style reports.
- :mod:`repro.mapping` — task-to-node mappings and BG/Q mapfiles.
- :mod:`repro.metrics` — MCL, hop-bytes, dilation, reports.
- :mod:`repro.core` — RAHTM itself (clustering, MILP, merge).
- :mod:`repro.baselines` — dimension orders, Hilbert, Rubik tiling, SA.
- :mod:`repro.simulator` — flow-level execution estimation.
- :mod:`repro.experiments` — figure/table regeneration harness.
"""

from repro.commgraph import CommGraph
from repro.core import RAHTMConfig, RAHTMMapper
from repro.errors import ReproError
from repro.mapping import Mapping
from repro.metrics import evaluate_mapping
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter
from repro.topology import BGQTopology, CartesianTopology, hypercube, mesh, torus

__version__ = "1.0.0"

__all__ = [
    "CommGraph",
    "Mapping",
    "RAHTMConfig",
    "RAHTMMapper",
    "ReproError",
    "evaluate_mapping",
    "DimensionOrderRouter",
    "MinimalAdaptiveRouter",
    "BGQTopology",
    "CartesianTopology",
    "torus",
    "mesh",
    "hypercube",
    "__version__",
]
