"""Synthetic workload communication-pattern generators.

The paper profiles NAS BT, SP and CG with IPM and feeds the resulting
point-to-point communication matrices to the mappers (Table I). Without
the machine and the profiler we generate the *documented* communication
structure of those benchmarks directly:

- **BT / SP** (:func:`nas_bt`, :func:`nas_sp`) use the NPB multipartition
  decomposition: ``P = q^2`` processes own ``q`` diagonal cells each and
  exchange cell faces with six neighbours on the process grid — ``(i±1,
  j)``, ``(i, j±1)`` and the diagonals ``(i−1, j−1)``/``(i+1, j+1)``.
- **CG** (:func:`nas_cg`) uses the NPB row/column decomposition:
  power-of-two distance exchanges within a process row (recursive halving
  sum-reduction) plus a transpose-partner exchange — the "heavy, distant
  communication" the paper calls out as RAHTM's best opportunity.

Generic patterns (halo stencils, sweeps, random, transpose, collectives)
support the examples, tests and ablations.
"""

from repro.workloads.nas import nas_bt, nas_sp, nas_cg, NASProblem
from repro.workloads.stencil import halo2d, halo3d, halo_nd, sweep2d
from repro.workloads.synthetic import (
    random_uniform,
    random_permutation,
    transpose2d,
    bisection_stress,
    ring,
    butterfly,
)
from repro.workloads.collectives import collective_pattern
from repro.workloads.spectral import fft_pencils, wavefront3d, stencil27
from repro.workloads.amr import amr_quadtree

__all__ = [
    "fft_pencils",
    "wavefront3d",
    "stencil27",
    "amr_quadtree",
    "nas_bt",
    "nas_sp",
    "nas_cg",
    "NASProblem",
    "halo2d",
    "halo3d",
    "halo_nd",
    "sweep2d",
    "random_uniform",
    "random_permutation",
    "transpose2d",
    "bisection_stress",
    "ring",
    "butterfly",
    "collective_pattern",
]
