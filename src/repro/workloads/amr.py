"""Irregular (AMR-like) workload generator.

The paper's benchmarks are all grid-structured; adaptive mesh refinement
codes are the canonical *irregular* counterpoint: communication follows a
refinement quadtree whose leaves differ in size, so volumes are skewed
and no logical process grid exists. This generator exercises the parts of
the library that structured workloads never touch — the greedy
fixed-size clustering fallback and hierarchy construction on grid-less
graphs.

Construction: recursively refine a 2-D domain ``levels`` deep, refining
each quadrant independently with probability ``refine_prob``. Leaves are
assigned to ranks round-robin in space-filling (Morton) order, each leaf
exchanging halo volume proportional to the length of the boundary it
shares with spatially adjacent leaves (finer leaves -> shorter borders).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["amr_quadtree"]


@dataclass(frozen=True)
class _Leaf:
    x: float
    y: float
    size: float


def _refine(x, y, size, depth, max_depth, refine_prob, rng, out):
    if depth < max_depth and rng.random() < refine_prob:
        half = size / 2
        # Morton order: children visited in Z order keeps spatial
        # locality in the leaf sequence (like real AMR rank orderings).
        for dx, dy in ((0, 0), (0, half), (half, 0), (half, half)):
            _refine(x + dx, y + dy, half, depth + 1, max_depth,
                    refine_prob, rng, out)
    else:
        out.append(_Leaf(x, y, size))


def _shared_border(a: _Leaf, b: _Leaf) -> float:
    """Length of the shared edge between two axis-aligned squares."""
    ax1, ay1, ax2, ay2 = a.x, a.y, a.x + a.size, a.y + a.size
    bx1, by1, bx2, by2 = b.x, b.y, b.x + b.size, b.y + b.size
    tol = 1e-9
    if abs(ax2 - bx1) < tol or abs(bx2 - ax1) < tol:  # vertical contact
        return max(0.0, min(ay2, by2) - max(ay1, by1))
    if abs(ay2 - by1) < tol or abs(by2 - ay1) < tol:  # horizontal contact
        return max(0.0, min(ax2, bx2) - max(ax1, bx1))
    return 0.0


def amr_quadtree(
    num_tasks: int,
    max_depth: int = 4,
    refine_prob: float = 0.7,
    bytes_per_unit_border: float = 1000.0,
    seed=None,
) -> CommGraph:
    """Generate an AMR-style irregular communication graph.

    Parameters
    ----------
    num_tasks:
        MPI ranks; leaves are dealt to ranks in Morton order (so ranks own
        spatially contiguous patches, like real AMR partitioners).
    max_depth:
        Maximum refinement depth (4 -> up to 256 leaves).
    refine_prob:
        Probability each quadrant refines further (skews leaf sizes).
    bytes_per_unit_border:
        Halo volume per unit of shared boundary length.
    seed:
        Refinement randomness.
    """
    check_positive_int(num_tasks, "num_tasks")
    check_positive_int(max_depth, "max_depth")
    check_probability(refine_prob, "refine_prob")
    rng = as_rng(seed)
    leaves: list[_Leaf] = []
    # Force at least one refinement so there is communication.
    half = 0.5
    for dx, dy in ((0, 0), (0, half), (half, 0), (half, half)):
        _refine(dx, dy, half, 1, max_depth, refine_prob, rng, leaves)
    if len(leaves) < num_tasks:
        raise WorkloadError(
            f"refinement produced {len(leaves)} leaves for {num_tasks} "
            "ranks; raise max_depth or refine_prob"
        )
    owner = np.arange(len(leaves)) * num_tasks // len(leaves)

    edges: list[tuple[int, int, float]] = []
    for i, a in enumerate(leaves):
        for j in range(i + 1, len(leaves)):
            b = leaves[j]
            border = _shared_border(a, b)
            if border <= 0:
                continue
            ra, rb = int(owner[i]), int(owner[j])
            if ra == rb:
                continue
            vol = border * bytes_per_unit_border
            edges.append((ra, rb, vol))
            edges.append((rb, ra, vol))
    if not edges:
        raise WorkloadError(
            "no inter-rank communication generated; decrease num_tasks"
        )
    return CommGraph.from_edges(num_tasks, edges)
