"""Unstructured / adversarial synthetic communication patterns.

Used by tests (random graphs stress invariants), ablations (bisection
stress separates routing-aware from routing-unaware mappers), and examples.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "random_uniform",
    "random_permutation",
    "transpose2d",
    "bisection_stress",
    "ring",
    "butterfly",
]


def random_uniform(
    num_tasks: int,
    num_edges: int,
    max_volume: float = 100.0,
    seed=None,
) -> CommGraph:
    """Random directed edges with volumes uniform in (0, max_volume]."""
    check_positive_int(num_tasks, "num_tasks")
    check_positive_int(num_edges, "num_edges")
    rng = as_rng(seed)
    srcs = rng.integers(0, num_tasks, size=num_edges)
    dsts = rng.integers(0, num_tasks, size=num_edges)
    keep = srcs != dsts
    vols = rng.uniform(0, max_volume, size=num_edges)
    vols = np.maximum(vols, 1e-9)
    return CommGraph(num_tasks, srcs[keep], dsts[keep], vols[keep])


def random_permutation(num_tasks: int, volume: float = 1.0, seed=None) -> CommGraph:
    """Every task sends to one random distinct partner (a derangement-ish
    permutation; fixed points are rerolled pairwise)."""
    check_positive_int(num_tasks, "num_tasks")
    if num_tasks < 2:
        raise WorkloadError("permutation traffic needs >= 2 tasks")
    rng = as_rng(seed)
    perm = rng.permutation(num_tasks)
    fixed = np.flatnonzero(perm == np.arange(num_tasks))
    # Swap each fixed point with its cyclic successor to kill self-sends.
    for f in fixed:
        g = (f + 1) % num_tasks
        perm[f], perm[g] = perm[g], perm[f]
    srcs = np.arange(num_tasks)
    keep = perm != srcs
    return CommGraph(num_tasks, srcs[keep], perm[keep],
                     np.full(int(keep.sum()), float(volume)))


def transpose2d(side: int, volume: float = 1.0) -> CommGraph:
    """Matrix-transpose traffic: (i, j) <-> (j, i) on a side x side grid."""
    check_positive_int(side, "side")
    if side < 2:
        raise WorkloadError("transpose needs side >= 2")
    edges = []
    for i in range(side):
        for j in range(side):
            if i != j:
                edges.append((i * side + j, j * side + i, float(volume)))
    return CommGraph.from_edges(side * side, edges, grid_shape=(side, side))


def bisection_stress(num_tasks: int, volume: float = 1.0) -> CommGraph:
    """Task t in the lower half exchanges with t + P/2: maximal bisection
    pressure; the canonical adversary for locality-only mappers."""
    check_positive_int(num_tasks, "num_tasks")
    if num_tasks % 2:
        raise WorkloadError("bisection stress needs an even task count")
    half = num_tasks // 2
    edges = []
    for t in range(half):
        edges.append((t, t + half, float(volume)))
        edges.append((t + half, t, float(volume)))
    return CommGraph.from_edges(num_tasks, edges)


def ring(num_tasks: int, volume: float = 1.0, bidirectional: bool = True) -> CommGraph:
    """Ring shift: t -> (t+1) mod P (and reverse when bidirectional)."""
    check_positive_int(num_tasks, "num_tasks")
    if num_tasks < 2:
        raise WorkloadError("ring needs >= 2 tasks")
    edges = [(t, (t + 1) % num_tasks, float(volume)) for t in range(num_tasks)]
    if bidirectional:
        edges += [(t, (t - 1) % num_tasks, float(volume)) for t in range(num_tasks)]
    return CommGraph.from_edges(num_tasks, edges)


def butterfly(num_tasks: int, volume: float = 1.0) -> CommGraph:
    """All XOR-power-of-two exchanges (FFT/butterfly): t <-> t ^ 2^j."""
    check_positive_int(num_tasks, "num_tasks")
    m = num_tasks.bit_length() - 1
    if 2**m != num_tasks or num_tasks < 2:
        raise WorkloadError("butterfly needs a power-of-two task count >= 2")
    edges = []
    for t in range(num_tasks):
        for j in range(m):
            edges.append((t, t ^ (1 << j), float(volume)))
    return CommGraph.from_edges(num_tasks, edges)
