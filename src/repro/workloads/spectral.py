"""Spectral/transform and wavefront workload generators.

These go beyond the paper's three benchmarks to stress mappers with
qualitatively different traffic:

- :func:`fft_pencils` — pencil-decomposed 3-D FFT: all-to-all exchanges
  within process-grid rows, then within columns (two transposes per
  iteration). Row/column all-to-alls are the classic bandwidth killers on
  tori.
- :func:`wavefront3d` — Sn-transport-style sweep dependencies over a 2-D
  process grid (KBA decomposition): downstream neighbours only, all four
  sweep corners aggregated.
- :func:`stencil27` — 3-D 27-point stencil: face, edge and corner
  exchanges with volume ratios face:edge:corner = plane:line:point.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError
from repro.utils.validation import check_positive_int

__all__ = ["fft_pencils", "wavefront3d", "stencil27"]


def fft_pencils(rows: int, cols: int, volume: float = 1.0) -> CommGraph:
    """Pencil-decomposed FFT transposes on a rows x cols process grid.

    Each iteration performs an all-to-all within every grid row (X->Y
    transpose) and one within every grid column (Y->Z transpose); each
    pairwise message carries ``volume`` bytes.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    if rows * cols < 2:
        raise WorkloadError("fft_pencils needs >= 2 processes")
    edges = []
    for i in range(rows):
        for j in range(cols):
            me = i * cols + j
            for j2 in range(cols):  # row all-to-all
                if j2 != j:
                    edges.append((me, i * cols + j2, float(volume)))
            for i2 in range(rows):  # column all-to-all
                if i2 != i:
                    edges.append((me, i2 * cols + j, float(volume)))
    return CommGraph.from_edges(rows * cols, edges, grid_shape=(rows, cols))


def wavefront3d(rows: int, cols: int, volume: float = 1.0) -> CommGraph:
    """KBA sweep traffic on a rows x cols grid (all four sweep corners).

    Each octant pair sweeps diagonally across the grid; aggregating the
    four corner sweeps yields symmetric nearest-neighbour traffic *without*
    wraparound — boundary processes genuinely communicate less, which
    distinguishes sweep codes from periodic stencils.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    if rows * cols < 2:
        raise WorkloadError("wavefront needs >= 2 processes")
    edges = []
    for i in range(rows):
        for j in range(cols):
            me = i * cols + j
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < rows and 0 <= nj < cols:
                    edges.append((me, ni * cols + nj, float(volume)))
    return CommGraph.from_edges(rows * cols, edges, grid_shape=(rows, cols))


def stencil27(nx: int, ny: int, nz: int, cell_side: int = 32,
              bytes_per_point: float = 8.0, wrap: bool = True) -> CommGraph:
    """3-D 27-point stencil with physically-scaled exchange volumes.

    Face exchanges move ``cell_side^2`` points, edge exchanges
    ``cell_side``, corner exchanges a single point — the realistic volume
    hierarchy that makes diagonal neighbours nearly free and face
    placement dominant.
    """
    for name, v in (("nx", nx), ("ny", ny), ("nz", nz)):
        check_positive_int(v, name)
    num = nx * ny * nz
    if num < 2:
        raise WorkloadError("stencil27 needs >= 2 processes")
    shape = np.array([nx, ny, nz])
    strides = np.array([ny * nz, nz, 1], dtype=np.int64)
    edges = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                me = i * ny * nz + j * nz + k
                for di in (-1, 0, 1):
                    for dj in (-1, 0, 1):
                        for dk in (-1, 0, 1):
                            if di == dj == dk == 0:
                                continue
                            c = np.array([i + di, j + dj, k + dk])
                            if wrap:
                                c %= shape
                            elif np.any((c < 0) | (c >= shape)):
                                continue
                            other = int(c @ strides)
                            if other == me:
                                continue
                            order = abs(di) + abs(dj) + abs(dk)
                            vol = bytes_per_point * cell_side ** (3 - order)
                            edges.append((me, other, float(vol)))
    return CommGraph.from_edges(num, edges, grid_shape=(nx, ny, nz))
