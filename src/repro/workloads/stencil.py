"""Structured-grid stencil (halo-exchange) communication patterns."""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError
from repro.utils.validation import check_shape_tuple

__all__ = ["halo_nd", "halo2d", "halo3d", "sweep2d"]


def halo_nd(
    grid_shape,
    volume: float = 1.0,
    wrap: bool = True,
    diagonal_volume: float = 0.0,
) -> CommGraph:
    """Nearest-neighbour halo exchange on an n-D process grid.

    Parameters
    ----------
    grid_shape:
        Logical process-grid shape; tasks are C-ordered over it.
    volume:
        Bytes per face exchange (per direction).
    wrap:
        Periodic boundaries (processes on opposite faces exchange).
    diagonal_volume:
        Optional corner-exchange volume with the 2^n - 1 ... only the 2n
        face diagonals in each 2-D plane are generated (the common stencil
        corner case), each with this volume.
    """
    grid_shape = check_shape_tuple(grid_shape, "grid_shape")
    num_tasks = int(np.prod(grid_shape))
    ndim = len(grid_shape)
    strides = np.ones(ndim, dtype=np.int64)
    for d in range(ndim - 2, -1, -1):
        strides[d] = strides[d + 1] * grid_shape[d + 1]
    idx = np.arange(num_tasks, dtype=np.int64)
    coords = (idx[:, None] // strides[None, :]) % np.asarray(grid_shape)

    def nbr(shift: np.ndarray) -> np.ndarray | None:
        c = coords + shift[None, :]
        if wrap:
            c = c % np.asarray(grid_shape)
            return c @ strides
        ok = ((c >= 0) & (c < np.asarray(grid_shape))).all(axis=1)
        out = np.where(ok, np.clip(c, 0, None) @ strides, -1)
        return out

    srcs, dsts, vols = [], [], []
    for d in range(ndim):
        if grid_shape[d] < 2:
            continue
        for sign in (+1, -1):
            shift = np.zeros(ndim, dtype=np.int64)
            shift[d] = sign
            n = nbr(shift)
            ok = (n >= 0) & (n != idx)
            srcs.append(idx[ok])
            dsts.append(n[ok])
            vols.append(np.full(int(ok.sum()), float(volume)))
    if diagonal_volume > 0:
        for d1 in range(ndim):
            for d2 in range(d1 + 1, ndim):
                if grid_shape[d1] < 2 or grid_shape[d2] < 2:
                    continue
                for s1 in (+1, -1):
                    for s2 in (+1, -1):
                        shift = np.zeros(ndim, dtype=np.int64)
                        shift[d1], shift[d2] = s1, s2
                        n = nbr(shift)
                        ok = (n >= 0) & (n != idx)
                        srcs.append(idx[ok])
                        dsts.append(n[ok])
                        vols.append(
                            np.full(int(ok.sum()), float(diagonal_volume))
                        )
    if not srcs:
        raise WorkloadError(f"grid {grid_shape} yields no halo exchanges")
    return CommGraph(
        num_tasks,
        np.concatenate(srcs),
        np.concatenate(dsts),
        np.concatenate(vols),
        grid_shape=grid_shape,
    )


def halo2d(nx: int, ny: int, volume: float = 1.0, wrap: bool = True,
           diagonal_volume: float = 0.0) -> CommGraph:
    """2-D halo exchange on an ``nx x ny`` grid."""
    return halo_nd((nx, ny), volume=volume, wrap=wrap,
                   diagonal_volume=diagonal_volume)


def halo3d(nx: int, ny: int, nz: int, volume: float = 1.0,
           wrap: bool = True) -> CommGraph:
    """3-D halo exchange on an ``nx x ny x nz`` grid."""
    return halo_nd((nx, ny, nz), volume=volume, wrap=wrap)


def sweep2d(nx: int, ny: int, volume: float = 1.0) -> CommGraph:
    """Wavefront sweep (Sn transport style): downstream-only +x/+y flow."""
    grid_shape = check_shape_tuple((nx, ny), "grid shape")
    num_tasks = nx * ny
    edges = []
    for i in range(nx):
        for j in range(ny):
            me = i * ny + j
            if i + 1 < nx:
                edges.append((me, (i + 1) * ny + j, float(volume)))
            if j + 1 < ny:
                edges.append((me, i * ny + j + 1, float(volume)))
    if not edges:
        raise WorkloadError("sweep needs a grid with at least 2 processes")
    return CommGraph.from_edges(num_tasks, edges, grid_shape=grid_shape)
