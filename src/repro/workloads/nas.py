"""NAS Parallel Benchmark communication-pattern generators (BT, SP, CG).

These reproduce the *structure* and relative *volumes* of the three
benchmarks' point-to-point communication as documented in the NPB 2/3
sources and the mapping literature, parameterized by problem class.

Volumes are in bytes per outer iteration; mappers only consume relative
magnitudes, and the simulator multiplies by iteration counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError

__all__ = ["NASProblem", "nas_bt", "nas_sp", "nas_cg", "PROBLEM_CLASSES"]


@dataclass(frozen=True)
class NASProblem:
    """Problem-class constants (grid points per side / matrix order)."""

    name: str
    bt_sp_grid: int  # grid points per side for BT/SP
    cg_na: int       # matrix order for CG
    iterations: int  # outer iterations (BT/SP time steps, CG outer its)


PROBLEM_CLASSES: dict[str, NASProblem] = {
    "S": NASProblem("S", 12, 1400, 100),
    "W": NASProblem("W", 24, 7000, 100),
    "A": NASProblem("A", 64, 14000, 100),
    "B": NASProblem("B", 102, 75000, 100),
    "C": NASProblem("C", 162, 150000, 100),
    "D": NASProblem("D", 408, 1500000, 100),
}


def _resolve_class(problem_class) -> NASProblem:
    if isinstance(problem_class, NASProblem):
        return problem_class
    try:
        return PROBLEM_CLASSES[str(problem_class).upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown NAS problem class {problem_class!r}; "
            f"choose from {sorted(PROBLEM_CLASSES)}"
        ) from None


def multipartition_phase_pairs(q: int) -> list[list[tuple[int, int]]]:
    """Per-sweep-direction exchange pairs on a q x q process grid.

    Process ``(i, j)`` owns cells ``c = 0..q-1`` at 3-D coordinates
    ``((i+c) % q, (j+c) % q, c)``. A +x face leaves for the owner of
    ``(x+1, y, z)`` which is process ``(i+1, j)``; the z sweeps walk the
    diagonal: +z goes to ``(i-1, j-1)`` and -z to ``(i+1, j+1)``.

    Returns six lists (one per sweep direction: +x, -x, +y, -y, +z, -z) of
    ``(src, dst)`` pairs.
    """
    directions = [
        lambda i, j: ((i + 1) % q, j),            # +x sweep
        lambda i, j: ((i - 1) % q, j),            # -x sweep
        lambda i, j: (i, (j + 1) % q),            # +y sweep
        lambda i, j: (i, (j - 1) % q),            # -y sweep
        lambda i, j: ((i - 1) % q, (j - 1) % q),  # +z sweep (diagonal)
        lambda i, j: ((i + 1) % q, (j + 1) % q),  # -z sweep
    ]
    phases = []
    for nbr in directions:
        pairs = []
        for i in range(q):
            for j in range(q):
                me = i * q + j
                ni, nj = nbr(i, j)
                other = ni * q + nj
                if other != me:
                    pairs.append((me, other))
        phases.append(pairs)
    return phases


def multipartition_face_bytes(
    num_tasks: int, problem: NASProblem, words_per_point: int, sweeps: int
) -> tuple[int, float]:
    """(process-grid side q, bytes sent per process per sweep direction)."""
    q = math.isqrt(num_tasks)
    if q * q != num_tasks or q < 2:
        raise WorkloadError(
            f"BT/SP multipartition needs a square process count >= 4, "
            f"got {num_tasks}"
        )
    n = problem.bt_sp_grid
    cell_side = max(n // q, 1)
    # One face per cell per sweep direction; q cells per process.
    return q, float(q * (cell_side**2) * words_per_point * 8 * sweeps)


def _multipartition_graph(
    num_tasks: int, problem: NASProblem, words_per_point: int, sweeps: int
) -> CommGraph:
    q, face_bytes = multipartition_face_bytes(
        num_tasks, problem, words_per_point, sweeps
    )
    edges = [
        (s, d, face_bytes)
        for pairs in multipartition_phase_pairs(q)
        for s, d in pairs
    ]
    return CommGraph.from_edges(num_tasks, edges, grid_shape=(q, q))


def nas_bt(num_tasks: int, problem_class="C") -> CommGraph:
    """NAS BT (block tri-diagonal solver) per-iteration communication.

    BT exchanges 5x5 block boundary data (25 words per grid point) once
    per direction per time step.
    """
    problem = _resolve_class(problem_class)
    return _multipartition_graph(num_tasks, problem, words_per_point=25, sweeps=1)


def nas_sp(num_tasks: int, problem_class="C") -> CommGraph:
    """NAS SP (scalar penta-diagonal solver) per-iteration communication.

    SP exchanges scalar boundary data (5 words per grid point) but sweeps
    each direction twice per time step (forward elimination +
    back-substitution with separate face exchanges).
    """
    problem = _resolve_class(problem_class)
    return _multipartition_graph(num_tasks, problem, words_per_point=5, sweeps=2)


def nas_cg(num_tasks: int, problem_class="C") -> CommGraph:
    """NAS CG (conjugate gradient) per-iteration communication.

    NPB CG arranges ``P = 2^m`` processes in ``nprows x npcols`` (npcols =
    nprows for even m, 2*nprows for odd m). Each of the 25 CG sub-iterations
    performs a recursive-halving sum reduction across the process row
    (partners at column XOR distances 1, 2, 4, ...) and an exchange with the
    transpose partner — long-distance, bandwidth-heavy traffic.
    """
    phases, grid = cg_phase_edges(num_tasks, problem_class)
    edges = [e for phase in phases for e in phase]
    return CommGraph.from_edges(num_tasks, edges, grid_shape=grid)


def cg_phase_edges(
    num_tasks: int, problem_class="C"
) -> tuple[list[list[tuple[int, int, float]]], tuple[int, int]]:
    """CG communication split into serialized phases.

    Phase 0 is the transpose exchange; phases 1..log2(npcols) are the
    recursive-halving reduction steps at column distances 1, 2, 4, ....
    Returns (phases, process grid shape).
    """
    problem = _resolve_class(problem_class)
    m = int(round(math.log2(num_tasks)))
    if 2**m != num_tasks or num_tasks < 4:
        raise WorkloadError(
            f"CG needs a power-of-two process count >= 4, got {num_tasks}"
        )
    nprows = 2 ** (m // 2)
    npcols = num_tasks // nprows  # nprows or 2*nprows
    l2npcols = int(round(math.log2(npcols)))
    na = problem.cg_na
    sub_iterations = 25

    # Volume per exchange: each process owns na/nprows rows and na/npcols
    # columns of the matrix; the reduction and transpose both move vectors
    # of the local column count (doubles).
    vec_bytes = float((na // npcols + 1) * 8 * sub_iterations)

    transpose: list[tuple[int, int, float]] = []
    for me in range(num_tasks):
        # Transpose-partner exchange (NPB cg.f setup_proc_info):
        if npcols == nprows:
            exch = (me % nprows) * nprows + me // nprows
        else:
            half = me // 2
            exch = 2 * ((half % nprows) * nprows + half // nprows) + me % 2
        if exch != me:
            transpose.append((me, exch, vec_bytes))
    phases = [transpose]
    for i in range(l2npcols):
        step: list[tuple[int, int, float]] = []
        for me in range(num_tasks):
            proc_row, proc_col = divmod(me, npcols)
            partner = proc_row * npcols + (proc_col ^ (2**i))
            step.append((me, partner, vec_bytes))
        phases.append(step)
    return phases, (nprows, npcols)
