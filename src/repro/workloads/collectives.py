"""Collective-communication pattern expansion (the paper's Section VI
extension).

The paper's profiling could not see inside collective calls; Section VI
argues the fix is to expand each collective into the point-to-point
pattern of its *implementation* (e.g. recursive-doubling vs dissemination
all-gather produce very different traffic). This module implements that
expansion for the classic algorithms, so RAHTM can map applications with
collectives.
"""

from __future__ import annotations

import math

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError

__all__ = ["collective_pattern", "SUPPORTED_COLLECTIVES"]

SUPPORTED_COLLECTIVES = {
    "allgather-recursive-doubling",
    "allgather-dissemination",
    "allgather-ring",
    "allreduce-recursive-doubling",
    "bcast-binomial",
    "reduce-binomial",
    "alltoall-pairwise",
}


def _require_pow2(p: int, what: str) -> int:
    m = p.bit_length() - 1
    if 2**m != p:
        raise WorkloadError(f"{what} requires a power-of-two participant count, got {p}")
    return m


def collective_pattern(
    name: str,
    num_tasks: int,
    volume: float = 1.0,
    root: int = 0,
) -> CommGraph:
    """Expand one collective into its point-to-point communication graph.

    Parameters
    ----------
    name:
        One of :data:`SUPPORTED_COLLECTIVES`.
    num_tasks:
        Participant count (power of two where the algorithm demands it).
    volume:
        Base message volume; per-step volumes follow the algorithm (e.g.
        recursive-doubling all-gather doubles the payload every round).
    root:
        Root rank for rooted collectives (bcast/reduce).
    """
    if num_tasks < 2:
        raise WorkloadError("collectives need >= 2 participants")
    edges: list[tuple[int, int, float]] = []

    if name == "allgather-recursive-doubling":
        m = _require_pow2(num_tasks, name)
        for step in range(m):
            dist = 1 << step
            vol = volume * dist  # payload doubles each round
            for t in range(num_tasks):
                edges.append((t, t ^ dist, vol))
    elif name == "allreduce-recursive-doubling":
        m = _require_pow2(num_tasks, name)
        for step in range(m):
            dist = 1 << step
            for t in range(num_tasks):
                edges.append((t, t ^ dist, volume))
    elif name == "allgather-dissemination":
        steps = math.ceil(math.log2(num_tasks))
        for step in range(steps):
            dist = 1 << step
            vol = volume * min(dist, num_tasks - dist)
            for t in range(num_tasks):
                edges.append((t, (t + dist) % num_tasks, vol))
    elif name == "allgather-ring":
        for t in range(num_tasks):
            edges.append((t, (t + 1) % num_tasks, volume * (num_tasks - 1)))
    elif name in ("bcast-binomial", "reduce-binomial"):
        m = math.ceil(math.log2(num_tasks))
        for step in range(m):
            dist = 1 << (m - 1 - step)
            for rel in range(num_tasks):
                if rel % (2 * dist) == 0 and rel + dist < num_tasks:
                    a = (root + rel) % num_tasks
                    b = (root + rel + dist) % num_tasks
                    if name == "bcast-binomial":
                        edges.append((a, b, volume))
                    else:
                        edges.append((b, a, volume))
    elif name == "alltoall-pairwise":
        for step in range(1, num_tasks):
            for t in range(num_tasks):
                edges.append((t, t ^ step if _is_pow2(num_tasks) else
                              (t + step) % num_tasks, volume))
    else:
        raise WorkloadError(
            f"unknown collective {name!r}; supported: "
            f"{sorted(SUPPORTED_COLLECTIVES)}"
        )
    return CommGraph.from_edges(num_tasks, edges)


def _is_pow2(p: int) -> bool:
    return p >= 1 and (p & (p - 1)) == 0
