"""Workload-spec grammar shared by the CLI and the service layer.

Specs: ``bt:TASKS[:CLASS]``, ``sp:...``, ``cg:...``,
``halo2d:NXxNY[:VOL]``, ``halo3d:NXxNYxNZ[:VOL]``, ``random:TASKS:EDGES``,
``butterfly:TASKS``, ``transpose:SIDE``, ``ring:TASKS``,
``bisection:TASKS``, ``fft:RxC[:VOL]``, ``wavefront:RxC``,
``stencil27:NXxNYxNZ``, ``collective:NAME:TASKS``, ``amr:TASKS``, or a
path to a ``.npz``/``.json`` graph file.

This used to live in :mod:`repro.cli`; it moved here so
:mod:`repro.service` jobs can rebuild workloads inside worker processes
without depending on the CLI layer.
"""

from __future__ import annotations

from pathlib import Path

from repro.commgraph import CommGraph, load_commgraph
from repro.errors import ConfigError

__all__ = ["parse_workload", "parse_application", "is_workload_file"]


def is_workload_file(spec: str) -> bool:
    """True when ``spec`` names an existing on-disk graph file."""
    path = Path(spec)
    return path.suffix in (".npz", ".json") and path.exists()


def parse_workload(spec: str, seed: int = 0) -> CommGraph:
    """Parse a workload spec or load a graph file."""
    if is_workload_file(spec):
        return load_commgraph(Path(spec))
    parts = spec.split(":")
    kind = parts[0].lower()
    from repro import workloads as wl

    try:
        if kind in ("bt", "sp", "cg"):
            tasks = int(parts[1])
            cls = parts[2].upper() if len(parts) > 2 else "C"
            return {"bt": wl.nas_bt, "sp": wl.nas_sp, "cg": wl.nas_cg}[kind](
                tasks, cls
            )
        if kind in ("halo2d", "halo3d"):
            dims = tuple(int(x) for x in parts[1].lower().split("x"))
            vol = float(parts[2]) if len(parts) > 2 else 1.0
            return wl.halo_nd(dims, volume=vol)
        if kind == "random":
            return wl.random_uniform(int(parts[1]), int(parts[2]), seed=seed)
        if kind == "butterfly":
            return wl.butterfly(int(parts[1]))
        if kind == "transpose":
            return wl.transpose2d(int(parts[1]))
        if kind == "ring":
            return wl.ring(int(parts[1]))
        if kind == "bisection":
            return wl.bisection_stress(int(parts[1]))
        if kind == "fft":
            rows, cols = (int(x) for x in parts[1].lower().split("x"))
            return wl.fft_pencils(rows, cols,
                                  float(parts[2]) if len(parts) > 2 else 1.0)
        if kind == "wavefront":
            rows, cols = (int(x) for x in parts[1].lower().split("x"))
            return wl.wavefront3d(rows, cols)
        if kind == "stencil27":
            nx, ny, nz = (int(x) for x in parts[1].lower().split("x"))
            return wl.stencil27(nx, ny, nz)
        if kind == "collective":
            return wl.collective_pattern(parts[1], int(parts[2]))
        if kind == "amr":
            return wl.amr_quadtree(int(parts[1]), seed=seed)
    except (IndexError, ValueError) as exc:
        raise ConfigError(f"bad workload spec {spec!r}: {exc}") from exc
    raise ConfigError(f"unknown workload kind {kind!r} in {spec!r}")


def parse_application(spec: str, seed: int = 0):
    """Build an :class:`~repro.simulator.app.ApplicationModel` for a spec.

    ``bt``/``sp``/``cg`` specs get the benchmark's full per-iteration
    phase structure (what the simulator needs); every other spec is
    wrapped as a single-phase, single-iteration application whose
    aggregate graph equals :func:`parse_workload`'s output.
    """
    from repro.simulator.app import ApplicationModel
    from repro.simulator.apps import (
        bt_application,
        cg_application,
        sp_application,
    )

    parts = spec.split(":")
    kind = parts[0].lower()
    if kind in ("bt", "sp", "cg") and not is_workload_file(spec):
        try:
            tasks = int(parts[1])
        except (IndexError, ValueError) as exc:
            raise ConfigError(f"bad workload spec {spec!r}: {exc}") from exc
        cls = parts[2].upper() if len(parts) > 2 else "C"
        builder = {"bt": bt_application, "sp": sp_application,
                   "cg": cg_application}[kind]
        return builder(tasks, cls)
    graph = parse_workload(spec, seed=seed)
    return ApplicationModel(
        name=kind, phases=(graph,), iterations=1,
        compute_seconds_per_iter=0.0,
    )
