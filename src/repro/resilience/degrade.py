"""Structured degradation events.

Every time a phase steps down its fallback ladder (MILP → greedy →
static in phase 2; full merge → first-fit orientation in phase 3) it
records one :class:`DegradationEvent`. The log ends up in
``mapper.stats["degradation"]``, in the job payload, and in CLI output,
so an operator can see exactly which quality was traded for which
deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability import trace
from repro.observability.metrics import get_registry

__all__ = ["DegradationEvent", "DegradationLog"]


@dataclass(frozen=True)
class DegradationEvent:
    """One ladder step: which phase degraded, how, and why.

    ``action`` is a ``from->to`` label (``"milp->greedy"``,
    ``"merge->first-fit"``); ``reason`` is machine-matchable
    (``"budget-exhausted"``, ``"solver-budget-exhausted"``,
    ``"solver-error"``).
    """

    phase: str
    action: str
    reason: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "action": self.action,
            "reason": self.reason,
            "detail": dict(self.detail),
        }

    def describe(self) -> str:
        extra = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
            if self.detail else ""
        )
        return f"{self.phase}: {self.action} ({self.reason}){extra}"


class DegradationLog:
    """An append-only list of degradation events for one mapping run."""

    def __init__(self) -> None:
        self.events: list[DegradationEvent] = []

    def record(self, phase: str, action: str, reason: str, **detail) -> None:
        self.events.append(DegradationEvent(phase, action, reason, detail))
        # Degradations double as observability signals: an instant event
        # in any active trace, and a process-wide counter.
        trace.event("degradation", phase=phase, action=action, reason=reason)
        get_registry().counter("resilience.degradations").inc()

    def as_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def summary(self) -> str:
        """Compact ``phase:action(reason) xN`` rollup for log lines."""
        counts: dict[tuple[str, str, str], int] = {}
        for e in self.events:
            key = (e.phase, e.action, e.reason)
            counts[key] = counts.get(key, 0) + 1
        return ", ".join(
            f"{p}:{a}({r})" + (f" x{n}" if n > 1 else "")
            for (p, a, r), n in counts.items()
        )
