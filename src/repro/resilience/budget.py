"""Wall-clock and solver-call budgets for the mapping pipeline.

A :class:`Budget` is created once per mapping job (CLI ``--deadline``,
:class:`~repro.service.jobs.JobRuntime`) and threaded through
``RAHTMMapper.map()`` into phase 2 (MILP subproblems) and phase 3 (merge
levels). Two resources are tracked:

- **wall clock** — seconds remaining until the global deadline; phase 2
  divides what remains across its outstanding subproblems so every MILP
  gets a shrinking ``time_limit`` and the sum stays under the deadline;
- **solver calls** — an optional cap on the number of MILP invocations,
  so a fleet operator can bound worst-case solver pressure independently
  of wall time.

Exhaustion policy is carried by the budget itself: ``"degrade"`` (the
default) lets each phase fall down its degradation ladder and always
produce a valid mapping; ``"fail"`` raises
:class:`~repro.errors.DeadlineExceededError` at the next budget check.
"""

from __future__ import annotations

import time

from repro.errors import ConfigError, DeadlineExceededError

__all__ = ["Budget"]

#: Smallest per-subproblem solver time limit worth issuing (seconds);
#: below this the MILP cannot find an incumbent and the greedy ladder
#: rung is both faster and better.
MIN_SOLVER_SLICE = 0.05


class Budget:
    """A depleting wall-clock + solver-call budget.

    Parameters
    ----------
    wall_seconds:
        Global deadline in seconds from construction (None = unlimited).
    solver_calls:
        Cap on MILP solver invocations (None = unlimited).
    on_exhausted:
        ``"degrade"`` — phases fall back gracefully; ``"fail"`` —
        :meth:`enforce` raises :class:`DeadlineExceededError`.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        wall_seconds: float | None = None,
        solver_calls: int | None = None,
        on_exhausted: str = "degrade",
        clock=time.monotonic,
    ):
        if wall_seconds is not None and wall_seconds <= 0:
            raise ConfigError("wall_seconds must be > 0 (or None)")
        if solver_calls is not None and solver_calls < 0:
            raise ConfigError("solver_calls must be >= 0 (or None)")
        if on_exhausted not in ("degrade", "fail"):
            raise ConfigError(
                f"on_exhausted must be 'degrade' or 'fail', got {on_exhausted!r}"
            )
        self.wall_seconds = wall_seconds
        self.solver_calls = solver_calls
        self.on_exhausted = on_exhausted
        self._clock = clock
        self._start = clock()
        self.solver_calls_used = 0

    # -- wall clock ---------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left; ``inf`` when no wall deadline is set."""
        if self.wall_seconds is None:
            return float("inf")
        return self.wall_seconds - self.elapsed()

    def exhausted(self) -> bool:
        return self.remaining() <= 0.0

    def enforce(self, phase: str) -> bool:
        """True iff the budget is exhausted and the caller must degrade.

        Under the ``fail`` policy an exhausted budget raises instead, so a
        True return always means "degrade here".
        """
        if not self.exhausted():
            return False
        if self.on_exhausted == "fail":
            raise DeadlineExceededError(
                f"deadline of {self.wall_seconds:.6g}s exceeded in {phase} "
                f"(elapsed {self.elapsed():.3f}s)"
            )
        return True

    # -- solver calls -------------------------------------------------------------
    def take_solver_call(self) -> bool:
        """Consume one MILP invocation; False when the call budget is dry."""
        if (self.solver_calls is not None
                and self.solver_calls_used >= self.solver_calls):
            return False
        self.solver_calls_used += 1
        return True

    def solver_slice(self, default: float | None, parts: int = 1) -> float | None:
        """Per-subproblem solver ``time_limit``: the configured default
        capped by an even share of the remaining wall clock over ``parts``
        outstanding subproblems.

        Returns None (no limit) only when both the default and the wall
        deadline are unlimited; returns at most the remaining wall time so
        a single solve can never blow the global deadline.
        """
        rem = self.remaining()
        if rem == float("inf"):
            return default
        share = max(rem / max(parts, 1), MIN_SOLVER_SLICE)
        share = min(share, max(rem, MIN_SOLVER_SLICE))
        if default is None:
            return share
        return min(default, share)

    # -- reporting ----------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe summary for ``mapper.stats['budget']`` / telemetry."""
        return {
            "wall_seconds": self.wall_seconds,
            "elapsed_seconds": self.elapsed(),
            "solver_calls": self.solver_calls,
            "solver_calls_used": self.solver_calls_used,
            "on_exhausted": self.on_exhausted,
        }

    def __repr__(self) -> str:
        wall = "inf" if self.wall_seconds is None else f"{self.wall_seconds:g}s"
        return (
            f"Budget(wall={wall}, remaining={self.remaining():.3f}s, "
            f"solver_calls_used={self.solver_calls_used}, "
            f"policy={self.on_exhausted})"
        )
