"""Deterministic, seeded fault injection for chaos testing.

The pipeline carries named **injection points** at its failure-prone
seams; each is a no-op unless a :class:`FaultPlan` arms it:

===================== ============================================== =========================
point                 placed at                                      effect when armed
===================== ============================================== =========================
solver-fail           ``core.milp.solve_cluster_milp`` entry          raises ``SolverError``
solver-slow           ``core.milp.solve_cluster_milp`` entry          sleeps ``delay`` seconds
worker-crash          executor worker entry (``_invoke``)             ``os._exit(13)`` in a pool
                                                                      worker; raises
                                                                      ``FaultInjectionError``
                                                                      in-process
store-corrupt         ``ResultStore.put``                             writes a corrupt artifact
store-enospc          ``ResultStore.put`` mid-write                   raises ``OSError(ENOSPC)``
checkpoint-torn-write ``MapperCheckpoint.save``                       writes a torn (truncated)
                                                                      checkpoint file
serve-enqueue         ``MappingDaemon.submit`` after admission        raises
                                                                      ``FaultInjectionError``
lease-expire          fleet coordinator claim liveness check          treats the claim as
                      (``DistributedExecutor._poll_key``)             expired (behavioral,
                                                                      via :func:`fires`)
heartbeat-stall       fleet worker heartbeat thread                   stops refreshing the
                      (``FleetWorker._heartbeat_loop``)               lease while the job
                                                                      keeps running
                                                                      (behavioral, sticky)
worker-partition      fleet worker heartbeat thread                   full partition: beats
                      (``FleetWorker._heartbeat_loop``)               stop AND the worker
                                                                      assumes it lost sight
                                                                      of the board — it must
                                                                      self-fence before
                                                                      publishing (behavioral,
                                                                      sticky)
clock-skew            fleet worker heartbeat thread, after            stamps the claim mtime
                      each successful beat                            an hour into the past —
                                                                      seq advances, mtime
                                                                      looks dead (behavioral,
                                                                      sticky)
lease-renew-latency   fleet worker heartbeat thread, before           sleeps ``delay`` seconds
                      each beat                                       before the renewal write
                                                                      (slow shared mount;
                                                                      behavioral, via
                                                                      :func:`stall_seconds`)
===================== ============================================== =========================

A second family of **kill points** (:data:`KILL_POINTS`) SIGKILLs the
*current process* at a precise step of the store's commit protocol:

===================== ==============================================
kill point            process dies with
===================== ==============================================
store-kill-tmp        an empty temp file created, nothing written
store-kill-mid-write  a torn (half-written) temp file
store-kill-pre-rename temp file complete + fsynced, not yet renamed
store-kill-post-rename artifact renamed into place, directory not
                      yet fsynced
worker-kill-after-claim fleet worker dies immediately after taking
                      a job claim (lease held, nothing durable)
===================== ==============================================

Kill points are never part of :data:`INJECTION_POINTS` (the chaos
matrix must not SIGKILL the test runner); they are armed via
``REPRO_FAULTS`` inside the dedicated subprocess crash harness
(``tests/test_crash_consistency.py``), which asserts the store stays
consistent after every one of them.

Plans are activated programmatically (:func:`activate`, the
:func:`injected_faults` context manager) or via the environment — which
worker processes inherit::

    REPRO_FAULTS="solver-fail,worker-crash:1,solver-slow:2:0.25"
    REPRO_FAULT_HITS_DIR=/tmp/hits    # cross-process hit accounting
    REPRO_FAULT_SEED=7                # probability draws (rarely needed)

Each spec is ``point[:max_hits[:delay]]``; ``max_hits`` bounds how many
times the fault fires (``*`` = unlimited) and defaults to 1, so a chaos
run exercises the failure path once and then proves recovery. Hit
counters are per-process by default; ``REPRO_FAULT_HITS_DIR`` shares
them across processes via atomically-claimed marker files, which keeps
plans deterministic under the process-pool executor (a fault that fired
in a crashed worker stays consumed in its replacement).
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError, FaultInjectionError, SolverError

__all__ = [
    "INJECTION_POINTS",
    "KILL_POINTS",
    "FLEET_KILL_POINTS",
    "FaultSpec",
    "FaultPlan",
    "activate",
    "deactivate",
    "injected_faults",
    "inject",
    "fires",
    "stall_seconds",
]

INJECTION_POINTS = (
    "solver-fail",
    "solver-slow",
    "worker-crash",
    "store-corrupt",
    "store-enospc",
    "checkpoint-torn-write",
    "serve-enqueue",
    # Fleet (behavioral, consumed via fires()/stall_seconds()): the
    # coordinator treats a healthy claim as expired; a worker's
    # heartbeat thread goes quiet, partitions, skews its clock, or
    # renews through a slow mount. Harmless in the local chaos matrix —
    # the local engine never consults these hooks.
    "lease-expire",
    "heartbeat-stall",
    "worker-partition",
    "clock-skew",
    "lease-renew-latency",
)

#: SIGKILL-the-writer points along the store commit protocol. Deliberately
#: not in INJECTION_POINTS: the chaos matrix iterates that tuple in the
#: test runner's own process, and these points kill whoever hits them.
KILL_POINTS = (
    "store-kill-tmp",
    "store-kill-mid-write",
    "store-kill-pre-rename",
    "store-kill-post-rename",
)

#: SIGKILL points that live outside the store commit protocol (and thus
#: outside the crash-consistency matrix, which drives every KILL_POINTS
#: entry through ``ResultStore.put``). ``worker-kill-after-claim`` kills
#: a fleet worker the instant it takes a job claim — lease held, nothing
#: durable — the worst-case death the lease reaper must recover from.
FLEET_KILL_POINTS = ("worker-kill-after-claim",)

ENV_FAULTS = "REPRO_FAULTS"
ENV_HITS_DIR = "REPRO_FAULT_HITS_DIR"
ENV_SEED = "REPRO_FAULT_SEED"


@dataclass(frozen=True)
class FaultSpec:
    """One armed injection point.

    ``max_hits=None`` means unlimited; ``delay`` only matters for
    ``solver-slow``; ``probability < 1`` makes each potential hit a
    seeded coin flip (draws come from the plan's RNG, so runs with the
    same seed and call sequence inject identically).
    """

    point: str
    max_hits: int | None = 1
    delay: float = 0.05
    probability: float = 1.0

    def __post_init__(self):
        known = INJECTION_POINTS + KILL_POINTS + FLEET_KILL_POINTS
        if self.point not in known:
            raise ConfigError(
                f"unknown injection point {self.point!r}; choose from {known}"
            )
        if self.max_hits is not None and self.max_hits < 0:
            raise ConfigError("max_hits must be >= 0 (or None for unlimited)")
        if self.delay < 0:
            raise ConfigError("delay must be >= 0")
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigError("probability must be in [0, 1]")


class FaultPlan:
    """A set of armed faults plus deterministic hit accounting."""

    def __init__(self, specs, seed: int = 0, hits_dir=None):
        self.specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self.specs:
                raise ConfigError(f"duplicate fault spec for {spec.point!r}")
            self.specs[spec.point] = spec
        self.hits_dir = Path(hits_dir) if hits_dir is not None else None
        self.seed = seed
        self._rng = random.Random(seed)
        self._local_hits: dict[str, int] = {}

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        environ = os.environ if environ is None else environ
        raw = environ.get(ENV_FAULTS, "").strip()
        if not raw:
            return None
        specs = []
        for chunk in raw.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            point = parts[0]
            max_hits: int | None = 1
            if len(parts) > 1 and parts[1]:
                max_hits = None if parts[1] in ("*", "inf") else int(parts[1])
            delay = float(parts[2]) if len(parts) > 2 and parts[2] else 0.05
            specs.append(FaultSpec(point, max_hits=max_hits, delay=delay))
        return cls(
            specs,
            seed=int(environ.get(ENV_SEED, "0")),
            hits_dir=environ.get(ENV_HITS_DIR) or None,
        )

    # -- hit accounting -----------------------------------------------------------
    def _claim_shared(self, spec: FaultSpec) -> bool:
        """Claim the next cross-process hit slot for ``spec`` (marker files
        created O_EXCL, so exactly one process wins each slot)."""
        assert self.hits_dir is not None and spec.max_hits is not None
        self.hits_dir.mkdir(parents=True, exist_ok=True)
        for i in range(spec.max_hits):
            path = self.hits_dir / f"{spec.point}.{i}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def claim(self, point: str) -> FaultSpec | None:
        """The spec to fire at ``point`` now, or None (consumes a hit)."""
        spec = self.specs.get(point)
        if spec is None:
            return None
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return None
        if spec.max_hits is None:
            return spec
        if self.hits_dir is not None:
            return spec if self._claim_shared(spec) else None
        used = self._local_hits.get(point, 0)
        if used >= spec.max_hits:
            return None
        self._local_hits[point] = used + 1
        return spec


# -- active-plan resolution -----------------------------------------------------------
_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[tuple, FaultPlan | None] = ((), None)


def activate(plan: FaultPlan | None) -> None:
    """Arm ``plan`` for this process (overrides the environment)."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Disarm any programmatic plan (environment plans resume applying)."""
    activate(None)


@contextmanager
def injected_faults(*specs: FaultSpec, seed: int = 0, hits_dir=None):
    """Arm the given faults for the duration of the block (tests)."""
    previous = _ACTIVE
    activate(FaultPlan(specs, seed=seed, hits_dir=hits_dir))
    try:
        yield
    finally:
        activate(previous)


def _active() -> FaultPlan | None:
    if _ACTIVE is not None:
        return _ACTIVE
    global _ENV_CACHE
    key = (
        os.environ.get(ENV_FAULTS, ""),
        os.environ.get(ENV_HITS_DIR, ""),
        os.environ.get(ENV_SEED, ""),
    )
    # Rebuilding on every call would reset per-process hit counters, so
    # the parsed plan is cached until the environment actually changes.
    if _ENV_CACHE[0] != key:
        _ENV_CACHE = (key, FaultPlan.from_env())
    return _ENV_CACHE[1]


# -- the two hook shapes --------------------------------------------------------------
def _in_pool_worker() -> bool:
    return multiprocessing.parent_process() is not None


def inject(point: str) -> None:
    """Raising/sleeping injection hook; a no-op unless ``point`` is armed."""
    plan = _active()
    if plan is None:
        return
    spec = plan.claim(point)
    if spec is None:
        return
    if point in KILL_POINTS + FLEET_KILL_POINTS:
        # Simulate a hard crash (power loss, OOM kill) at this exact
        # step: no cleanup handlers, no atexit, no flushing.
        os.kill(os.getpid(), signal.SIGKILL)
    if point == "solver-slow":
        time.sleep(spec.delay)
        return
    if point == "solver-fail":
        raise SolverError(f"injected fault at {point!r}")
    if point == "store-enospc":
        raise OSError(errno.ENOSPC, f"injected fault at {point!r}: "
                                    "no space left on device")
    if point == "worker-crash" and _in_pool_worker():
        os._exit(13)
    raise FaultInjectionError(f"injected fault at {point!r}")


def fires(point: str) -> bool:
    """Behavioral injection hook: True when the caller should corrupt its
    own write path (store-corrupt, checkpoint-torn-write)."""
    plan = _active()
    if plan is None:
        return False
    return plan.claim(point) is not None


def stall_seconds(point: str) -> float | None:
    """Behavioral delay hook: the armed spec's ``delay`` when ``point``
    fires (consuming a hit), else None. Lets latency-shaped faults
    (``lease-renew-latency``) carry their magnitude in the plan —
    ``lease-renew-latency:*:0.7`` stalls every renewal 0.7 s."""
    plan = _active()
    if plan is None:
        return None
    spec = plan.claim(point)
    return None if spec is None else spec.delay
