"""Phase-level checkpoint/resume for mapping jobs.

``RAHTMMapper.map()`` persists intermediate state after each completed
phase — the phase-2 pseudo-pin per uniform sub-map, the phase-3 merge
result, and each partition's finished local assignment — into a
content-addressed :class:`~repro.service.store.ResultStore`. Checkpoint
keys are derived from the owning job's cache key plus a stage name, so a
killed or timed-out job that reruns (same spec ⇒ same job key) resumes
from the last completed phase instead of recomputing: in particular a
resumed job performs **zero repeat MILP solves** for checkpointed stages.

Checkpoints are written on completion of a stage (atomic store writes),
loaded only when resume is enabled, and cleared once the whole mapping
succeeds — at that point the job's final artifact supersedes them.

Durability follows the store's discipline end to end: checkpoint
artifacts carry the store's per-entry SHA-256 checksum, a torn or
bit-flipped checkpoint is quarantined (with a corruption report) on
load rather than silently dropped, and a checkpoint that *parses* but
fails semantic validation (wrong stage/job/shape) is quarantined too —
both degrade to "recompute this stage", never to wrong results. Saving
is best-effort: a full disk (ENOSPC) loses the checkpoint, not the job.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CheckpointError
from repro.resilience import faultinject
from repro.utils.hashing import stable_hash
from repro.utils.logconf import get_logger

__all__ = ["CHECKPOINT_SCHEMA_VERSION", "MapperCheckpoint"]

log = get_logger("resilience.checkpoint")

#: Version of the checkpoint state schema; bump on shape changes so stale
#: checkpoints from older code miss cleanly.
CHECKPOINT_SCHEMA_VERSION = 1


class MapperCheckpoint:
    """Stage-keyed checkpoint reader/writer for one mapping job.

    Parameters
    ----------
    store:
        A :class:`~repro.service.store.ResultStore` (or anything with its
        ``get``/``put``/``path_for``/``evict`` surface) holding the
        checkpoint artifacts.
    job_key:
        The owning job's content-addressed cache key; every stage key is
        a hash over ``(job_key, stage)``, so checkpoints can never leak
        between jobs.
    resume:
        When False, :meth:`load` always misses (writes still happen), so
        a non-``--resume`` run never trusts leftover state.
    """

    def __init__(self, store, job_key: str, resume: bool = True):
        if not job_key:
            raise CheckpointError("checkpoint requires a non-empty job key")
        self.store = store
        self.job_key = str(job_key)
        self.resume = resume
        self.loaded: list[str] = []
        self.saved: list[str] = []
        self._marked: list[str] = []

    def key_for(self, stage: str) -> str:
        return stable_hash({
            "checkpoint": CHECKPOINT_SCHEMA_VERSION,
            "job": self.job_key,
            "stage": stage,
        })

    # -- read ---------------------------------------------------------------------
    def load(self, stage: str) -> dict | None:
        """The saved state for ``stage``, or None (miss/corrupt/disabled)."""
        if not self.resume:
            return None
        payload = self.store.get(self.key_for(stage))
        if payload is None:
            return None
        if (payload.get("kind") != "checkpoint"
                or payload.get("stage") != stage
                or payload.get("job") != self.job_key
                or not isinstance(payload.get("state"), dict)):
            log.warning("quarantining malformed checkpoint for stage %r",
                        stage)
            self._discard(stage, "malformed checkpoint state")
            return None
        self.loaded.append(stage)
        log.info("resumed stage %r from checkpoint", stage)
        return payload["state"]

    def _discard(self, stage: str, reason: str) -> None:
        """Quarantine a bad checkpoint (evict when the store predates
        quarantine support — the documented duck-typed surface)."""
        quarantine = getattr(self.store, "quarantine_key", None)
        if callable(quarantine):
            quarantine(self.key_for(stage), reason=reason)
        else:
            self.store.evict(self.key_for(stage))

    def load_assignment(self, stage: str, field: str = "assignment",
                        expect_len: int | None = None) -> np.ndarray | None:
        """Load one integer-array field, validating its length."""
        state = self.load(stage)
        if state is None:
            return None
        try:
            arr = np.asarray(state[field], dtype=np.int64)
        except (KeyError, TypeError, ValueError):
            log.warning("checkpoint stage %r has no usable %r field",
                        stage, field)
            return None
        if expect_len is not None and len(arr) != expect_len:
            log.warning("checkpoint stage %r length %d != expected %d; "
                        "recomputing", stage, len(arr), expect_len)
            return None
        return arr

    # -- write --------------------------------------------------------------------
    def save(self, stage: str, state: dict) -> None:
        """Persist ``state`` (JSON-safe) for ``stage``."""
        key = self.key_for(stage)
        payload = {
            "kind": "checkpoint",
            "job": self.job_key,
            "stage": stage,
            "state": state,
        }
        if faultinject.fires("checkpoint-torn-write"):
            # Simulate a power-loss/non-atomic writer: the artifact exists
            # but holds truncated JSON. Resume must detect and recompute.
            path = self.store.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text('{"kind": "checkpoint", "stage": "' + stage)
            self.saved.append(stage)
            return
        try:
            self.store.put(key, payload)
        except OSError as exc:
            # Checkpoints are an optimization: a full disk costs this
            # stage's resume point, never the mapping itself.
            log.warning("checkpoint save for stage %r failed (%s); "
                        "continuing without it", stage, exc)
            return
        self.saved.append(stage)

    def save_assignment(self, stage: str, assignment: np.ndarray,
                        **extra) -> None:
        self.save(stage, {
            "assignment": [int(x) for x in np.asarray(assignment).ravel()],
            **extra,
        })

    # -- lifecycle ----------------------------------------------------------------
    def mark(self, *stages: str) -> None:
        """Register stages for :meth:`clear` without loading or saving them.

        Used when a coarser checkpoint (a whole partition) short-circuits
        its finer sub-stages: those files may still exist from the killed
        run and must not outlive the job's success.
        """
        self._marked.extend(stages)

    def clear(self) -> int:
        """Drop every stage this run touched; returns the number evicted."""
        count = 0
        for stage in dict.fromkeys(self.saved + self.loaded + self._marked):
            if self.store.evict(self.key_for(stage)):
                count += 1
        self.saved.clear()
        self.loaded.clear()
        self._marked.clear()
        return count

    def stats(self) -> dict:
        return {"loaded": list(self.loaded), "saved": list(self.saved)}
