"""Robustness layer: budgets, graceful degradation, checkpoints, chaos.

``repro.resilience`` makes long-running mapping fleets survivable:

- :mod:`~repro.resilience.budget` — a depleting wall-clock/solver-call
  :class:`Budget` threaded from the CLI and service runtime into every
  phase, so a global ``--deadline`` is enforced end to end;
- :mod:`~repro.resilience.degrade` — structured
  :class:`DegradationEvent` records of every fallback-ladder step
  (MILP → greedy → static placement, full merge → first-fit);
- :mod:`~repro.resilience.checkpoint` — phase-level
  :class:`MapperCheckpoint` state in the content-addressed store, so a
  killed job resumes with zero repeat MILP solves;
- :mod:`~repro.resilience.faultinject` — deterministic, seeded fault
  injection at named points, powering the chaos test suite.

The package sits just above ``errors``/``utils`` in the layering: core
and service both import it, it imports neither.
"""

from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MapperCheckpoint
from repro.resilience.degrade import DegradationEvent, DegradationLog
from repro.resilience.faultinject import (
    FLEET_KILL_POINTS,
    INJECTION_POINTS,
    KILL_POINTS,
    FaultPlan,
    FaultSpec,
    injected_faults,
)

__all__ = [
    "Budget",
    "MapperCheckpoint",
    "DegradationEvent",
    "DegradationLog",
    "FLEET_KILL_POINTS",
    "INJECTION_POINTS",
    "KILL_POINTS",
    "FaultPlan",
    "FaultSpec",
    "injected_faults",
]
