"""Text renderers for mappings and channel loads."""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import ReproError
from repro.mapping.mapping import Mapping
from repro.routing.base import Router

__all__ = ["load_histogram_text", "mapping_grid_text", "dimension_load_text"]

_BARS = " ▁▂▃▄▅▆▇█"


def _bar(value: float, vmax: float) -> str:
    if vmax <= 0:
        return _BARS[0]
    idx = int(round((len(_BARS) - 1) * min(value / vmax, 1.0)))
    return _BARS[idx]


def load_histogram_text(
    router: Router, mapping: Mapping, graph: CommGraph, bins: int = 16,
    width: int = 40,
) -> str:
    """Histogram of valid-channel loads as horizontal bars.

    The shape of this histogram is the whole story of a mapping: a long
    right tail *is* contention; RAHTM's goal is to squash it.
    """
    srcs, dsts, vols = mapping.network_flows(graph)
    loads = router.link_loads(srcs, dsts, vols)
    valid = router.topology.channel_valid
    counts, edges = np.histogram(loads[valid], bins=bins)
    peak = counts.max() if counts.size else 1
    lines = [f"channel load histogram ({int(valid.sum())} channels, "
             f"MCL={loads.max():.4g})"]
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak)) if peak else ""
        lines.append(f"{lo:10.3g} - {hi:10.3g} |{bar} {c}")
    return "\n".join(lines)


def mapping_grid_text(mapping: Mapping, dims: tuple[int, int] = (0, 1)) -> str:
    """Render which tasks sit where, as a 2-D slice of the topology.

    Shows the task list of each node in the plane spanned by ``dims`` at
    the zero coordinate of every other dimension.
    """
    topo = mapping.topology
    d0, d1 = dims
    if d0 == d1 or max(d0, d1) >= topo.ndim:
        raise ReproError(f"invalid dims {dims} for a {topo.ndim}-D topology")
    cell_width = max(
        len(",".join(map(str, mapping.tasks_on(v)))) for v in range(topo.num_nodes)
    )
    cell_width = max(cell_width, 3)
    lines = [f"tasks per node, dims {d0} x {d1} "
             f"(other coordinates at 0)"]
    for x0 in range(topo.shape[d0]):
        row = []
        for x1 in range(topo.shape[d1]):
            coords = np.zeros(topo.ndim, dtype=np.int64)
            coords[d0], coords[d1] = x0, x1
            node = int(topo.index(coords))
            cell = ",".join(map(str, mapping.tasks_on(node)))
            row.append(f"{cell:>{cell_width}}")
        lines.append(" | ".join(row))
    return "\n".join(lines)


def dimension_load_text(
    router: Router, mapping: Mapping, graph: CommGraph
) -> str:
    """Per-dimension, per-direction load summary with sparkline bars.

    A balanced mapping shows similar totals and maxima across dimensions;
    dimension-order mappings typically light up one dimension.
    """
    topo = router.topology
    srcs, dsts, vols = mapping.network_flows(graph)
    loads = router.link_loads(srcs, dsts, vols)
    vmax = loads.max() if loads.size else 1.0
    lines = ["per-dimension channel loads (max / mean, bar = max)"]
    for d in range(topo.ndim):
        for direction, sign in ((0, "+"), (1, "-")):
            sel = (
                topo.channel_valid
                & (topo.channel_dim == d)
                & (topo.channel_dir == direction)
            )
            if not sel.any():
                continue
            sub = loads[sel]
            lines.append(
                f"dim {d}{sign}: {_bar(float(sub.max()), vmax)} "
                f"max {sub.max():10.4g}  mean {sub.mean():10.4g}"
            )
    return "\n".join(lines)
