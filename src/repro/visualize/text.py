"""Text renderers for mappings, channel loads and netview reports."""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import ReproError
from repro.mapping.mapping import Mapping
from repro.routing.base import Router

__all__ = [
    "load_histogram_text",
    "mapping_grid_text",
    "dimension_load_text",
    "link_heatmap_text",
    "hotspot_table_text",
    "netview_text",
]

_BARS = " ▁▂▃▄▅▆▇█"


def _bar(value: float, vmax: float) -> str:
    if vmax <= 0:
        return _BARS[0]
    idx = int(round((len(_BARS) - 1) * min(value / vmax, 1.0)))
    return _BARS[idx]


def load_histogram_text(
    router: Router, mapping: Mapping, graph: CommGraph, bins: int = 16,
    width: int = 40,
) -> str:
    """Histogram of valid-channel loads as horizontal bars.

    The shape of this histogram is the whole story of a mapping: a long
    right tail *is* contention; RAHTM's goal is to squash it.
    """
    srcs, dsts, vols = mapping.network_flows(graph)
    loads = router.link_loads(srcs, dsts, vols)
    valid = router.topology.channel_valid
    sub = loads[valid]
    if sub.size == 0 or float(sub.max()) <= 0.0:
        return (f"channel load histogram ({int(valid.sum())} channels): "
                "no network load")
    counts, edges = np.histogram(sub, bins=bins)
    peak = counts.max() if counts.size else 1
    lines = [f"channel load histogram ({int(valid.sum())} channels, "
             f"MCL={sub.max():.4g})"]
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak)) if peak else ""
        lines.append(f"{lo:10.3g} - {hi:10.3g} |{bar} {c}")
    return "\n".join(lines)


def mapping_grid_text(mapping: Mapping, dims: tuple[int, int] = (0, 1)) -> str:
    """Render which tasks sit where, as a 2-D slice of the topology.

    Shows the task list of each node in the plane spanned by ``dims`` at
    the zero coordinate of every other dimension.
    """
    topo = mapping.topology
    d0, d1 = dims
    if d0 == d1 or max(d0, d1) >= topo.ndim:
        raise ReproError(f"invalid dims {dims} for a {topo.ndim}-D topology")
    cell_width = max(
        len(",".join(map(str, mapping.tasks_on(v)))) for v in range(topo.num_nodes)
    )
    cell_width = max(cell_width, 3)
    lines = [f"tasks per node, dims {d0} x {d1} "
             f"(other coordinates at 0)"]
    for x0 in range(topo.shape[d0]):
        row = []
        for x1 in range(topo.shape[d1]):
            coords = np.zeros(topo.ndim, dtype=np.int64)
            coords[d0], coords[d1] = x0, x1
            node = int(topo.index(coords))
            cell = ",".join(map(str, mapping.tasks_on(node)))
            row.append(f"{cell:>{cell_width}}")
        lines.append(" | ".join(row))
    return "\n".join(lines)


def dimension_load_text(
    router: Router, mapping: Mapping, graph: CommGraph
) -> str:
    """Per-dimension, per-direction load summary with sparkline bars.

    A balanced mapping shows similar totals and maxima across dimensions;
    dimension-order mappings typically light up one dimension.
    """
    topo = router.topology
    srcs, dsts, vols = mapping.network_flows(graph)
    loads = router.link_loads(srcs, dsts, vols)
    vmax = float(loads.max()) if loads.size else 0.0
    header = "per-dimension channel loads (max / mean, bar = max)"
    if vmax <= 0.0:
        return header + "\nno network load"
    lines = [header]
    for d in range(topo.ndim):
        for direction, sign in ((0, "+"), (1, "-")):
            sel = (
                topo.channel_valid
                & (topo.channel_dim == d)
                & (topo.channel_dir == direction)
            )
            if not sel.any():
                continue
            sub = loads[sel]
            lines.append(
                f"dim {d}{sign}: {_bar(float(sub.max()), vmax)} "
                f"max {sub.max():10.4g}  mean {sub.mean():10.4g}"
            )
    return "\n".join(lines)


def link_heatmap_text(
    topology, loads: np.ndarray, dims: tuple[int, int] = (0, 1)
) -> str:
    """Per-node egress load as a 2-D bar heatmap.

    Each node's hottest outgoing channel is reduced to one bar glyph;
    extra dimensions are folded with ``max``, so a hotspot anywhere in
    the folded fiber lights its (d0, d1) cell. An all-idle network
    renders a placeholder instead of dividing by zero.
    """
    d0, d1 = dims
    if d0 == d1 or max(d0, d1) >= topology.ndim:
        raise ReproError(f"invalid dims {dims} for a {topology.ndim}-D topology")
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (topology.num_channel_slots,):
        raise ReproError(
            f"loads has shape {loads.shape}, expected "
            f"({topology.num_channel_slots},)"
        )
    masked = np.where(topology.channel_valid, loads, 0.0)
    per_node = masked.reshape(topology.num_nodes, -1).max(axis=1)
    grid = per_node.reshape(topology.shape)
    fold = tuple(d for d in range(topology.ndim) if d not in (d0, d1))
    if fold:
        grid = grid.max(axis=fold)
    if d0 > d1:  # rows always iterate the lower-indexed dimension
        grid = grid.T
        d0, d1 = d1, d0
    vmax = float(grid.max()) if grid.size else 0.0
    title = (f"egress load heatmap, dims {d0} x {d1} "
             f"(max over folded dims, vmax={vmax:.4g})")
    if vmax <= 0.0:
        return title + "\nno network load"
    lines = [title]
    for x0 in range(grid.shape[0]):
        lines.append("".join(_bar(float(v), vmax) for v in grid[x0]))
    return "\n".join(lines)


def hotspot_table_text(view, max_flows: int = 3) -> str:
    """The top-k hottest links of a NetView as an aligned text table."""
    if not view.hotspots:
        return "no hotspots: the network carries no load"
    lines = [
        f"{'rank':<5}{'link':<24}{'load':>12}{'%MCL':>7}{'%total':>8}  top flows"
    ]
    for rank, h in enumerate(view.hotspots, start=1):
        flows = ", ".join(
            f"{f.src_node}->{f.dst_node} ({f.share:.0%})"
            for f in h.flows[:max_flows]
        ) or "-"
        lines.append(
            f"{rank:<5}{h.link.label():<24}{h.load:>12.5g}"
            f"{h.share_of_mcl:>7.0%}{h.share_of_total:>8.1%}  {flows}"
        )
    return "\n".join(lines)


def netview_text(view) -> str:
    """Full text rendering of a NetView: stats, balance, hotspot table."""
    s = view.stats
    lines = [
        f"netview: {view.router} on "
        f"{'x'.join(map(str, view.topology_shape))} "
        f"({view.num_flows} network flows)",
        f"MCL {s.mcl:.6g}  mean {s.mean:.6g}  imbalance {s.imbalance:.2f}  "
        f"gini {s.gini:.3f}",
        f"p50 {s.p50:.6g}  p95 {s.p95:.6g}  p99 {s.p99:.6g}  "
        f"idle channels {s.zero_channels}/{s.num_channels}",
    ]
    if view.dimension_loads:
        vmax = max(d.max for d in view.dimension_loads)
        for d in view.dimension_loads:
            lines.append(
                f"dim {d.dim}{d.direction}: {_bar(d.max, vmax)} "
                f"max {d.max:10.4g}  mean {d.mean:10.4g}"
            )
    if view.saturation is not None:
        sat = view.saturation
        verdict = "agrees with MCL" if sat.agrees else "DISAGREES with MCL"
        lines.append(
            f"saturation (fluid max-min rates): bottleneck "
            f"{sat.bottleneck.label()} at {sat.bottleneck_utilization:.0%}, "
            f"{sat.saturated_links} saturated link(s), {verdict}"
        )
    lines.append(hotspot_table_text(view))
    return "\n".join(lines)
