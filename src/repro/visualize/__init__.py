"""Plain-text visualization of mappings and link loads.

No plotting dependencies: everything renders to strings suitable for
terminals and logs (the paper's figures are diagrams; these renderers give
the same at-a-glance information for arbitrary runs).
"""

from repro.visualize.text import (
    dimension_load_text,
    hotspot_table_text,
    link_heatmap_text,
    load_histogram_text,
    mapping_grid_text,
    netview_text,
)

__all__ = [
    "dimension_load_text",
    "hotspot_table_text",
    "link_heatmap_text",
    "load_histogram_text",
    "mapping_grid_text",
    "netview_text",
]
