"""Plain-text visualization of mappings and link loads.

No plotting dependencies: everything renders to strings suitable for
terminals and logs (the paper's figures are diagrams; these renderers give
the same at-a-glance information for arbitrary runs).
"""

from repro.visualize.text import (
    load_histogram_text,
    mapping_grid_text,
    dimension_load_text,
)

__all__ = [
    "load_histogram_text",
    "mapping_grid_text",
    "dimension_load_text",
]
