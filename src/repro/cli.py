"""Command-line interface.

Subcommands::

    repro workload  --spec cg:256:C --out cg.npz
    repro map       --topology 4x4x4 --workload cg:256:C --mapper rahtm \\
                    --out mapping.npz
    repro evaluate  --topology 4x4x4 --workload cg:256:C --mapping mapping.npz
    repro compare   --topology 4x4x4 --workload cg:256:C \\
                    --mappers default,hilbert,rahtm
    repro experiment fig8 --scale tiny

Workload specs: ``bt:TASKS[:CLASS]``, ``sp:...``, ``cg:...``,
``halo2d:NXxNY[:VOL]``, ``halo3d:NXxNYxNZ[:VOL]``, ``random:TASKS:EDGES``,
``butterfly:TASKS``, ``transpose:SIDE``, ``ring:TASKS``,
``bisection:TASKS``, ``fft:RxC[:VOL]``, ``wavefront:RxC``,
``stencil27:NXxNYxNZ``, ``collective:NAME:TASKS``, or a path to a
``.npz``/``.json`` graph.

Mapper specs: ``rahtm``, ``default``, ``dimorder:ORDER`` (e.g.
``dimorder:TABC``), ``hilbert``, ``rubik``, ``rcb`` (recursive
bisection), ``anneal-hopbytes``, ``anneal-mcl``, ``random``.

``map``, ``compare`` and ``experiment`` run through the service engine
(``repro.service``): ``--jobs N`` fans independent cells out over worker
processes, ``--cache-dir DIR`` (or ``$REPRO_CACHE_DIR``) enables the
content-addressed result store, ``--no-cache`` bypasses it, and
``--job-timeout S`` bounds each job's wall clock.

Resilience (``repro.resilience``): ``--deadline S`` gives each mapping a
wall-clock budget RAHTM degrades gracefully under (``--on-deadline fail``
raises instead), ``--checkpoint-dir DIR`` persists phase-level state and
``--resume`` continues a killed run from it with zero repeat MILP solves.

Observability (``repro.observability``): ``--trace FILE`` records the
pipeline's span tree; a ``.jsonl`` target also gets a sibling
``.chrome.json`` loadable in ``chrome://tracing`` / Perfetto, any other
target is written in Chrome format directly. ``--metrics`` prints the
process-wide metrics registry (solver timings, cache traffic, beam
widths, degradations) after the command finishes.

Network introspection: ``repro explain`` decomposes a mapping's channel
loads into per-flow contributions and prints hotspot tables, load
statistics and text heatmaps (``--out`` writes the schema-versioned JSON
artifact). ``map --explain FILE`` and ``compare --explain FILE`` write
the same artifacts for the mappings they compute — ``compare`` includes
link-by-link diffs of every mapper against the first one. All artifact
flags (``--explain``/``--trace``/``--metrics``) flush even when the run
degrades or fails.

Daemon mode (``repro.serve``): ``repro serve --cache-dir DIR`` runs a
persistent daemon exposing the engine over an HTTP JSON API — idempotent
submits keyed by the spec's cache key, weighted-fair tenant queues,
deadline-budget admission control, graceful SIGTERM drain with automatic
requeue on restart, and a periodic doctor janitor. ``repro
submit/status/result/cancel`` are the matching client commands; they find
the daemon via ``--url``, ``$REPRO_SERVE_URL``, or the ``serve.json``
ready file in the cache directory; transient transport failures and 503s
are retried with full-jitter backoff (``--retries``). See
``docs/serve.md``.

Distributed fleet (``repro.distributed``): ``repro worker DIR`` runs a
work-stealing fleet worker against a shared cache directory's job board;
``repro serve --backend distributed`` (and ``MappingEngine(
backend="distributed")``) shard batches across such workers with
lease-based fault tolerance — a SIGKILLed worker's claim expires and the
job is reclaimed, requeued and finished elsewhere with zero repeat MILP
solves. See ``docs/distributed.md``.

Durability: cached artifacts are checksummed; corrupt entries are moved
to ``<cache-dir>/quarantine/`` with a structured report instead of being
silently dropped, and concurrent engines can safely share one cache
directory (advisory pid locks with stale-lock takeover). ``repro doctor
DIR`` fscks a cache or checkpoint directory — checksums, orphaned temp
files, stale locks, quarantine contents, drained-batch queues — and
``--repair`` fixes what it finds (``--out FILE`` writes the JSON
report; exit 0 = clean). A SIGTERM/SIGINT during a batch drains
gracefully: in-flight jobs finish, the unstarted remainder is recorded
in ``<cache-dir>/pending.json`` for resubmission.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.commgraph import save_commgraph
from repro.errors import ConfigError, ReproError
from repro.metrics import evaluate_mapping
from repro.observability import Tracer, activate, get_registry
from repro.service import (
    JobRuntime,
    MappingEngine,
    MappingJob,
    TopologySpec,
    WorkloadSpec,
    mapper_config_from_spec,
)
from repro.service.jobs import build_router
from repro.topology import CartesianTopology
from repro.utils.logconf import enable_console_logging
from repro.workloads.registry import parse_workload

__all__ = ["main", "parse_topology", "parse_workload", "build_mapper"]


# -- spec parsing -------------------------------------------------------------------
def parse_topology(spec: str, mesh: bool = False) -> CartesianTopology:
    """Parse ``4x4x4`` (torus) into a topology; ``mesh=True`` drops wrap."""
    try:
        shape = tuple(int(p) for p in spec.lower().split("x"))
    except ValueError:
        raise ConfigError(f"bad topology spec {spec!r}; expected e.g. 4x4x4")
    return CartesianTopology(shape, wrap=not mesh)


def build_mapper(spec: str, topology: CartesianTopology, args=None) -> object:
    """Instantiate a mapper from its CLI spec (via the job-spec codec)."""
    return mapper_config_from_spec(spec, args).build(topology)


def _runtime_from_args(args) -> JobRuntime | None:
    """Translate ``--deadline/--on-deadline/--resume`` into a JobRuntime.

    Checkpointing activates with ``--resume``: state goes under
    ``--checkpoint-dir``, falling back to ``$REPRO_CHECKPOINT_DIR``, then
    to ``<cache-dir>/checkpoints`` when a cache directory is in play.
    """
    deadline = getattr(args, "deadline", None)
    on_deadline = getattr(args, "on_deadline", "degrade")
    resume = getattr(args, "resume", False)
    checkpoint_dir = (getattr(args, "checkpoint_dir", None)
                      or os.environ.get("REPRO_CHECKPOINT_DIR"))
    if checkpoint_dir is None and resume:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            checkpoint_dir = str(Path(cache_dir) / "checkpoints")
        else:
            raise ConfigError(
                "--resume needs --checkpoint-dir, $REPRO_CHECKPOINT_DIR "
                "or a cache directory to derive one from"
            )
    trace = bool(getattr(args, "trace", None))
    if deadline is None and checkpoint_dir is None and not trace:
        return None
    return JobRuntime(
        deadline_seconds=deadline,
        on_deadline=on_deadline,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        trace=trace,
    )


def _engine_from_args(args) -> MappingEngine:
    """Build the mapping engine the subcommand submits through.

    Caching is on when ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) names a
    directory and ``--no-cache`` is absent.
    """
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if args.no_cache:
        cache_dir = None
    return MappingEngine(
        cache_dir=cache_dir,
        jobs=args.jobs,
        job_timeout=args.job_timeout,
        runtime=_runtime_from_args(args),
    )


def _engine_kwargs(args) -> dict:
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if args.no_cache:
        cache_dir = None
    return {"jobs": args.jobs, "cache_dir": cache_dir,
            "job_timeout": args.job_timeout,
            "runtime": _runtime_from_args(args)}


from repro.mapping import load_mapping as _load_mapping
from repro.mapping import save_mapping as _save_mapping


# -- subcommands ----------------------------------------------------------------------
def cmd_workload(args) -> int:
    graph = parse_workload(args.spec, seed=args.seed)
    save_commgraph(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def _mapping_job(args, topology: CartesianTopology, mapper_spec: str) -> MappingJob:
    return MappingJob(
        topology=TopologySpec.from_topology(topology),
        workload=WorkloadSpec(args.workload, seed=args.seed),
        mapper=mapper_config_from_spec(mapper_spec, args),
        router=args.router,
    )


def _build_explain_view(args, topology, mapping, graph):
    from repro.observability.netview import build_netview

    router = build_router(args.router, topology)
    return build_netview(
        router, mapping, graph,
        top_k=getattr(args, "top_k", 5),
        flows_per_link=getattr(args, "flows_per_link", 5),
        saturation=getattr(args, "saturation", False),
    )


def cmd_map(args) -> int:
    topology = parse_topology(args.topology, mesh=args.mesh)
    engine = _engine_from_args(args)
    result = engine.run_one(_mapping_job(args, topology, args.mapper))
    graph = parse_workload(args.workload, seed=args.seed)
    print(f"topology: {topology.describe()}")
    print(f"workload: {graph}")
    print(f"mapper:   {result.mapper_name}")
    print(f"quality:  {result.report}")
    if result.degraded:
        print("degraded: the deadline forced fallbacks —")
        for event in result.degradation:
            print(f"  - {event.get('phase')}: {event.get('action')} "
                  f"({event.get('reason')})")
    if args.explain:
        view = _build_explain_view(args, topology, result.mapping, graph)
        view.write_json(args.explain)
        print(f"explain artifact written to {args.explain}")
    if args.out:
        _save_mapping(Path(args.out), result.mapping)
        print(f"mapping saved to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    topology = parse_topology(args.topology, mesh=args.mesh)
    graph = parse_workload(args.workload, seed=args.seed)
    mapping = _load_mapping(Path(args.mapping), topology)
    router = build_router(args.router, topology)
    print(evaluate_mapping(router, mapping, graph))
    return 0


def cmd_compare(args) -> int:
    topology = parse_topology(args.topology, mesh=args.mesh)
    engine = _engine_from_args(args)
    specs = [s.strip() for s in args.mappers.split(",") if s.strip()]
    jobs = [_mapping_job(args, topology, spec) for spec in specs]
    outcomes = engine.run(jobs)
    from repro.experiments.report import Table

    table = Table(f"mapper comparison on {args.workload} @ {args.topology}")
    failures, succeeded = [], []
    for spec, outcome in zip(specs, outcomes):
        if not outcome.ok:
            failures.append(f"{spec}: {outcome.error}")
            continue
        result = outcome.result
        succeeded.append(result)
        table.set(result.mapper_name, "MCL", result.report.mcl)
        table.set(result.mapper_name, "hop_bytes", result.report.hop_bytes)
        table.set(result.mapper_name, "imbalance",
                  result.report.load_imbalance)
    print(table.to_text())
    if args.explain and succeeded:
        # Written before any failure is raised: a partial explanation of
        # a half-failed comparison is exactly what you debug with.
        _write_compare_explain(args, topology, succeeded)
    if failures:
        raise ReproError("mapper(s) failed: " + "; ".join(failures))
    return 0


def _write_compare_explain(args, topology, results) -> None:
    """One JSON artifact: a netview per mapper + diffs against the first."""
    import json

    from repro.observability.netview import (
        NETVIEW_SCHEMA_VERSION,
        diff_mappings,
    )

    graph = parse_workload(args.workload, seed=args.seed)
    router = build_router(args.router, topology)
    doc = {
        "schema": NETVIEW_SCHEMA_VERSION,
        "kind": "compare_explain",
        "workload": args.workload,
        "topology": {"shape": list(topology.shape),
                     "wrap": list(topology.wrap)},
        "router": args.router,
        "netviews": {},
        "diffs": [],
    }
    for result in results:
        view = _build_explain_view(args, topology, result.mapping, graph)
        doc["netviews"][result.mapper_name] = view.to_dict()
    base = results[0]
    for result in results[1:]:
        diff = diff_mappings(
            router, graph, base.mapping, result.mapping,
            label_a=base.mapper_name, label_b=result.mapper_name,
            phase_seconds_a=base.phase_seconds,
            phase_seconds_b=result.phase_seconds,
        )
        doc["diffs"].append(diff.to_dict())
        print(diff.summary_line())
    Path(args.explain).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(f"explain artifact written to {args.explain}")


def cmd_explain(args) -> int:
    """Explain a mapping's MCL: hotspots, attribution, heatmaps."""
    from repro.observability.netview import build_netview
    from repro.visualize import (
        link_heatmap_text,
        load_histogram_text,
        netview_text,
    )

    topology = parse_topology(args.topology, mesh=args.mesh)
    graph = parse_workload(args.workload, seed=args.seed)
    router = build_router(args.router, topology)
    if args.mapping:
        mapping = _load_mapping(Path(args.mapping), topology)
        source = f"mapping file {args.mapping}"
    else:
        engine = _engine_from_args(args)
        result = engine.run_one(_mapping_job(args, topology, args.mapper))
        mapping = result.mapping
        source = f"mapper {result.mapper_name}"
    view = build_netview(
        router, mapping, graph,
        top_k=args.top_k,
        flows_per_link=args.flows_per_link,
        saturation=args.saturation,
        link_bandwidth=args.link_bandwidth,
    )
    print(f"explaining {source} on {args.workload} @ {topology.describe()}")
    print(netview_text(view))
    loads = router.link_loads(*mapping.network_flows(graph))
    if topology.ndim >= 2:
        print(link_heatmap_text(topology, loads, dims=tuple(args.heatmap_dims)))
    print(load_histogram_text(router, mapping, graph))
    if args.out:
        view.write_json(args.out)
        print(f"explain artifact written to {args.out}")
    return 0


def cmd_doctor(args) -> int:
    """Fsck a cache/checkpoint directory; exit 0 only when clean."""
    import json

    from repro.service import diagnose

    report = diagnose(args.directory, repair=args.repair,
                      requeue=args.requeue)
    print(report.to_text())
    if args.requeue and report.pending is not None:
        jobs = report.pending.get("jobs", [])
        print(f"requeue: cleared pending.json carrying {len(jobs)} "
              "drained job(s):")
        for entry in jobs:
            print(f"  - {entry.get('key', '?')[:12]}  "
                  f"{entry.get('describe', '(no description)')}")
        print("resubmit them (repro submit / rerun the batch); completed "
              "jobs will hit the cache — or let a restarting `repro "
              "serve` pick them up automatically")
    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"doctor report written to {args.out}")
    return 0 if report.clean else 1


# -- daemon + client ------------------------------------------------------------------
def cmd_serve(args) -> int:
    """Run the persistent mapping daemon over a cache directory."""
    from repro.serve import DaemonConfig, MappingDaemon

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        raise ConfigError(
            "repro serve needs --cache-dir (or $REPRO_CACHE_DIR): the "
            "store is where results, drained queues and the ready file "
            "live")
    tenant_weights = {}
    for spec in args.tenant_weight or []:
        name, _, weight = spec.partition("=")
        try:
            tenant_weights[name] = float(weight)
        except ValueError:
            raise ConfigError(
                f"bad --tenant-weight {spec!r}; expected NAME=WEIGHT")
        if not name:
            raise ConfigError(
                f"bad --tenant-weight {spec!r}; expected NAME=WEIGHT")
    config = DaemonConfig(
        cache_dir=cache_dir,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        job_timeout=args.job_timeout,
        capacity_seconds=args.capacity,
        default_cost_seconds=args.default_cost,
        min_grant_seconds=args.min_grant,
        tenant_quota=args.tenant_quota,
        tenant_weights=tenant_weights,
        janitor_interval=args.janitor_interval,
        requeue_pending=not args.no_requeue,
        checkpoint_dir=args.checkpoint_dir,
        backend=args.backend,
        lease_seconds=args.lease,
        fleet_hosts=tuple(args.fleet_host or ()),
        telemetry_interval=args.telemetry_interval,
        slo_p99_seconds=args.slo_p99,
        slo_reject_rate=args.slo_reject_rate,
        slo_lease_deaths_per_minute=args.slo_lease_deaths,
        span_log=args.span_log,
    )
    return MappingDaemon(config).run()


def cmd_worker(args) -> int:
    """Run one fleet worker against a shared cache directory."""
    from repro.distributed import FleetWorker

    worker = FleetWorker(
        args.directory,
        worker_id=args.id,
        poll=args.poll,
        idle_exit=args.idle_exit,
        host_label=args.host_label,
        once=args.once,
    )
    print(f"worker {worker.worker_id} stealing from "
          f"{worker.board.root} (ctrl-C to stop)")
    published = worker.run()
    print(f"worker {worker.worker_id} exiting; published {published} "
          "receipt(s)")
    return 0


def _serve_client(args):
    from repro.serve import ServeClient, discover_url

    url = discover_url(args.url,
                       args.cache_dir or os.environ.get("REPRO_CACHE_DIR"))
    return ServeClient(url, timeout=args.http_timeout,
                       retries=args.retries)


def _print_job_doc(doc: dict) -> None:
    admission = doc.get("admission") or {}
    line = (f"job {doc.get('id', '?')[:12]}… state={doc.get('state')} "
            f"tenant={doc.get('tenant')}")
    if admission.get("action") and admission["action"] != "admit":
        line += (f" admission={admission['action']} "
                 f"granted={admission.get('granted_seconds')}s")
    if doc.get("from_cache"):
        line += " from_cache=True"
    if doc.get("wall_seconds") is not None:
        line += f" wall={doc['wall_seconds']:.3f}s"
    if doc.get("mcl") is not None:
        line += f" mcl={doc['mcl']:.6g}"
    if doc.get("error"):
        line += f" error={doc['error']}"
    print(line)


def cmd_submit(args) -> int:
    """Submit one mapping job to a running daemon (idempotent)."""
    topology = parse_topology(args.topology, mesh=args.mesh)
    job = MappingJob(
        topology=TopologySpec.from_topology(topology),
        workload=WorkloadSpec(args.workload, seed=args.seed),
        mapper=mapper_config_from_spec(args.mapper, args),
        router=args.router,
    )
    client = _serve_client(args)
    code, doc = client.submit(job.payload(), tenant=args.tenant,
                              deadline_seconds=args.deadline)
    if code not in (200, 202):
        raise ReproError(f"submit refused ({code}): "
                         f"{doc.get('error', doc)}")
    print(f"submitted as {doc['id']}")
    _print_job_doc(doc)
    if not args.wait:
        return 0
    doc = client.wait(doc["id"], timeout=args.wait_timeout, poll=args.poll)
    _print_job_doc(doc)
    return 0 if doc.get("state") == "done" else 2


def cmd_status(args) -> int:
    import json

    code, doc = _serve_client(args).status(args.job_id)
    if code != 200:
        raise ReproError(f"status failed ({code}): {doc.get('error', doc)}")
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        _print_job_doc(doc)
    return 0


def cmd_result(args) -> int:
    import json

    code, doc = _serve_client(args).result(args.job_id)
    if code != 200:
        raise ReproError(f"result unavailable ({code}): "
                         f"{doc.get('error', doc)}")
    if args.out:
        Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"result written to {args.out}")
    else:
        report = doc.get("report", {})
        print(f"mapper:   {doc.get('mapper_name')}")
        print(f"mcl:      {report.get('mcl')}")
        print(f"hop_bytes: {report.get('hop_bytes')}")
        print(f"map_seconds: {doc.get('map_seconds')}")
    return 0


def cmd_cancel(args) -> int:
    code, doc = _serve_client(args).cancel(args.job_id)
    if code != 200:
        raise ReproError(f"cancel refused ({code}): "
                         f"{doc.get('error', doc)}")
    _print_job_doc(doc)
    return 0


def cmd_top(args) -> int:
    """Live terminal dashboard over a running daemon."""
    from repro.serve.top import run_top

    client = _serve_client(args)
    iterations = 1 if args.once else args.iterations
    try:
        return run_top(client, interval=args.interval,
                       iterations=iterations,
                       clear=not (args.once or args.no_clear))
    except KeyboardInterrupt:
        return 0


def cmd_experiment(args) -> int:
    from repro.experiments import (
        fig1, fig234, fig7, fig8, fig9, fig10, opt_time, scaling,
        table1, table2,
    )

    engine_kwargs = _engine_kwargs(args)
    modules = {
        "fig1": lambda: fig1.run(),
        "fig234": lambda: fig234.run(),
        "fig7": lambda: fig7.run(),
        "table1": lambda: table1.run(args.scale),
        "table2": lambda: table2.run(),
        "fig8": lambda: fig8.run(args.scale, **engine_kwargs),
        "fig9": lambda: fig9.run(args.scale, **engine_kwargs),
        "fig10": lambda: fig10.run(args.scale, **engine_kwargs),
        "opt_time": lambda: opt_time.run(args.scale),
        "scaling": lambda: scaling.run(),
    }
    if args.name not in modules:
        raise ConfigError(
            f"unknown experiment {args.name!r}; choose from {sorted(modules)}"
        )
    print(modules[args.name]().to_text())
    return 0


# -- parser --------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAHTM (SC'14) reproduction: routing-aware task mapping",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="enable console logging")
    sub = parser.add_subparsers(dest="command", required=True)

    def engine_opts(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial in-process)")
        p.add_argument("--cache-dir",
                       help="content-addressed result cache directory "
                            "(default: $REPRO_CACHE_DIR if set)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache entirely")
        p.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
        p.add_argument("--deadline", type=float, default=None,
                       help="wall-clock budget per mapping in seconds; "
                            "RAHTM degrades gracefully to always finish")
        p.add_argument("--on-deadline", choices=("degrade", "fail"),
                       default="degrade",
                       help="exhausted deadline: fall down the "
                            "degradation ladder (default) or fail the job")
        p.add_argument("--resume", action="store_true",
                       help="resume from phase-level checkpoints of a "
                            "previously killed run")
        p.add_argument("--checkpoint-dir",
                       help="phase-checkpoint directory (default: "
                            "$REPRO_CHECKPOINT_DIR, else "
                            "<cache-dir>/checkpoints)")
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="record a pipeline trace; a .jsonl target "
                            "also gets a sibling .chrome.json for "
                            "chrome://tracing, other targets are written "
                            "in Chrome trace-event format")
        p.add_argument("--metrics", action="store_true",
                       help="print the process metrics registry after "
                            "the command")

    def common(p):
        p.add_argument("--topology", required=True,
                       help="torus shape, e.g. 4x4x4")
        p.add_argument("--mesh", action="store_true",
                       help="mesh instead of torus")
        p.add_argument("--workload", required=True,
                       help="workload spec or graph file")
        p.add_argument("--router", choices=("mar", "dor"), default="mar")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--beam-width", type=int, default=16)
        p.add_argument("--max-orientations", type=int, default=24)
        p.add_argument("--milp-time-limit", type=float, default=60.0)
        p.add_argument("--milp-gap", type=float, default=0.02)
        p.add_argument("--reposition", action="store_true")
        p.add_argument("--refine", type=int, default=0,
                       help="post-merge refinement proposals")
        p.add_argument("--anneal-iters", type=int, default=5000)
        engine_opts(p)

    p = sub.add_parser("workload", help="generate and save a workload")
    p.add_argument("--spec", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_workload)

    def explain_opts(p):
        p.add_argument("--top-k", type=int, default=5,
                       help="hottest links to report")
        p.add_argument("--flows-per-link", type=int, default=5,
                       help="top contributing flows per hotspot")
        p.add_argument("--saturation", action="store_true",
                       help="cross-check hotspots against the fluid "
                            "model's max-min fair link utilization")

    p = sub.add_parser("map", help="compute a mapping")
    common(p)
    p.add_argument("--mapper", default="rahtm")
    p.add_argument("--out", help="save mapping (.npz)")
    p.add_argument("--explain", metavar="FILE", default=None,
                   help="write the mapping's netview artifact (JSON)")
    explain_opts(p)
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("evaluate", help="evaluate a saved mapping")
    common(p)
    p.add_argument("--mapping", required=True)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", help="compare several mappers")
    common(p)
    p.add_argument("--mappers", default="default,hilbert,rubik,rahtm")
    p.add_argument("--explain", metavar="FILE", default=None,
                   help="write per-mapper netviews + diffs vs the first "
                        "mapper (JSON)")
    explain_opts(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "explain",
        help="explain a mapping's MCL: hotspots, per-flow attribution",
    )
    common(p)
    p.add_argument("--mapper", default="rahtm",
                   help="mapper to run (ignored with --mapping)")
    p.add_argument("--mapping", default=None,
                   help="explain a saved mapping (.npz) instead of mapping")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the netview artifact (JSON)")
    p.add_argument("--link-bandwidth", type=float, default=1.8e9,
                   help="bytes/s per link for the saturation cross-check")
    p.add_argument("--heatmap-dims", type=int, nargs=2, default=(0, 1),
                   metavar=("D0", "D1"),
                   help="topology dims spanning the text heatmap")
    explain_opts(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "doctor",
        help="fsck a cache/checkpoint directory (checksums, orphaned "
             "temp files, stale locks, quarantine, fleet job board)",
    )
    p.add_argument("directory",
                   help="cache or checkpoint directory to diagnose")
    p.add_argument("--repair", action="store_true",
                   help="fix what can be fixed: quarantine corrupt "
                        "artifacts, evict stale schemas, remove orphaned "
                        "temp files and stale locks")
    p.add_argument("--requeue", action="store_true",
                   help="consume a drained-batch pending.json: print its "
                        "job specs (and carry them in --out) and clear "
                        "the file")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the full JSON doctor report")
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "serve",
        help="run the persistent mapping daemon (HTTP JSON API over "
             "a cache directory)",
    )
    p.add_argument("--cache-dir",
                   help="result store the daemon serves from "
                        "(default: $REPRO_CACHE_DIR)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = pick a free port; the choice "
                        "lands in <cache>/serve.json)")
    p.add_argument("--jobs", type=int, default=1,
                   help="engine worker processes (1 = serial in-process)")
    p.add_argument("--batch-size", type=int, default=4,
                   help="max jobs per engine batch")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-attempt wall-clock budget in seconds")
    p.add_argument("--capacity", type=float, default=None,
                   help="admission capacity in deadline-seconds "
                        "(default: unlimited — no admission control)")
    p.add_argument("--default-cost", type=float, default=10.0,
                   help="deadline-seconds reserved for jobs that declare "
                        "no deadline")
    p.add_argument("--min-grant", type=float, default=0.5,
                   help="smallest degraded deadline worth granting before "
                        "rejecting outright")
    p.add_argument("--tenant-quota", type=int, default=64,
                   help="max queued jobs per tenant")
    p.add_argument("--tenant-weight", action="append", metavar="NAME=W",
                   help="fair-share weight for a tenant (repeatable)")
    p.add_argument("--janitor-interval", type=float, default=300.0,
                   help="seconds between doctor repair sweeps "
                        "(0 disables the janitor)")
    p.add_argument("--no-requeue", action="store_true",
                   help="do not auto-requeue a drained pending.json on "
                        "startup")
    p.add_argument("--checkpoint-dir", default=None,
                   help="phase-checkpoint store for resumable mappers")
    p.add_argument("--backend", choices=("local", "distributed"),
                   default="local",
                   help="execution backend: in-process pool (local) or "
                        "the lease-based worker fleet sharing the cache "
                        "directory's job board (distributed)")
    p.add_argument("--lease", type=float, default=15.0,
                   help="distributed-backend claim lease in seconds; a "
                        "worker whose heartbeat goes quiet this long "
                        "loses its job to the reaper")
    p.add_argument("--fleet-host", action="append", metavar="SPEC",
                   help="dispatch distributed-backend workers to a host "
                        "instead of spawning locally: [kind:]name[*slots] "
                        "with kind local|ssh|slurm (repeatable; e.g. "
                        "ssh:node7*4, slurm:batch*8, local*2)")
    p.add_argument("--telemetry-interval", type=float, default=5.0,
                   help="seconds between telemetry samples (ring buffer "
                        "+ <cache>/telemetry/metrics.jsonl; 0 disables "
                        "live telemetry and SLO evaluation)")
    p.add_argument("--slo-p99", type=float, default=None,
                   help="per-tenant p99 end-to-end latency SLO in "
                        "seconds; breaches fire an alert in /healthz")
    p.add_argument("--slo-reject-rate", type=float, default=None,
                   help="per-tenant reject-rate SLO as a fraction "
                        "(e.g. 0.05 alerts past 5%% rejected)")
    p.add_argument("--slo-lease-deaths", type=float, default=None,
                   help="fleet-wide lease deaths per minute before the "
                        "lease-death alert fires (distributed backend)")
    p.add_argument("--span-log", action="store_true",
                   help="stream the daemon's spans to "
                        "<cache>/telemetry/spans.jsonl with bounded "
                        "in-memory retention")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a fleet worker stealing jobs from a shared cache "
             "directory's board (see `repro serve --backend distributed`)",
    )
    p.add_argument("directory",
                   help="shared cache directory holding the job board")
    p.add_argument("--poll", type=float, default=0.05,
                   help="seconds between board scans while idle")
    p.add_argument("--idle-exit", type=float, default=None,
                   help="exit after this many idle seconds "
                        "(default: run until signalled)")
    p.add_argument("--id", default=None,
                   help="worker id (default: w-<hostname>-<pid>)")
    p.add_argument("--host-label", default=None,
                   help="host label recorded on claims, receipts and "
                        "registrations (default: $REPRO_HOST_LABEL, else "
                        "this machine's hostname)")
    p.add_argument("--once", action="store_true",
                   help="process at most one job then exit (smoke tests, "
                        "cron-style draining)")
    p.set_defaults(func=cmd_worker)

    def client_opts(p):
        p.add_argument("--url", default=None,
                       help="daemon base URL (default: $REPRO_SERVE_URL, "
                            "else <cache-dir>/serve.json)")
        p.add_argument("--cache-dir",
                       help="cache directory of the target daemon, for "
                            "URL discovery (default: $REPRO_CACHE_DIR)")
        p.add_argument("--http-timeout", type=float, default=30.0,
                       help="per-request HTTP timeout in seconds")
        p.add_argument("--retries", type=int, default=2,
                       help="extra attempts after a transient transport "
                            "failure or 503 (full-jitter backoff; safe "
                            "because submits are idempotent)")

    p = sub.add_parser("submit",
                       help="submit a mapping job to a running daemon")
    p.add_argument("--topology", required=True,
                   help="torus shape, e.g. 4x4x4")
    p.add_argument("--mesh", action="store_true",
                   help="mesh instead of torus")
    p.add_argument("--workload", required=True,
                   help="workload generator spec (file-backed workloads "
                        "cannot travel over the API)")
    p.add_argument("--mapper", default="rahtm")
    p.add_argument("--router", choices=("mar", "dor"), default="mar")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tenant", default=None,
                   help="fair-share tenant to bill this job to")
    p.add_argument("--deadline", type=float, default=None,
                   help="requested deadline-seconds (admission currency)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job reaches a terminal state")
    p.add_argument("--wait-timeout", type=float, default=None,
                   help="give up polling after this many seconds")
    p.add_argument("--poll", type=float, default=0.2,
                   help="poll interval while waiting")
    client_opts(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="show a submitted job's status")
    p.add_argument("job_id", help="job id (= the spec's cache key)")
    p.add_argument("--json", action="store_true",
                   help="print the full status document as JSON")
    client_opts(p)
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("result", help="fetch a completed job's result")
    p.add_argument("job_id", help="job id (= the spec's cache key)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the full result payload as JSON")
    client_opts(p)
    p.set_defaults(func=cmd_result)

    p = sub.add_parser("cancel", help="cancel a queued job")
    p.add_argument("job_id", help="job id (= the spec's cache key)")
    client_opts(p)
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser(
        "top",
        help="live dashboard over a running daemon (/healthz + /metrics): "
             "tenants, fleet workers, sparklines, firing SLO alerts",
    )
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after this many frames (default: until ^C)")
    p.add_argument("--once", action="store_true",
                   help="render one frame without clearing and exit "
                        "(CI/smoke friendly)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen")
    client_opts(p)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p.add_argument("name", help="fig1|fig234|fig7|fig8|fig9|fig10|"
                                "table1|table2|opt_time")
    p.add_argument("--scale", default="tiny")
    engine_opts(p)
    p.set_defaults(func=cmd_experiment)
    return parser


def _write_trace(tracer: Tracer, target: str) -> None:
    """Export ``tracer`` to ``target`` (JSONL + Chrome, or Chrome only)."""
    path = Path(target)
    if path.suffix == ".jsonl":
        tracer.write_jsonl(path)
        chrome = path.with_suffix(".chrome.json")
        tracer.write_chrome(chrome)
        print(f"trace written to {path} (chrome://tracing: {chrome})")
    else:
        tracer.write_chrome(path)
        print(f"trace written to {path} (chrome trace-event format)")


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()
    trace_target = getattr(args, "trace", None)
    tracer = Tracer(run_id=args.command) if trace_target else None
    try:
        try:
            with activate(tracer) if tracer is not None else nullcontext():
                rc = args.func(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            rc = 2
    finally:
        # Trace and metrics flush in a finally block: even a command that
        # degraded, blew its deadline, or died on an unexpected exception
        # leaves its artifacts behind — a partial trace of a failing run
        # is exactly what you debug with.
        if tracer is not None:
            _write_trace(tracer, trace_target)
        if getattr(args, "metrics", False):
            print(get_registry().report())
    return rc


if __name__ == "__main__":
    sys.exit(main())
