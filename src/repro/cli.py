"""Command-line interface.

Subcommands::

    repro workload  --spec cg:256:C --out cg.npz
    repro map       --topology 4x4x4 --workload cg:256:C --mapper rahtm \\
                    --out mapping.npz
    repro evaluate  --topology 4x4x4 --workload cg:256:C --mapping mapping.npz
    repro compare   --topology 4x4x4 --workload cg:256:C \\
                    --mappers default,hilbert,rahtm
    repro experiment fig8 --scale tiny

Workload specs: ``bt:TASKS[:CLASS]``, ``sp:...``, ``cg:...``,
``halo2d:NXxNY[:VOL]``, ``halo3d:NXxNYxNZ[:VOL]``, ``random:TASKS:EDGES``,
``butterfly:TASKS``, ``transpose:SIDE``, ``ring:TASKS``,
``bisection:TASKS``, ``fft:RxC[:VOL]``, ``wavefront:RxC``,
``stencil27:NXxNYxNZ``, ``collective:NAME:TASKS``, or a path to a
``.npz``/``.json`` graph.

Mapper specs: ``rahtm``, ``default``, ``dimorder:ORDER`` (e.g.
``dimorder:TABC``), ``hilbert``, ``rubik``, ``rcb`` (recursive
bisection), ``anneal-hopbytes``, ``anneal-mcl``, ``random``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.baselines import (
    DimOrderMapper,
    HilbertMapper,
    HopBytesMapper,
    RandomMapper,
    RubikTilingMapper,
)
from repro.commgraph import CommGraph, load_commgraph, save_commgraph
from repro.core.rahtm import RAHTMConfig, RAHTMMapper
from repro.errors import ConfigError, ReproError
from repro.mapping import Mapping
from repro.metrics import evaluate_mapping
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter
from repro.topology import CartesianTopology
from repro.utils.logconf import enable_console_logging

__all__ = ["main", "parse_topology", "parse_workload", "build_mapper"]


# -- spec parsing -------------------------------------------------------------------
def parse_topology(spec: str, mesh: bool = False) -> CartesianTopology:
    """Parse ``4x4x4`` (torus) into a topology; ``mesh=True`` drops wrap."""
    try:
        shape = tuple(int(p) for p in spec.lower().split("x"))
    except ValueError:
        raise ConfigError(f"bad topology spec {spec!r}; expected e.g. 4x4x4")
    return CartesianTopology(shape, wrap=not mesh)


def parse_workload(spec: str, seed: int = 0) -> CommGraph:
    """Parse a workload spec or load a graph file."""
    path = Path(spec)
    if path.suffix in (".npz", ".json") and path.exists():
        return load_commgraph(path)
    parts = spec.split(":")
    kind = parts[0].lower()
    from repro import workloads as wl

    try:
        if kind in ("bt", "sp", "cg"):
            tasks = int(parts[1])
            cls = parts[2].upper() if len(parts) > 2 else "C"
            return {"bt": wl.nas_bt, "sp": wl.nas_sp, "cg": wl.nas_cg}[kind](
                tasks, cls
            )
        if kind in ("halo2d", "halo3d"):
            dims = tuple(int(x) for x in parts[1].lower().split("x"))
            vol = float(parts[2]) if len(parts) > 2 else 1.0
            return wl.halo_nd(dims, volume=vol)
        if kind == "random":
            return wl.random_uniform(int(parts[1]), int(parts[2]), seed=seed)
        if kind == "butterfly":
            return wl.butterfly(int(parts[1]))
        if kind == "transpose":
            return wl.transpose2d(int(parts[1]))
        if kind == "ring":
            return wl.ring(int(parts[1]))
        if kind == "bisection":
            return wl.bisection_stress(int(parts[1]))
        if kind == "fft":
            rows, cols = (int(x) for x in parts[1].lower().split("x"))
            return wl.fft_pencils(rows, cols,
                                  float(parts[2]) if len(parts) > 2 else 1.0)
        if kind == "wavefront":
            rows, cols = (int(x) for x in parts[1].lower().split("x"))
            return wl.wavefront3d(rows, cols)
        if kind == "stencil27":
            nx, ny, nz = (int(x) for x in parts[1].lower().split("x"))
            return wl.stencil27(nx, ny, nz)
        if kind == "collective":
            return wl.collective_pattern(parts[1], int(parts[2]))
        if kind == "amr":
            return wl.amr_quadtree(int(parts[1]), seed=seed)
    except (IndexError, ValueError) as exc:
        raise ConfigError(f"bad workload spec {spec!r}: {exc}") from exc
    raise ConfigError(f"unknown workload kind {kind!r} in {spec!r}")


def build_mapper(spec: str, topology: CartesianTopology, args) -> object:
    """Instantiate a mapper from its CLI spec."""
    kind, _, arg = spec.partition(":")
    kind = kind.lower()
    if kind == "rahtm":
        cfg = RAHTMConfig(
            beam_width=args.beam_width,
            max_orientations=args.max_orientations,
            milp_time_limit=args.milp_time_limit,
            milp_rel_gap=args.milp_gap,
            reposition=args.reposition,
            refine_iterations=args.refine,
            seed=args.seed,
        )
        return RAHTMMapper(topology, cfg)
    if kind == "default":
        return DimOrderMapper(topology)
    if kind == "dimorder":
        return DimOrderMapper(topology, arg or None)
    if kind == "hilbert":
        return HilbertMapper(topology)
    if kind == "rubik":
        return RubikTilingMapper(topology)
    if kind in ("rcb", "bisection"):
        from repro.baselines import RecursiveBisectionMapper

        return RecursiveBisectionMapper(topology, seed=args.seed)
    if kind == "anneal-hopbytes":
        return HopBytesMapper(topology, "hopbytes", iterations=args.anneal_iters,
                              seed=args.seed)
    if kind == "anneal-mcl":
        return HopBytesMapper(topology, "mcl", iterations=args.anneal_iters,
                              seed=args.seed)
    if kind == "random":
        return RandomMapper(topology, seed=args.seed)
    raise ConfigError(f"unknown mapper {spec!r}")


def _router(name: str, topology: CartesianTopology):
    if name == "dor":
        return DimensionOrderRouter(topology)
    return MinimalAdaptiveRouter(topology)


from repro.mapping import load_mapping as _load_mapping
from repro.mapping import save_mapping as _save_mapping


# -- subcommands ----------------------------------------------------------------------
def cmd_workload(args) -> int:
    graph = parse_workload(args.spec, seed=args.seed)
    save_commgraph(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def cmd_map(args) -> int:
    topology = parse_topology(args.topology, mesh=args.mesh)
    graph = parse_workload(args.workload, seed=args.seed)
    mapper = build_mapper(args.mapper, topology, args)
    mapping = mapper.map(graph)
    router = _router(args.router, topology)
    report = evaluate_mapping(router, mapping, graph)
    print(f"topology: {topology.describe()}")
    print(f"workload: {graph}")
    print(f"mapper:   {getattr(mapper, 'name', args.mapper)}")
    print(f"quality:  {report}")
    if args.out:
        _save_mapping(Path(args.out), mapping)
        print(f"mapping saved to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    topology = parse_topology(args.topology, mesh=args.mesh)
    graph = parse_workload(args.workload, seed=args.seed)
    mapping = _load_mapping(Path(args.mapping), topology)
    router = _router(args.router, topology)
    print(evaluate_mapping(router, mapping, graph))
    return 0


def cmd_compare(args) -> int:
    topology = parse_topology(args.topology, mesh=args.mesh)
    graph = parse_workload(args.workload, seed=args.seed)
    router = _router(args.router, topology)
    from repro.experiments.report import Table

    table = Table(f"mapper comparison on {args.workload} @ {args.topology}")
    for spec in args.mappers.split(","):
        mapper = build_mapper(spec.strip(), topology, args)
        mapping = mapper.map(graph)
        report = evaluate_mapping(router, mapping, graph)
        label = getattr(mapper, "name", spec)
        table.set(label, "MCL", report.mcl)
        table.set(label, "hop_bytes", report.hop_bytes)
        table.set(label, "imbalance", report.load_imbalance)
    print(table.to_text())
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import (
        fig1, fig234, fig7, fig8, fig9, fig10, opt_time, scaling,
        table1, table2,
    )

    modules = {
        "fig1": lambda: fig1.run(),
        "fig234": lambda: fig234.run(),
        "fig7": lambda: fig7.run(),
        "table1": lambda: table1.run(args.scale),
        "table2": lambda: table2.run(),
        "fig8": lambda: fig8.run(args.scale),
        "fig9": lambda: fig9.run(args.scale),
        "fig10": lambda: fig10.run(args.scale),
        "opt_time": lambda: opt_time.run(args.scale),
        "scaling": lambda: scaling.run(),
    }
    if args.name not in modules:
        raise ConfigError(
            f"unknown experiment {args.name!r}; choose from {sorted(modules)}"
        )
    print(modules[args.name]().to_text())
    return 0


# -- parser --------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAHTM (SC'14) reproduction: routing-aware task mapping",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="enable console logging")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--topology", required=True,
                       help="torus shape, e.g. 4x4x4")
        p.add_argument("--mesh", action="store_true",
                       help="mesh instead of torus")
        p.add_argument("--workload", required=True,
                       help="workload spec or graph file")
        p.add_argument("--router", choices=("mar", "dor"), default="mar")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--beam-width", type=int, default=16)
        p.add_argument("--max-orientations", type=int, default=24)
        p.add_argument("--milp-time-limit", type=float, default=60.0)
        p.add_argument("--milp-gap", type=float, default=0.02)
        p.add_argument("--reposition", action="store_true")
        p.add_argument("--refine", type=int, default=0,
                       help="post-merge refinement proposals")
        p.add_argument("--anneal-iters", type=int, default=5000)

    p = sub.add_parser("workload", help="generate and save a workload")
    p.add_argument("--spec", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_workload)

    p = sub.add_parser("map", help="compute a mapping")
    common(p)
    p.add_argument("--mapper", default="rahtm")
    p.add_argument("--out", help="save mapping (.npz)")
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("evaluate", help="evaluate a saved mapping")
    common(p)
    p.add_argument("--mapping", required=True)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", help="compare several mappers")
    common(p)
    p.add_argument("--mappers", default="default,hilbert,rubik,rahtm")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p.add_argument("name", help="fig1|fig234|fig7|fig8|fig9|fig10|"
                                "table1|table2|opt_time")
    p.add_argument("--scale", default="tiny")
    p.set_defaults(func=cmd_experiment)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
