"""Mixed-radix Cartesian network topologies (k-ary n-torus / n-mesh).

Nodes are numbered in C (row-major) order over the shape. Directed network
channels get *dense slot ids*::

    slot(u, dim, dir) = (u * ndim + dim) * 2 + dir      # dir: 0 -> +, 1 -> -

Every node reserves ``2 * ndim`` slots even when a channel does not
physically exist (mesh boundary, arity-1 dimension); :attr:`channel_valid`
masks the real channels. This wastes a constant factor of memory but makes
channel-id arithmetic branch-free in the routing hot loops, which dominate
RAHTM's merge phase.

A 2-ary *torus* dimension naturally yields **two parallel channels** between
the node pair (the regular and the wraparound link). This is exactly the
paper's "2-ary n-torus == 2-ary n-mesh with double-wide links" equivalence
(Section III-C); no special-casing is needed anywhere else.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TopologyError
from repro.utils.validation import check_shape_tuple

__all__ = ["CartesianTopology", "torus", "mesh", "hypercube"]

DIR_PLUS = 0
DIR_MINUS = 1


class CartesianTopology:
    """A mixed-radix torus/mesh.

    Parameters
    ----------
    shape:
        Nodes per dimension, e.g. ``(4, 4, 4, 4, 2)`` for the paper's BG/Q
        partition.
    wrap:
        Either a single bool (applied to every dimension) or one bool per
        dimension. ``True`` adds wraparound (torus) links for dimensions of
        arity >= 2.
    """

    def __init__(self, shape: Sequence[int], wrap: "bool | Sequence[bool]" = True):
        self.shape: tuple[int, ...] = check_shape_tuple(shape)
        self.ndim = len(self.shape)
        if isinstance(wrap, (bool, np.bool_)):
            wrap = (bool(wrap),) * self.ndim
        else:
            wrap = tuple(bool(w) for w in wrap)
            if len(wrap) != self.ndim:
                raise TopologyError(
                    f"wrap has {len(wrap)} entries for {self.ndim} dimensions"
                )
        self.wrap: tuple[bool, ...] = wrap
        self.num_nodes = int(np.prod(self.shape))
        # C-order strides in units of nodes.
        strides = np.ones(self.ndim, dtype=np.int64)
        for d in range(self.ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        self._strides = strides
        self._shape_arr = np.asarray(self.shape, dtype=np.int64)
        # Precompute all node coordinates, (V, ndim).
        idx = np.arange(self.num_nodes, dtype=np.int64)
        self._coords = (idx[:, None] // strides[None, :]) % self._shape_arr[None, :]
        self._build_channels()

    # -- coordinates -----------------------------------------------------------
    def coords(self, node) -> np.ndarray:
        """Coordinates of node id(s); vectorized over arrays."""
        node = np.asarray(node, dtype=np.int64)
        if np.any(node < 0) or np.any(node >= self.num_nodes):
            raise TopologyError(f"node id out of range [0, {self.num_nodes})")
        return self._coords[node]

    def index(self, coords) -> np.ndarray:
        """Node id(s) from coordinates; accepts (..., ndim) arrays."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.shape[-1] != self.ndim:
            raise TopologyError(
                f"coords last axis must be {self.ndim}, got {coords.shape}"
            )
        if np.any(coords < 0) or np.any(coords >= self._shape_arr):
            raise TopologyError("coordinates out of range")
        return coords @ self._strides

    @property
    def coords_array(self) -> np.ndarray:
        """(V, ndim) read-only coordinate table."""
        view = self._coords.view()
        view.setflags(write=False)
        return view

    @property
    def strides(self) -> np.ndarray:
        view = self._strides.view()
        view.setflags(write=False)
        return view

    # -- channels ---------------------------------------------------------------
    def _build_channels(self) -> None:
        V, n = self.num_nodes, self.ndim
        self.num_channel_slots = V * n * 2
        valid = np.zeros(self.num_channel_slots, dtype=bool)
        dst = np.full(self.num_channel_slots, -1, dtype=np.int64)
        coords = self._coords
        for d in range(n):
            k = self.shape[d]
            if k < 2:
                continue  # arity-1 dimension has no channels
            x = coords[:, d]
            base = (np.arange(V, dtype=np.int64) * n + d) * 2
            # plus direction
            plus_ok = (x < k - 1) | self.wrap[d]
            nbr_plus = np.arange(V, dtype=np.int64) + np.where(
                x < k - 1, self._strides[d], -(k - 1) * self._strides[d]
            )
            valid[base[plus_ok] + DIR_PLUS] = True
            dst[base[plus_ok] + DIR_PLUS] = nbr_plus[plus_ok]
            # minus direction
            minus_ok = (x > 0) | self.wrap[d]
            nbr_minus = np.arange(V, dtype=np.int64) - np.where(
                x > 0, self._strides[d], -(k - 1) * self._strides[d]
            )
            valid[base[minus_ok] + DIR_MINUS] = True
            dst[base[minus_ok] + DIR_MINUS] = nbr_minus[minus_ok]
        self.channel_valid = valid
        self.channel_dst = dst
        slots = np.arange(self.num_channel_slots, dtype=np.int64)
        self.channel_src = slots // (2 * n)
        self.channel_dim = (slots // 2) % n
        self.channel_dir = slots % 2
        self.num_channels = int(valid.sum())

    def channel_slot(self, node, dim: int, direction: int):
        """Dense slot id for the channel leaving ``node`` along ``dim``.

        ``direction`` is 0 for + and 1 for -. Works on scalars and arrays.
        Slots for nonexistent channels are returned too (they are simply
        invalid); check :attr:`channel_valid` when it matters.
        """
        node = np.asarray(node, dtype=np.int64)
        return (node * self.ndim + dim) * 2 + direction

    def neighbors(self, node: int) -> list[int]:
        """Distinct neighbor node ids of ``node`` (sorted)."""
        base = (int(node) * self.ndim) * 2
        out = self.channel_dst[base: base + 2 * self.ndim]
        ok = self.channel_valid[base: base + 2 * self.ndim]
        return sorted(set(int(v) for v in out[ok]))

    # -- distances ----------------------------------------------------------------
    def delta(self, src, dst) -> np.ndarray:
        """Signed per-dimension offset from src to dst.

        For wrapped dimensions the offset is reduced to the minimal
        representative in ``[-k//2, k//2]``; a tie at ``k/2`` (even arity)
        is reported as ``+k/2`` and treated as bidirectional by routers.
        For mesh dimensions the plain difference is returned.
        """
        cs = self.coords(src)
        cd = self.coords(dst)
        diff = cd - cs
        out = diff.copy()
        for d in range(self.ndim):
            if not self.wrap[d]:
                continue
            k = self.shape[d]
            m = np.mod(diff[..., d], k)
            # reduce to (-k/2, k/2]
            red = np.where(m > k // 2, m - k, m)
            red = np.where((k % 2 == 0) & (m == k // 2), k // 2, red)
            out[..., d] = red
        return out

    def hop_distance(self, src, dst) -> np.ndarray:
        """Minimal hop count between node(s)."""
        return np.abs(self.delta(src, dst)).sum(axis=-1)

    def add_offset(self, node, offset) -> np.ndarray:
        """Node id(s) at ``coords(node) + offset`` with wraparound.

        Offsets that leave a mesh dimension raise :class:`TopologyError`.
        """
        c = self.coords(node) + np.asarray(offset, dtype=np.int64)
        for d in range(self.ndim):
            if self.wrap[d]:
                c[..., d] %= self.shape[d]
            elif np.any((c[..., d] < 0) | (c[..., d] >= self.shape[d])):
                raise TopologyError(f"offset leaves mesh dimension {d}")
        return c @ self._strides

    # -- properties ------------------------------------------------------------------
    @property
    def is_uniform(self) -> bool:
        """True when every dimension of arity > 1 has the same arity."""
        arities = [k for k in self.shape if k > 1]
        return len(set(arities)) <= 1

    @property
    def arity(self) -> int:
        """Common arity of non-trivial dimensions (requires uniformity)."""
        if not self.is_uniform:
            raise TopologyError(f"topology {self.shape} is not uniform")
        arities = [k for k in self.shape if k > 1]
        return arities[0] if arities else 1

    @property
    def bisection_channels(self) -> int:
        """Number of directed channels crossing a bisection of dimension 0."""
        if self.shape[0] < 2:
            return 0
        per_cut = self.num_nodes // self.shape[0]
        cuts = 2 if self.wrap[0] and self.shape[0] > 2 else 1
        if self.wrap[0] and self.shape[0] == 2:
            cuts = 2  # the double links count twice
        return 2 * per_cut * cuts

    def describe(self) -> str:
        kind = "torus" if all(self.wrap) else ("mesh" if not any(self.wrap) else "hybrid")
        dims = "x".join(str(k) for k in self.shape)
        return f"{dims} {kind} ({self.num_nodes} nodes, {self.num_channels} channels)"

    def __repr__(self) -> str:
        return f"CartesianTopology(shape={self.shape}, wrap={self.wrap})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CartesianTopology)
            and self.shape == other.shape
            and self.wrap == other.wrap
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.wrap))


def torus(*shape) -> CartesianTopology:
    """Build a torus; ``torus(4, 4, 4)`` or ``torus((4, 4, 4))``."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return CartesianTopology(shape, wrap=True)


def mesh(*shape) -> CartesianTopology:
    """Build a mesh; ``mesh(4, 4)`` or ``mesh((4, 4))``."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return CartesianTopology(shape, wrap=False)


def hypercube(n: int, wrap: bool = False) -> CartesianTopology:
    """A 2-ary n-cube.

    With ``wrap=False`` (default) this is the mesh form used for interior
    sub-problems; ``wrap=True`` yields the double-wide-link torus form used
    for the root of the hierarchy (paper Section III-C).
    """
    if n < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {n}")
    return CartesianTopology((2,) * n, wrap=wrap)
