"""Blue Gene/Q platform model.

The paper evaluates on a 512-node Mira partition: a 5-D torus of shape
A x B x C x D x E = 4 x 4 x 4 x 4 x 2 with 16 cores per node, and a
concentration factor of 32 tasks per node (two tasks per core; the
benchmarks have "significant exposed communication", Section IV).

Mapping of tasks to cores within a node is the extra ``T`` dimension of
the BG/Q mapping convention; it exists only in rank naming and mapfiles,
not in the network. :class:`BGQTopology` bundles the torus, the dimension
names, and the mapfile conventions used by the baseline mappers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.topology.cartesian import CartesianTopology

__all__ = ["BGQTopology", "DIMENSION_NAMES"]

DIMENSION_NAMES = "ABCDE"


class BGQTopology:
    """A BG/Q partition: 5-D torus plus on-node T dimension.

    Parameters
    ----------
    shape:
        Network dimensions (A, B, C, D, E). Default is the paper's
        512-node partition ``(4, 4, 4, 4, 2)``.
    cores_per_node:
        Hardware cores per node (16 on BG/Q).
    tasks_per_node:
        Concentration factor; the paper uses 32 (2 tasks per core).
    """

    def __init__(
        self,
        shape: tuple[int, ...] = (4, 4, 4, 4, 2),
        cores_per_node: int = 16,
        tasks_per_node: int | None = None,
    ):
        if len(shape) != 5:
            raise TopologyError(f"BG/Q shape must have 5 dimensions, got {shape}")
        self.network = CartesianTopology(shape, wrap=True)
        self.cores_per_node = int(cores_per_node)
        self.tasks_per_node = int(
            tasks_per_node if tasks_per_node is not None else cores_per_node
        )
        if self.tasks_per_node < 1:
            raise TopologyError("tasks_per_node must be >= 1")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.network.shape

    @property
    def num_nodes(self) -> int:
        return self.network.num_nodes

    @property
    def num_tasks(self) -> int:
        """Total task slots = nodes x concentration."""
        return self.num_nodes * self.tasks_per_node

    # -- dimension-order rank enumeration ------------------------------------------
    def dim_order_permutation(self, order: str = "ABCDET") -> np.ndarray:
        """Task id for each rank under a BG/Q dimension-order mapping.

        ``order`` is a permutation of ``"ABCDET"``; ranks are assigned by
        iterating the *last* letter fastest (BG/Q convention: ABCDET varies
        T fastest). Returns an array ``task_slot[rank]`` where a task slot
        is ``node * tasks_per_node + t``.
        """
        order = order.upper()
        if sorted(order) != sorted(DIMENSION_NAMES + "T"):
            raise TopologyError(
                f"order must be a permutation of 'ABCDET', got {order!r}"
            )
        sizes = {name: k for name, k in zip(DIMENSION_NAMES, self.shape)}
        sizes["T"] = self.tasks_per_node
        dims = [sizes[ch] for ch in order]
        total = int(np.prod(dims))
        ranks = np.arange(total, dtype=np.int64)
        # Decode rank -> coordinate per letter of `order` (last varies fastest).
        coords: dict[str, np.ndarray] = {}
        rem = ranks.copy()
        for pos in range(len(order) - 1, -1, -1):
            coords[order[pos]] = rem % dims[pos]
            rem //= dims[pos]
        node_coords = np.stack(
            [coords[ch] for ch in DIMENSION_NAMES], axis=-1
        )
        nodes = self.network.index(node_coords)
        return nodes * self.tasks_per_node + coords["T"]

    def __repr__(self) -> str:
        dims = "x".join(str(k) for k in self.shape)
        return (
            f"BGQTopology({dims}, cores={self.cores_per_node}, "
            f"tasks_per_node={self.tasks_per_node})"
        )
