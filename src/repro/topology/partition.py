"""Partitioning a non-uniform torus into uniform blocks.

RAHTM's hierarchy wants all dimensions to share the same power-of-two
arity. Real machines violate this — the paper's BG/Q partition is
4x4x4x4x2, with the E dimension of arity 2. The paper's fix (Section
III-B): split the topology into sub-partitions within which the property
holds, run RAHTM inside each, and let the merge phase (phase 3) stitch the
partitions back together.

:func:`uniform_partitions` implements the split. It chooses the largest
power-of-two arity ``a >= 2`` that divides the most dimensions, assigns the
remaining dimensions block-arity 1, and enumerates the resulting blocks in
C order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.cartesian import CartesianTopology

__all__ = ["TopologyBlock", "uniform_partitions", "best_uniform_arity"]


@dataclass(frozen=True)
class TopologyBlock:
    """A rectangular sub-block of a parent topology.

    Attributes
    ----------
    origin:
        Coordinates of the block's lowest corner in the parent.
    shape:
        Block extent per dimension.
    """

    origin: tuple[int, ...]
    shape: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return int(np.prod(self.shape))

    def node_ids(self, parent: CartesianTopology) -> np.ndarray:
        """Parent node ids inside this block, in block-C-order."""
        grids = np.meshgrid(
            *[np.arange(o, o + s) for o, s in zip(self.origin, self.shape)],
            indexing="ij",
        )
        coords = np.stack([g.ravel() for g in grids], axis=-1)
        return parent.index(coords)

    def local_topology(self, parent: CartesianTopology) -> CartesianTopology:
        """The block viewed as a standalone topology.

        Interior blocks are meshes (their wraparound links, if any, belong
        to the parent torus and cross block boundaries); a block spanning a
        full wrapped parent dimension keeps the wrap in that dimension.
        """
        wrap = tuple(
            parent.wrap[d] and self.shape[d] == parent.shape[d]
            for d in range(len(self.shape))
        )
        return CartesianTopology(self.shape, wrap=wrap)


def _is_pow2(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


def best_uniform_arity(shape: tuple[int, ...]) -> int:
    """Power-of-two arity ``a >= 2`` maximizing uniform-block volume.

    A candidate arity covers the dimensions it divides; the winner
    maximizes ``a ** coverage`` (the nodes per block), i.e. it keeps as
    much of the topology as possible inside each hierarchical subproblem.
    For the paper's 4x4x4x4x2 BG/Q partition this selects ``a = 4``
    (256-node blocks, two of them split along E). Raises if no dimension
    is divisible by 2.
    """
    candidates = []
    max_a = max(shape)
    a = 2
    while a <= max_a:
        coverage = sum(1 for k in shape if k % a == 0)
        if coverage:
            candidates.append((a**coverage, a))
        a *= 2
    if not candidates:
        raise TopologyError(
            f"shape {shape} has no dimension divisible by 2; cannot build a "
            "2-ary hierarchy"
        )
    _, a = max(candidates)
    return a


def uniform_partitions(
    topology: CartesianTopology, arity: int | None = None
) -> list[TopologyBlock]:
    """Split ``topology`` into uniform power-of-two-arity blocks.

    Parameters
    ----------
    topology:
        The full (possibly non-uniform) torus/mesh.
    arity:
        Block arity override; must be a power of two. When omitted,
        :func:`best_uniform_arity` picks it.

    Returns
    -------
    list of :class:`TopologyBlock` in C order of their block grid. For the
    paper's 4x4x4x4x2 BG/Q partition this returns two 4x4x4x4x1 blocks.
    """
    shape = topology.shape
    if arity is None:
        arity = best_uniform_arity(shape)
    if not _is_pow2(arity) or arity < 2:
        raise TopologyError(f"block arity must be a power of two >= 2, got {arity}")
    block_shape = tuple(arity if k % arity == 0 else 1 for k in shape)
    counts = tuple(k // b for k, b in zip(shape, block_shape))
    blocks = []
    for flat in range(int(np.prod(counts))):
        rem = flat
        origin = []
        for d in range(len(shape)):
            stride = int(np.prod(counts[d + 1:])) if d + 1 < len(shape) else 1
            origin.append((rem // stride) * block_shape[d])
            rem %= stride
        blocks.append(TopologyBlock(tuple(origin), block_shape))
    return blocks
