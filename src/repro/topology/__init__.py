"""Network topology substrate: mixed-radix tori/meshes, BG/Q, hierarchy.

The paper evaluates on Blue Gene/Q's 5-D torus (a 4x4x4x4x2 partition with
16 cores per node). This package provides:

- :class:`CartesianTopology` — a k-ary n-torus / n-mesh with per-dimension
  wraparound and a dense directed-channel numbering scheme shared by the
  routing and metrics layers.
- :func:`torus` / :func:`mesh` / :func:`hypercube` — convenience builders.
- :class:`BGQTopology` — the Blue Gene/Q network (ABCDE dimensions plus the
  on-node T dimension used only for task naming/mapfiles).
- :func:`uniform_partitions` — the paper's trick of splitting a non-uniform
  torus (e.g. the arity-2 E dimension) into uniform sub-blocks that the
  hierarchical mapper can digest (Section III-B).
- :class:`CubeHierarchy` — the 2-ary recursive decomposition of a
  ``2^q``-ary n-torus into nested 2-ary n-cubes (Section III-B/C).
"""

from repro.topology.cartesian import CartesianTopology, torus, mesh, hypercube
from repro.topology.bgq import BGQTopology
from repro.topology.partition import TopologyBlock, uniform_partitions
from repro.topology.hierarchy import CubeHierarchy

__all__ = [
    "CartesianTopology",
    "torus",
    "mesh",
    "hypercube",
    "BGQTopology",
    "TopologyBlock",
    "uniform_partitions",
    "CubeHierarchy",
]
