"""2-ary hierarchical decomposition of a ``2^q``-ary n-torus.

RAHTM (Section III-B/C) views a uniform k-ary n-torus with ``k = 2^q`` as a
tree of nested blocks:

- level 0 blocks are individual nodes (side 1),
- a level ``l`` block is a cube of side ``2^l``,
- every level ``l+1`` block contains exactly ``2^n`` level-``l`` children
  arranged as a 2-ary n-cube,
- the single level-``q`` block is the whole torus.

Phase 2 maps cluster graphs onto each parent's child cube (a 2-ary n-mesh,
or the double-wide-link 2-ary n-torus at the root); phase 3 merges children
bottom-up. This module provides the index bookkeeping both phases share.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.topology.cartesian import CartesianTopology, hypercube

__all__ = ["CubeHierarchy"]


class CubeHierarchy:
    """Index bookkeeping for the 2-ary decomposition of a uniform torus.

    Parameters
    ----------
    topology:
        A uniform k-ary n-torus/mesh with ``k = 2^q`` (dimensions of arity 1
        are ignored — they carry no freedom and no channels).
    """

    def __init__(self, topology: CartesianTopology):
        self.topology = topology
        self.dims = tuple(
            d for d in range(topology.ndim) if topology.shape[d] > 1
        )
        if not self.dims:
            raise TopologyError("topology has no non-trivial dimension")
        arities = {topology.shape[d] for d in self.dims}
        if len(arities) != 1:
            raise TopologyError(
                f"topology {topology.shape} is not uniform across its "
                "non-trivial dimensions; partition it first "
                "(repro.topology.uniform_partitions)"
            )
        self.arity = arities.pop()
        q = int(round(np.log2(self.arity)))
        if 2**q != self.arity:
            raise TopologyError(
                f"arity {self.arity} is not a power of two; RAHTM's 2-ary "
                "hierarchy requires 2^q-ary dimensions"
            )
        self.num_levels = q  # levels 0..q; q >= 1
        self.n = len(self.dims)  # cube dimensionality

    # -- block identification ----------------------------------------------------
    def block_of(self, node, level: int) -> np.ndarray:
        """Flat id of the level-``level`` block containing node id(s).

        Block ids are C-order over the block grid of side ``arity / 2^level``
        per active dimension.
        """
        self._check_level(level)
        coords = self.topology.coords(node)
        side = 2**level
        per_dim = self.arity // side
        out = np.zeros(np.shape(node), dtype=np.int64)
        for d in self.dims:
            out = out * per_dim + coords[..., d] // side
        return out

    def num_blocks(self, level: int) -> int:
        self._check_level(level)
        return (self.arity // 2**level) ** self.n

    def child_position(self, node, level: int) -> np.ndarray:
        """Which corner of its level-``level`` parent's child-cube a node's
        level ``level-1`` block occupies.

        Returns the corner id in C order over the active dimensions: corner
        ``sum(bit_d * 2^(n-1-i))`` where ``bit_d`` tells whether the node
        lies in the upper half of active dimension ``d`` within the parent.
        """
        self._check_level(level)
        if level < 1:
            raise TopologyError("child_position needs level >= 1")
        coords = self.topology.coords(node)
        side = 2**level
        out = np.zeros(np.shape(node), dtype=np.int64)
        for d in self.dims:
            bit = (coords[..., d] % side) // (side // 2)
            out = out * 2 + bit
        return out

    def child_cube(self, level: int) -> CartesianTopology:
        """The 2-ary n-cube the children of a level-``level`` block form.

        The root's children cube wraps (double-wide links) iff the
        underlying topology wraps; interior cubes are meshes.
        """
        self._check_level(level)
        if level < 1:
            raise TopologyError("child_cube needs level >= 1")
        if level == self.num_levels:
            # The root's children tile each dimension twice; wrapped parent
            # dimensions make the child cube a 2-ary torus there (the
            # double-wide-link equivalence of Section III-C).
            wrap = tuple(self.topology.wrap[d] for d in self.dims)
            return CartesianTopology((2,) * self.n, wrap=wrap)
        return hypercube(self.n, wrap=False)

    def block_nodes(self, level: int, block_id: int) -> np.ndarray:
        """Node ids inside a block, C-order over the block interior."""
        self._check_level(level)
        side = 2**level
        per_dim = self.arity // side
        # Decode the block id into per-active-dimension block coordinates.
        rem = int(block_id)
        base = np.zeros(self.topology.ndim, dtype=np.int64)
        for d in reversed(self.dims):
            base[d] = (rem % per_dim) * side
            rem //= per_dim
        if rem:
            raise TopologyError(f"block id {block_id} out of range at level {level}")
        ranges = []
        for d in range(self.topology.ndim):
            if d in self.dims:
                ranges.append(np.arange(base[d], base[d] + side))
            else:
                ranges.append(np.arange(self.topology.shape[d]))
        grids = np.meshgrid(*ranges, indexing="ij")
        coords = np.stack([g.ravel() for g in grids], axis=-1)
        return self.topology.index(coords)

    def corner_origin(self, level: int, block_id: int, corner: int) -> np.ndarray:
        """Coordinates of a child's origin inside a level-``level`` block."""
        nodes = self.block_nodes(level, block_id)
        origin = self.topology.coords(int(nodes[0]))
        half = 2 ** (level - 1)
        bits = []
        c = int(corner)
        for _ in self.dims:
            bits.append(c & 1)
            c >>= 1
        bits.reverse()
        out = origin.copy()
        for bit, d in zip(bits, self.dims):
            out[d] += bit * half
        return out

    def _check_level(self, level: int) -> None:
        if not (0 <= level <= self.num_levels):
            raise TopologyError(
                f"level {level} out of range [0, {self.num_levels}]"
            )

    def __repr__(self) -> str:
        return (
            f"CubeHierarchy(arity={self.arity}, n={self.n}, "
            f"levels={self.num_levels})"
        )
