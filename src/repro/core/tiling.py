"""Tile-shape search for phase-1 clustering (paper Figure 2).

The communication graph is clustered by tiling the application's logical
process grid with rectangular tiles of a fixed size; among all tile shapes
of that size the one with minimal *inter-tile* volume wins ("we found that
such simple tiling based clustering outperformed more sophisticated
clustering because they preserved the structure of the communication
pattern", Section III-B).
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import CommGraphError, ConfigError

__all__ = ["enumerate_tilings", "tile_labels", "inter_tile_volume", "best_tiling"]


def enumerate_tilings(grid_shape, tile_size: int) -> list[tuple[int, ...]]:
    """All tile shapes of ``tile_size`` cells that evenly tile the grid.

    A tile shape assigns each grid dimension an extent dividing both the
    tile size decomposition and the grid extent. Returned in deterministic
    (lexicographic) order.
    """
    grid_shape = tuple(int(g) for g in grid_shape)
    tile_size = int(tile_size)
    if tile_size < 1:
        raise ConfigError(f"tile_size must be >= 1, got {tile_size}")
    if int(np.prod(grid_shape)) % tile_size:
        raise ConfigError(
            f"tile size {tile_size} does not divide grid {grid_shape}"
        )
    results: list[tuple[int, ...]] = []

    def recurse(dim: int, remaining: int, partial: list[int]):
        if dim == len(grid_shape):
            if remaining == 1:
                results.append(tuple(partial))
            return
        extent = 1
        while extent <= min(remaining, grid_shape[dim]):
            if remaining % extent == 0 and grid_shape[dim] % extent == 0:
                partial.append(extent)
                recurse(dim + 1, remaining // extent, partial)
                partial.pop()
            extent += 1
        return

    recurse(0, tile_size, [])
    return results


def tile_labels(grid_shape, tile_shape) -> np.ndarray:
    """Per-task tile id for C-ordered tasks over ``grid_shape``.

    Tiles are numbered in C order over the tile grid
    (``grid_shape / tile_shape``), matching the convention workload
    generators and the cluster hierarchy use.
    """
    grid_shape = tuple(int(g) for g in grid_shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != len(grid_shape):
        raise ConfigError(
            f"tile {tile_shape} and grid {grid_shape} rank mismatch"
        )
    if any(g % t for g, t in zip(grid_shape, tile_shape)):
        raise ConfigError(f"tile {tile_shape} does not divide grid {grid_shape}")
    n = len(grid_shape)
    num = int(np.prod(grid_shape))
    strides = np.ones(n, dtype=np.int64)
    for d in range(n - 2, -1, -1):
        strides[d] = strides[d + 1] * grid_shape[d + 1]
    ids = np.arange(num, dtype=np.int64)
    coords = (ids[:, None] // strides[None, :]) % np.asarray(grid_shape)
    tile_coords = coords // np.asarray(tile_shape)
    tile_grid = tuple(g // t for g, t in zip(grid_shape, tile_shape))
    tstrides = np.ones(n, dtype=np.int64)
    for d in range(n - 2, -1, -1):
        tstrides[d] = tstrides[d + 1] * tile_grid[d + 1]
    return tile_coords @ tstrides


def inter_tile_volume(graph: CommGraph, tile_shape) -> float:
    """Total volume crossing tile boundaries under a tiling."""
    if graph.grid_shape is None:
        raise CommGraphError("graph carries no grid_shape; cannot tile")
    labels = tile_labels(graph.grid_shape, tile_shape)
    cross = labels[graph.srcs] != labels[graph.dsts]
    return float(graph.vols[cross].sum())


def best_tiling(graph: CommGraph, tile_size: int) -> tuple[tuple[int, ...], float]:
    """The tile shape of ``tile_size`` minimizing inter-tile volume.

    Returns ``(tile_shape, inter_tile_volume)``. Ties break toward the
    lexicographically earliest shape (deterministic).
    """
    if graph.grid_shape is None:
        raise CommGraphError("graph carries no grid_shape; cannot tile")
    candidates = enumerate_tilings(graph.grid_shape, tile_size)
    if not candidates:
        raise ConfigError(
            f"no tile of size {tile_size} fits grid {graph.grid_shape}"
        )
    best_shape, best_cut = None, np.inf
    for shape in candidates:
        cut = inter_tile_volume(graph, shape)
        if cut < best_cut - 1e-12:
            best_shape, best_cut = shape, cut
    assert best_shape is not None
    return best_shape, float(best_cut)
