"""Block orientations: the hyperoctahedral group acting on sub-cubes.

Phase 3 reorients whole blocks — "rotation and reorientation" in the paper
— which for an axis-aligned cube means the signed-permutation
(hyperoctahedral) group: permute the dimensions, then optionally mirror
each. For an n-cube that is ``2^n * n!`` elements (8 for n=2, 48 for n=3,
384 for n=4); :func:`orientations_for_shape` restricts permutations to
equal-extent dimensions so non-cubic blocks (from topology partitioning)
stay well-formed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = [
    "Orientation",
    "all_orientations",
    "apply_batch",
    "orientations_for_shape",
    "sample_orientations",
    "node_permutation",
]


@dataclass(frozen=True)
class Orientation:
    """A signed permutation of block dimensions.

    Acting on local coordinates ``x`` of a block of ``shape``::

        y[d] = shape[d] - 1 - x[perm[d]]   if flip[d]
             = x[perm[d]]                  otherwise

    Validity for a block requires ``shape[perm[d]] == shape[d]`` for all d.
    """

    perm: tuple[int, ...]
    flip: tuple[bool, ...]

    def __post_init__(self):
        n = len(self.perm)
        if sorted(self.perm) != list(range(n)) or len(self.flip) != n:
            raise ConfigError(
                f"invalid orientation (perm={self.perm}, flip={self.flip})"
            )

    @property
    def ndim(self) -> int:
        return len(self.perm)

    @property
    def is_identity(self) -> bool:
        return self.perm == tuple(range(self.ndim)) and not any(self.flip)

    def apply(self, coords: np.ndarray, shape) -> np.ndarray:
        """Transform local coordinates (..., ndim) within a block."""
        coords = np.asarray(coords)
        shape = np.asarray(shape, dtype=np.int64)
        perm = np.asarray(self.perm)
        if np.any(shape[perm] != shape):
            raise ConfigError(
                f"orientation {self} permutes unequal extents of shape {tuple(shape)}"
            )
        out = coords[..., perm]
        flip = np.asarray(self.flip)
        out = np.where(flip, shape - 1 - out, out)
        return out

    def compose(self, other: "Orientation") -> "Orientation":
        """The orientation equivalent to applying ``other`` then ``self``."""
        n = self.ndim
        if other.ndim != n:
            raise ConfigError("cannot compose orientations of different rank")
        # self.apply(x)[d] = +-x[self.perm[d]]; substitute x = other.apply(y).
        perm = tuple(other.perm[self.perm[d]] for d in range(n))
        flip = tuple(
            bool(self.flip[d]) != bool(other.flip[self.perm[d]]) for d in range(n)
        )
        return Orientation(perm, flip)

    def inverse(self) -> "Orientation":
        n = self.ndim
        inv_perm = [0] * n
        for d in range(n):
            inv_perm[self.perm[d]] = d
        flip = tuple(bool(self.flip[inv_perm[d]]) for d in range(n))
        return Orientation(tuple(inv_perm), flip)

    @classmethod
    def identity(cls, n: int) -> "Orientation":
        return cls(tuple(range(n)), (False,) * n)

    def __str__(self) -> str:
        return "".join(
            f"{'-' if f else '+'}{p}" for p, f in zip(self.perm, self.flip)
        )


def apply_batch(
    orientations: list[Orientation], coords: np.ndarray, shape
) -> np.ndarray:
    """Apply every orientation to the same (m, ndim) coordinates at once.

    Returns an (O, m, ndim) tensor with ``out[o] ==
    orientations[o].apply(coords, shape)`` — the whole hyperoctahedral
    sample as two gathers and one ``where``, instead of O Python-level
    ``apply`` calls. Integer arithmetic throughout, so the batch is
    exactly (not just approximately) the per-orientation result.
    """
    coords = np.asarray(coords)
    shape = np.asarray(shape, dtype=np.int64)
    if not orientations:
        return np.empty((0,) + coords.shape, dtype=coords.dtype)
    perms = np.array([o.perm for o in orientations], dtype=np.int64)
    flips = np.array([o.flip for o in orientations], dtype=bool)
    if np.any(shape[perms] != shape[None, :]):
        raise ConfigError(
            f"batch contains an orientation permuting unequal extents of "
            f"shape {tuple(shape)}"
        )
    out = coords[..., perms]          # (m, O, ndim)
    out = np.transpose(out, (1, 0, 2))
    return np.where(flips[:, None, :], shape - 1 - out, out)


def all_orientations(n: int) -> list[Orientation]:
    """The full hyperoctahedral group B_n (size ``2^n * n!``)."""
    out = []
    for perm in itertools.permutations(range(n)):
        for flips in itertools.product((False, True), repeat=n):
            out.append(Orientation(perm, flips))
    return out


def orientations_for_shape(shape) -> list[Orientation]:
    """Orientations valid for a (possibly non-cubic) block shape.

    Dimension permutations are restricted to dimensions of equal extent;
    flips are always allowed (flipping an arity-1 dimension is the
    identity and is skipped to avoid duplicates).
    """
    shape = tuple(int(s) for s in shape)
    n = len(shape)
    out = []
    for perm in itertools.permutations(range(n)):
        if any(shape[perm[d]] != shape[d] for d in range(n)):
            continue
        flippable = [d for d in range(n) if shape[d] > 1]
        for bits in itertools.product((False, True), repeat=len(flippable)):
            flips = [False] * n
            for d, b in zip(flippable, bits):
                flips[d] = b
            out.append(Orientation(perm, tuple(flips)))
    return out


def sample_orientations(
    orientations: list[Orientation], limit: int | None, seed=None
) -> list[Orientation]:
    """Cap an orientation list, always keeping the identity first."""
    if limit is None or limit >= len(orientations):
        return list(orientations)
    if limit < 1:
        raise ConfigError(f"orientation limit must be >= 1, got {limit}")
    rng = as_rng(seed)
    ident = [o for o in orientations if o.is_identity]
    rest = [o for o in orientations if not o.is_identity]
    picked = list(rng.choice(len(rest), size=limit - len(ident), replace=False))
    return ident + [rest[i] for i in picked]


def node_permutation(shape, orientation: Orientation) -> np.ndarray:
    """Local-node-id permutation an orientation induces on a block.

    Returns ``p`` with ``p[old_local_id] = new_local_id`` for C-ordered
    local ids over ``shape``.
    """
    shape = tuple(int(s) for s in shape)
    n = len(shape)
    size = int(np.prod(shape))
    strides = np.ones(n, dtype=np.int64)
    for d in range(n - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    ids = np.arange(size, dtype=np.int64)
    coords = (ids[:, None] // strides[None, :]) % np.asarray(shape, dtype=np.int64)
    new_coords = orientation.apply(coords, shape)
    return new_coords @ strides
