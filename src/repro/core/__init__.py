"""RAHTM — the paper's contribution.

Three phases (Section III):

1. :mod:`repro.core.clustering` — tile-based clustering of the task graph
   to the concentration factor and into a 2-ary hierarchy (Figures 2-4).
2. :mod:`repro.core.milp` + :mod:`repro.core.pseudo_pin` — optimal MILP
   mapping of each level's cluster graph onto a 2-ary n-cube, top-down
   (Table II, Figures 5-6).
3. :mod:`repro.core.merge` — bottom-up beam-search merging of block
   mappings under rotations/reflections (Figure 7).

:class:`repro.core.rahtm.RAHTMMapper` is the public facade.
"""

from repro.core.rahtm import RAHTMMapper, RAHTMConfig
from repro.core.milp import solve_cluster_milp, solve_routing_lp, MILPResult
from repro.core.orientation import Orientation, all_orientations, orientations_for_shape
from repro.core.tiling import enumerate_tilings, best_tiling, tile_labels
from repro.core.clustering import ClusterHierarchy, build_cluster_hierarchy

__all__ = [
    "RAHTMMapper",
    "RAHTMConfig",
    "solve_cluster_milp",
    "solve_routing_lp",
    "MILPResult",
    "Orientation",
    "all_orientations",
    "orientations_for_shape",
    "enumerate_tilings",
    "best_tiling",
    "tile_labels",
    "ClusterHierarchy",
    "build_cluster_hierarchy",
]
