"""Phase 1 — clustering (paper Section III-B, Figures 2-4).

Two jobs:

1. **Concentration clustering**: contract the task graph by the
   concentration factor so tasks co-located on a node stop counting as
   network traffic (maximize intra-cluster volume).
2. **Hierarchy construction**: repeatedly contract the node-cluster graph
   by ``2^n`` so each level's siblings can be MILP-mapped onto a 2-ary
   n-cube.

Both use the tile-shape search of :mod:`repro.core.tiling` when the graph
carries a logical grid, and fall back to greedy heavy-edge agglomeration
otherwise (the paper's applications always have grids; the fallback keeps
the library total).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.core.tiling import best_tiling, tile_labels
from repro.errors import ConfigError
from repro.utils.logconf import get_logger

__all__ = [
    "ClusterLevel",
    "ClusterHierarchy",
    "cluster_fixed_size",
    "greedy_fixed_size_labels",
    "build_cluster_hierarchy",
]

log = get_logger("core.clustering")


@dataclass(frozen=True)
class ClusterLevel:
    """One contraction step of the hierarchy.

    ``labels[i]`` is the cluster (at this level) containing element ``i``
    of the previous level; ``graph`` is the contracted communication graph.
    """

    labels: np.ndarray
    graph: CommGraph
    tile_shape: tuple[int, ...] | None = None


@dataclass
class ClusterHierarchy:
    """Output of phase 1.

    Attributes
    ----------
    task_graph:
        The original task-level graph.
    node_level:
        Contraction of tasks into node-clusters (one per topology node).
        Identity when the concentration factor is 1.
    levels:
        ``levels[l-1]`` contracts hierarchy level ``l-1`` into level ``l``
        (level 0 = node-clusters), each by the cube branching factor.
    """

    task_graph: CommGraph
    node_level: ClusterLevel
    levels: list[ClusterLevel] = field(default_factory=list)

    @property
    def num_node_clusters(self) -> int:
        return self.node_level.graph.num_tasks

    @property
    def node_graph(self) -> CommGraph:
        return self.node_level.graph

    def graph_at(self, level: int) -> CommGraph:
        """Cluster graph at hierarchy level (0 = node-clusters)."""
        if level == 0:
            return self.node_level.graph
        return self.levels[level - 1].graph

    def labels_to_level(self, level: int) -> np.ndarray:
        """Map node-cluster index -> cluster index at ``level``."""
        out = np.arange(self.num_node_clusters, dtype=np.int64)
        for lvl in self.levels[:level]:
            out = lvl.labels[out]
        return out

    def children_of(self, level: int, cluster: int) -> np.ndarray:
        """Level ``level-1`` cluster ids contracted into ``cluster``."""
        if level < 1 or level > len(self.levels):
            raise ConfigError(f"level {level} out of range")
        return np.flatnonzero(self.levels[level - 1].labels == cluster)


def greedy_fixed_size_labels(graph: CommGraph, group_size: int) -> np.ndarray:
    """Heavy-edge agglomeration into equal groups of ``group_size``.

    Merges along the heaviest symmetrized edges while groups fit, then
    packs the resulting fragments into exact-size bins (fragments stay
    contiguous so heavy pairs stay together).
    """
    n = graph.num_tasks
    if n % group_size:
        raise ConfigError(
            f"{n} elements cannot form groups of {group_size}"
        )
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    sym = graph.symmetrized().without_self_loops()
    order = np.argsort(-sym.vols, kind="stable")
    for e in order:
        a, b = find(int(sym.srcs[e])), find(int(sym.dsts[e]))
        if a != b and size[a] + size[b] <= group_size:
            parent[b] = a
            size[a] += size[b]
    roots = np.array([find(i) for i in range(n)])
    # Gather fragments (largest first), then fill bins sequentially.
    frag_ids, frag_sizes = np.unique(roots, return_counts=True)
    frag_order = frag_ids[np.argsort(-frag_sizes, kind="stable")]
    labels = np.empty(n, dtype=np.int64)
    cursor = 0
    for frag in frag_order:
        members = np.flatnonzero(roots == frag)
        for m in members:
            labels[m] = cursor // group_size
            cursor += 1
    return labels


def cluster_fixed_size(
    graph: CommGraph, group_size: int
) -> ClusterLevel:
    """Contract ``graph`` into equal clusters of ``group_size`` elements.

    Uses the Figure-2 tile search when the graph has a grid and the tile
    divides it; greedy agglomeration otherwise.
    """
    if group_size == 1:
        labels = np.arange(graph.num_tasks, dtype=np.int64)
        return ClusterLevel(labels, graph, None)
    if graph.num_tasks % group_size:
        raise ConfigError(
            f"group size {group_size} does not divide {graph.num_tasks} tasks"
        )
    if graph.grid_shape is not None:
        try:
            tile_shape, cut = best_tiling(graph, group_size)
        except ConfigError:
            tile_shape = None
        if tile_shape is not None:
            labels = tile_labels(graph.grid_shape, tile_shape)
            new_grid = tuple(
                g // t for g, t in zip(graph.grid_shape, tile_shape)
            )
            contracted = graph.contract(
                labels, graph.num_tasks // group_size, grid_shape=new_grid
            )
            log.debug(
                "tiled %d->%d clusters with tile %s (cut %.3g)",
                graph.num_tasks, contracted.num_tasks, tile_shape, cut,
            )
            return ClusterLevel(labels, contracted, tile_shape)
    labels = greedy_fixed_size_labels(graph, group_size)
    contracted = graph.contract(labels, graph.num_tasks // group_size)
    return ClusterLevel(labels, contracted, None)


def build_cluster_hierarchy(
    task_graph: CommGraph,
    num_nodes: int,
    branching: int,
    num_levels: int,
) -> ClusterHierarchy:
    """Run all of phase 1.

    Parameters
    ----------
    task_graph:
        Application communication graph.
    num_nodes:
        Topology nodes the graph must contract onto (concentration factor
        = tasks / nodes, which must be integral).
    branching:
        Children per hierarchy node (``2^n`` for an n-cube hierarchy).
    num_levels:
        Hierarchy depth ``q`` (``branching^q`` must equal ``num_nodes``).
    """
    if task_graph.num_tasks % num_nodes:
        raise ConfigError(
            f"{task_graph.num_tasks} tasks do not divide over {num_nodes} nodes"
        )
    if branching**num_levels != num_nodes:
        raise ConfigError(
            f"branching {branching} over {num_levels} levels covers "
            f"{branching**num_levels} nodes, topology has {num_nodes}"
        )
    concentration = task_graph.num_tasks // num_nodes
    node_level = cluster_fixed_size(task_graph, concentration)
    levels = []
    current = node_level.graph
    for _ in range(num_levels):
        lvl = cluster_fixed_size(current, branching)
        levels.append(lvl)
        current = lvl.graph
    return ClusterHierarchy(task_graph, node_level, levels)
