"""Phase 2 — top-down hierarchical MILP mapping ("pseudo-pinning").

Starting at the root, each cluster's ``2^n`` children are mapped onto the
parent block's child cube (Table II MILP, Figures 5-6). The placements are
*pseudo*-pins: phase 3 may later reorient whole blocks, but the relative
arrangement inside each block is decided here.

Identical sibling subproblems (same child communication graph) are solved
once and copied — the paper's symmetry trick for reducing compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import ClusterHierarchy
from repro.core.milp import (
    MILPResult,
    greedy_assignment,
    solve_cluster_milp,
    static_assignment,
)
from repro.errors import ConfigError, SolverError
from repro.observability.metrics import get_registry
from repro.observability.trace import span
from repro.topology.hierarchy import CubeHierarchy
from repro.utils.logconf import get_logger

__all__ = ["PinResult", "pseudo_pin"]

log = get_logger("core.pseudo_pin")


@dataclass
class PinResult:
    """Phase-2 output.

    Attributes
    ----------
    cluster_to_node:
        Topology node id per node-cluster (a bijection onto block nodes).
    milp_stats:
        One entry per *distinct* subproblem solved.
    cache_hits:
        Subproblems satisfied from the symmetry cache.
    """

    cluster_to_node: np.ndarray
    milp_stats: list[MILPResult] = field(default_factory=list)
    cache_hits: int = 0

    @property
    def all_optimal(self) -> bool:
        return all(r.optimal for r in self.milp_stats)


def _signature(local_edges, num_children: int, cube) -> tuple:
    return (
        cube.shape,
        cube.wrap,
        num_children,
        tuple(sorted((int(s), int(d), round(float(v), 9))
                     for s, d, v in local_edges)),
    )


def pseudo_pin(
    hierarchy: ClusterHierarchy,
    cube_h: CubeHierarchy,
    time_limit: float | None = 120.0,
    mip_rel_gap: float | None = None,
    enforce_minimal: bool = True,
    fix_first: bool = True,
    use_milp: bool = True,
    warm_start: bool = False,
    budget=None,
    degradation=None,
) -> PinResult:
    """Map every node-cluster to a topology node, top-down.

    Parameters mirror :func:`repro.core.milp.solve_cluster_milp`;
    ``use_milp=False`` swaps in the greedy placer (ablation of the paper's
    optimal-leaf-solve design decision).

    ``warm_start=True`` seeds each MILP with the previously solved
    congruent subproblem's placement (the previous level's solution, or
    an earlier sibling's): its LP-routed MCL upper-bounds ``z`` and
    prunes the branch-and-bound tree. The bound never excludes the
    optimum, but it can change *which* optimal incumbent the solver
    reports, so it defaults off to keep results bitwise-stable.

    ``budget`` (a :class:`~repro.resilience.Budget`) turns on the
    degradation ladder: each MILP's ``time_limit`` shrinks to an even
    share of the remaining wall clock over the outstanding levels; a
    solver failure or an exhausted solver-call budget drops to the greedy
    placer; an exhausted wall budget drops to the static dimension-order
    placement. Every ladder step is appended to ``degradation`` (a
    :class:`~repro.resilience.DegradationLog`).
    """
    q = cube_h.num_levels
    if len(hierarchy.levels) != q:
        raise ConfigError(
            f"hierarchy has {len(hierarchy.levels)} levels, topology needs {q}"
        )
    if hierarchy.graph_at(q).num_tasks != 1:
        raise ConfigError("hierarchy root must be a single cluster")
    branching = 2**cube_h.n

    # block_at[level][cluster] = block id containing that cluster.
    block_at: dict[int, np.ndarray] = {
        q: np.zeros(1, dtype=np.int64)
    }
    cache: dict[tuple, np.ndarray] = {}
    # Last solved placement per cube geometry, used as the warm seed for
    # the next congruent subproblem (typically the previous level's).
    warm_seeds: dict[tuple, np.ndarray] = {}
    stats: list[MILPResult] = []
    cache_hits = 0

    for level in range(q, 0, -1):
        with span("rahtm.pseudo_pin.level", level=level,
                  parents=hierarchy.graph_at(level).num_tasks) as level_span:
            solved_before, hits_before = len(stats), cache_hits
            child_graph = hierarchy.graph_at(level - 1)
            parents = hierarchy.graph_at(level).num_tasks
            cube = cube_h.child_cube(level)
            child_blocks = np.empty(child_graph.num_tasks, dtype=np.int64)
            for parent in range(parents):
                children = hierarchy.children_of(level, parent)
                if len(children) != branching:
                    raise ConfigError(
                        f"cluster {parent} at level {level} has "
                        f"{len(children)} children, expected {branching}"
                    )
                # Local intra-parent subgraph (children relabeled 0..2^n-1).
                lookup = {int(c): i for i, c in enumerate(children)}
                mask = np.isin(child_graph.srcs, children) & np.isin(
                    child_graph.dsts, children
                )
                local_edges = [
                    (lookup[int(s)], lookup[int(d)], float(v))
                    for s, d, v in zip(
                        child_graph.srcs[mask],
                        child_graph.dsts[mask],
                        child_graph.vols[mask],
                    )
                ]
                sig = _signature(local_edges, branching, cube)
                assignment = cache.get(sig)
                if assignment is None:
                    from repro.commgraph.graph import CommGraph

                    local = CommGraph.from_edges(branching, local_edges)
                    # Degradation ladder: MILP -> greedy -> static. The wall
                    # budget kills everything but the O(A) static placement;
                    # the solver-call budget and solver errors only demote
                    # the MILP rung.
                    mode = "milp" if use_milp else "greedy"
                    reason = None
                    if budget is not None:
                        if budget.enforce("phase2"):
                            mode, reason = "static", "budget-exhausted"
                        elif mode == "milp" and not budget.take_solver_call():
                            mode, reason = "greedy", "solver-budget-exhausted"
                    if mode == "milp":
                        limit = time_limit
                        if budget is not None:
                            limit = budget.solver_slice(time_limit, parts=level)
                        geo = (cube.shape, cube.wrap, branching)
                        seed = warm_seeds.get(geo) if warm_start else None
                        try:
                            res = solve_cluster_milp(
                                cube, local,
                                time_limit=limit, mip_rel_gap=mip_rel_gap,
                                enforce_minimal=enforce_minimal,
                                fix_first=fix_first,
                                warm_assignment=seed,
                            )
                        except SolverError as exc:
                            mode, reason = "greedy", "solver-error"
                            log.warning(
                                "phase 2 MILP at level %d failed (%s); "
                                "greedy fallback", level, exc,
                            )
                            if degradation is not None:
                                degradation.record(
                                    "phase2", "milp->greedy", "solver-error",
                                    level=level, error=str(exc),
                                )
                        else:
                            assignment = res.assignment
                            stats.append(res)
                            if warm_start:
                                warm_seeds[geo] = assignment
                    if mode == "greedy":
                        assignment, mcl = greedy_assignment(cube, local)
                        stats.append(MILPResult(
                            assignment=assignment, mcl=mcl, optimal=False,
                            status="greedy" if reason is None
                            else f"degraded:{reason}",
                            method="greedy",
                        ))
                        if reason == "solver-budget-exhausted" \
                                and degradation is not None:
                            degradation.record("phase2", "milp->greedy",
                                               reason, level=level)
                    elif mode == "static":
                        assignment, mcl = static_assignment(cube, local)
                        stats.append(MILPResult(
                            assignment=assignment, mcl=mcl, optimal=False,
                            status=f"degraded:{reason}", method="static",
                        ))
                        if degradation is not None:
                            degradation.record("phase2", "milp->static",
                                               reason, level=level)
                    cache[sig] = assignment
                else:
                    cache_hits += 1
                parent_block = int(block_at[level][parent])
                for i, child in enumerate(children):
                    corner = int(assignment[i])
                    origin = cube_h.corner_origin(level, parent_block, corner)
                    node = int(cube_h.topology.index(origin))
                    child_blocks[int(child)] = cube_h.block_of(node, level - 1)
            block_at[level - 1] = child_blocks
            level_span.set(solved=len(stats) - solved_before,
                           cache_hits=cache_hits - hits_before)

    # Level-0 blocks are single nodes.
    cluster_to_node = np.empty(hierarchy.num_node_clusters, dtype=np.int64)
    for c in range(hierarchy.num_node_clusters):
        nodes = cube_h.block_nodes(0, int(block_at[0][c]))
        if len(nodes) != 1:
            raise ConfigError(
                "level-0 block spans multiple nodes; topology has non-trivial "
                "inactive dimensions — partition it first"
            )
        cluster_to_node[c] = nodes[0]
    if len(np.unique(cluster_to_node)) != len(cluster_to_node):
        raise ConfigError("pseudo-pinning produced a non-injective placement")
    registry = get_registry()
    registry.counter("pin.subproblems").inc(len(stats))
    registry.counter("pin.cache_hits").inc(cache_hits)
    log.info(
        "phase 2: %d subproblems solved, %d cache hits",
        len(stats), cache_hits,
    )
    return PinResult(cluster_to_node, stats, cache_hits)
