"""The RAHTM mapper facade.

Orchestrates the three phases over a (possibly non-uniform) torus:

1. cluster the task graph to the concentration factor (phase 1a) and, when
   the topology is non-uniform (e.g. BG/Q's arity-2 E dimension), split the
   node-cluster graph across uniform topology partitions (Section III-B);
2. per partition: build the 2-ary hierarchy (phase 1b), pseudo-pin via the
   Table II MILP top-down (phase 2), and beam-merge bottom-up (phase 3);
3. stitch partitions back together with one more orientation merge on the
   full topology.

Usage::

    mapper = RAHTMMapper(torus(4, 4, 4), RAHTMConfig(seed=0))
    mapping = mapper.map(graph)      # graph: CommGraph with V*c tasks
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.core.clustering import build_cluster_hierarchy, cluster_fixed_size
from repro.core.merge import (
    MergeBlock,
    MergeConfig,
    first_fit_merge,
    hierarchical_merge,
    merge_blocks,
)
from repro.core.pseudo_pin import pseudo_pin
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping
from repro.observability.trace import span
from repro.resilience.degrade import DegradationLog
from repro.routing.dor import DimensionOrderRouter
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.topology.bgq import BGQTopology
from repro.topology.cartesian import CartesianTopology
from repro.topology.hierarchy import CubeHierarchy
from repro.topology.partition import uniform_partitions
from repro.utils.logconf import get_logger
from repro.utils.timing import PhaseTimer

__all__ = ["RAHTMConfig", "RAHTMMapper"]

log = get_logger("core.rahtm")


@dataclass(frozen=True)
class RAHTMConfig:
    """All tunables of the RAHTM pipeline.

    Attributes
    ----------
    beam_width:
        Phase-3 beam (``N = 64`` in the paper).
    max_orientations:
        Cap on block orientations searched (None = full hyperoctahedral
        group; the paper searches all orientations at its scales).
    order_mode / order_samples:
        Merge-order heuristic fidelity (see :class:`MergeConfig`).
    milp_time_limit / milp_rel_gap:
        Phase-2 solver budget per subproblem.
    use_milp:
        ``False`` swaps phase 2's MILP for the greedy placer (ablation).
    milp_warm_start:
        Seed each phase-2 MILP with the previously solved congruent
        subproblem's placement (its LP-routed MCL upper-bounds ``z``).
        Never worsens the optimum but may change which optimal incumbent
        the solver reports, so it defaults off for bitwise stability.
    enforce_minimal:
        Emit the C3 minimal-routing constraints (paper notes they may be
        omitted; ablation knob).
    fix_first:
        Symmetry-break the MILP by pinning the heaviest cluster.
    routing:
        Router used for all MCL evaluations: ``"mar"`` (all-minimal-paths
        approximation of BG/Q's adaptive routing) or ``"dor"``
        (dimension-order; the routing-unaware ablation).
    reposition:
        Enable the merge phase's repositioning freedom (blocks may swap
        congruent slots — the paper's second degree of freedom).
    merge_evaluator:
        ``"uniform"`` (stencil loads; the paper's evaluation) or ``"lp"``
        (exact routing LP per merge candidate; ablation, slow).
    refine_iterations:
        Post-merge annealed swap proposals on the final placement
        (Section VI's cheap-refinement direction); 0 disables.
    seed:
        Seeds orientation sampling and any stochastic fallback.
    """

    beam_width: int = 64
    max_orientations: int | None = None
    order_mode: str = "sampled"
    order_samples: int = 4
    milp_time_limit: float | None = 60.0
    milp_rel_gap: float | None = None
    use_milp: bool = True
    milp_warm_start: bool = False
    enforce_minimal: bool = True
    fix_first: bool = True
    routing: str = "mar"
    reposition: bool = False
    merge_evaluator: str = "uniform"
    refine_iterations: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.beam_width < 1:
            raise ConfigError(f"beam_width must be >= 1, got {self.beam_width}")
        if self.max_orientations is not None and self.max_orientations < 1:
            raise ConfigError(
                f"max_orientations must be >= 1 or None, "
                f"got {self.max_orientations}"
            )
        if self.order_mode not in ("identity", "sampled", "exhaustive"):
            raise ConfigError(
                f"order_mode must be 'identity', 'sampled' or 'exhaustive', "
                f"got {self.order_mode!r}"
            )
        if self.order_samples < 1:
            raise ConfigError(
                f"order_samples must be >= 1, got {self.order_samples}"
            )
        if self.milp_time_limit is not None and self.milp_time_limit <= 0:
            raise ConfigError(
                f"milp_time_limit must be > 0 or None, "
                f"got {self.milp_time_limit}"
            )
        if self.milp_rel_gap is not None and self.milp_rel_gap <= 0:
            raise ConfigError(
                f"milp_rel_gap must be > 0 or None, got {self.milp_rel_gap}"
            )
        if self.merge_evaluator not in ("uniform", "lp"):
            raise ConfigError(
                f"merge_evaluator must be 'uniform' or 'lp', "
                f"got {self.merge_evaluator!r}"
            )
        if self.routing not in ("mar", "dor"):
            raise ConfigError(f"routing must be 'mar' or 'dor', got {self.routing!r}")
        if self.refine_iterations < 0:
            raise ConfigError("refine_iterations must be >= 0")

    def merge_config(self, seed_offset: int = 0) -> MergeConfig:
        return MergeConfig(
            beam_width=self.beam_width,
            max_orientations=self.max_orientations,
            order_mode=self.order_mode,
            order_samples=self.order_samples,
            reposition=self.reposition,
            evaluator=self.merge_evaluator,
            seed=self.seed + seed_offset,
        )


class RAHTMMapper:
    """Routing Algorithm aware Hierarchical Task Mapper.

    Parameters
    ----------
    topology:
        A :class:`CartesianTopology` or :class:`BGQTopology`.
    config:
        Algorithm tunables; defaults follow the paper.
    """

    name = "RAHTM"
    #: Feature flag for the service layer: ``map()`` accepts ``budget``
    #: and ``checkpoint`` keyword arguments.
    supports_resilience = True

    def __init__(self, topology, config: RAHTMConfig | None = None):
        if isinstance(topology, BGQTopology):
            topology = topology.network
        if not isinstance(topology, CartesianTopology):
            raise ConfigError(
                f"unsupported topology type {type(topology).__name__}"
            )
        self.topology = topology
        self.config = config or RAHTMConfig()
        self.timer = PhaseTimer()
        self.stats: dict = {}
        self.degradation = DegradationLog()

    def _router(self, topo: CartesianTopology):
        if self.config.routing == "dor":
            return DimensionOrderRouter(topo)
        return MinimalAdaptiveRouter(topo)

    # ------------------------------------------------------------------------------
    def map(self, graph: CommGraph, *, budget=None, checkpoint=None) -> Mapping:
        """Map ``graph``'s tasks onto the topology; returns a :class:`Mapping`.

        Parameters
        ----------
        graph:
            Communication graph with ``V * c`` tasks.
        budget:
            Optional :class:`~repro.resilience.Budget`. Phase 2 divides
            the remaining wall clock across its MILP subproblems; on
            exhaustion each phase degrades (MILP → greedy → static, full
            merge → first-fit) but always returns a *valid* mapping —
            unless the budget's policy is ``fail``, which raises
            :class:`~repro.errors.DeadlineExceededError` instead.
            Degradation events land in ``self.stats["degradation"]``.
        checkpoint:
            Optional :class:`~repro.resilience.MapperCheckpoint`. Each
            completed phase (pseudo-pin, merge, each partition) is
            persisted; a rerun of the same job resumes from the last
            completed phase with zero repeat MILP solves. Checkpoints are
            cleared once the mapping completes.
        """
        topo = self.topology
        V = topo.num_nodes
        if graph.num_tasks % V:
            raise ConfigError(
                f"{graph.num_tasks} tasks do not divide over {V} nodes"
            )
        concentration = graph.num_tasks // V
        self.timer = PhaseTimer()
        self.stats = {"concentration": concentration}
        self.degradation = DegradationLog()

        with span("rahtm.map", tasks=graph.num_tasks, nodes=V,
                  concentration=concentration):
            # Phase 1a: concentration clustering.
            with self.timer.phase("phase1-concentration"), \
                    span("rahtm.cluster", tasks=graph.num_tasks):
                node_level = cluster_fixed_size(graph, concentration)
            node_graph = node_level.graph

            # Partitioning for non-uniform topologies.
            parts = (uniform_partitions(topo)
                     if not _is_uniform_pow2(topo) else None)
            if parts is None:
                assignment = self._map_uniform(
                    topo, node_graph, seed_offset=0,
                    budget=budget, checkpoint=checkpoint, ckpt_ns="",
                )
            else:
                assignment = self._map_partitioned(
                    topo, node_graph, parts,
                    budget=budget, checkpoint=checkpoint,
                )

            if self.config.refine_iterations:
                if budget is not None and budget.enforce("phase4"):
                    self.degradation.record("phase4", "refine->skipped",
                                            "budget-exhausted")
                else:
                    with self.timer.phase("phase4-refine"), \
                            span("rahtm.refine",
                                 iterations=self.config.refine_iterations):
                        from repro.core.refine import refine_assignment

                        assignment, refined_mcl = refine_assignment(
                            self._router(topo), node_graph, assignment,
                            self.config.refine_iterations,
                            seed=self.config.seed,
                        )
                    self.stats["refined_mcl"] = refined_mcl

        task_to_node = assignment[node_level.labels]
        mapping = Mapping(topo, task_to_node, tasks_per_node=concentration)
        self.stats["phase_seconds"] = dict(self.timer.totals)
        self.stats["degradation"] = self.degradation.as_dicts()
        if budget is not None:
            self.stats["budget"] = budget.snapshot()
        if checkpoint is not None:
            self.stats["checkpoint"] = checkpoint.stats()
            # The finished mapping supersedes its intermediate states.
            checkpoint.clear()
        if self.degradation:
            log.warning("mapping degraded: %s", self.degradation.summary())
        return mapping

    # -- uniform path -----------------------------------------------------------------
    def _map_uniform(
        self, topo: CartesianTopology, node_graph: CommGraph, seed_offset: int,
        budget=None, checkpoint=None, ckpt_ns: str = "",
    ) -> np.ndarray:
        cube_h = CubeHierarchy(topo)
        with self.timer.phase("phase1-hierarchy"), \
                span("rahtm.hierarchy", levels=cube_h.num_levels):
            hierarchy = build_cluster_hierarchy(
                node_graph, topo.num_nodes, 2**cube_h.n, cube_h.num_levels
            )

        cluster_to_node = None
        if checkpoint is not None:
            cluster_to_node = checkpoint.load_assignment(
                f"{ckpt_ns}pin", expect_len=hierarchy.num_node_clusters
            )
        if cluster_to_node is None:
            degraded_before = len(self.degradation)
            with self.timer.phase("phase2-milp"), \
                    span("rahtm.pseudo_pin", levels=cube_h.num_levels):
                pin = pseudo_pin(
                    hierarchy, cube_h,
                    time_limit=self.config.milp_time_limit,
                    mip_rel_gap=self.config.milp_rel_gap,
                    enforce_minimal=self.config.enforce_minimal,
                    fix_first=self.config.fix_first,
                    use_milp=self.config.use_milp,
                    warm_start=self.config.milp_warm_start,
                    budget=budget, degradation=self.degradation,
                )
            cluster_to_node = pin.cluster_to_node
            self.stats.setdefault("milp", []).extend(
                (r.status, r.mcl, r.solve_seconds) for r in pin.milp_stats
            )
            self.stats.setdefault("milp_cache_hits", 0)
            self.stats["milp_cache_hits"] += pin.cache_hits
            # Only checkpoint full-quality phase results: a degraded pin
            # must not be trusted by a later resume with a fresh budget.
            if checkpoint is not None \
                    and len(self.degradation) == degraded_before:
                checkpoint.save_assignment(f"{ckpt_ns}pin", cluster_to_node)

        assignment = None
        if checkpoint is not None:
            assignment = checkpoint.load_assignment(
                f"{ckpt_ns}merge", expect_len=topo.num_nodes
            )
        if assignment is None:
            degraded_before = len(self.degradation)
            with self.timer.phase("phase3-merge"), \
                    span("rahtm.merge", beam_width=self.config.beam_width):
                router = self._router(topo)
                assignment, mstats = hierarchical_merge(
                    topo, router, cube_h, node_graph, cluster_to_node,
                    self.config.merge_config(seed_offset),
                    budget=budget, degradation=self.degradation,
                )
            self.stats.setdefault("merge_evaluations", 0)
            self.stats["merge_evaluations"] += mstats["evaluations"]
            self.stats.setdefault("merge_cache_hits", 0)
            self.stats["merge_cache_hits"] += mstats["cache_hits"]
            # A merge cut short by the deadline is valid but unoptimized;
            # don't freeze it into a checkpoint a resumed run would trust.
            if checkpoint is not None \
                    and len(self.degradation) == degraded_before:
                checkpoint.save_assignment(f"{ckpt_ns}merge", assignment)
        return assignment

    # -- partitioned path ----------------------------------------------------
    def _map_partitioned(
        self, topo: CartesianTopology, node_graph: CommGraph, parts,
        budget=None, checkpoint=None,
    ) -> np.ndarray:
        nparts = len(parts)
        V = topo.num_nodes
        if V % nparts:
            raise ConfigError("partitions do not evenly divide the topology")
        part_size = V // nparts

        # Split node-clusters into one group per partition (phase-1 tiling
        # again, at partition granularity).
        with self.timer.phase("phase1-partition"), \
                span("rahtm.partition", partitions=nparts):
            part_level = cluster_fixed_size(node_graph, part_size)
        group_of = part_level.labels  # node-cluster -> partition group

        assignment = np.full(V, -1, dtype=np.int64)
        blocks: list[MergeBlock] = []
        for gi, part in enumerate(parts):
            members = np.flatnonzero(group_of == gi)
            sub = node_graph.subgraph(members)
            local_topo = part.local_topology(topo)
            local_assignment = None
            if checkpoint is not None:
                local_assignment = checkpoint.load_assignment(
                    f"part{gi}", expect_len=local_topo.num_nodes
                )
            if local_assignment is not None:
                # The whole-partition checkpoint supersedes its sub-stages;
                # mark them so clear() evicts any the killed run left behind.
                checkpoint.mark(f"part{gi}-pin", f"part{gi}-merge")
            else:
                degraded_before = len(self.degradation)
                with span("rahtm.map_partition", index=gi,
                          nodes=local_topo.num_nodes):
                    local_assignment = self._map_uniform(
                        local_topo, sub, seed_offset=17 * (gi + 1),
                        budget=budget, checkpoint=checkpoint,
                        ckpt_ns=f"part{gi}-",
                    )
                if checkpoint is not None \
                        and len(self.degradation) == degraded_before:
                    checkpoint.save_assignment(f"part{gi}", local_assignment)
            # Record the partition as a rigid block for the stitch merge.
            local_coords = local_topo.coords(local_assignment)
            blocks.append(MergeBlock(
                origin=np.asarray(part.origin, dtype=np.int64),
                shape=part.shape,
                clusters=members,
                local_coords=local_coords,
            ))
        with self.timer.phase("phase3-stitch"), \
                span("rahtm.stitch", partitions=nparts):
            if budget is not None and budget.enforce("phase3-stitch"):
                self.degradation.record(
                    "phase3", "stitch->first-fit", "budget-exhausted",
                    partitions=nparts,
                )
                outcome = first_fit_merge(topo, blocks)
            else:
                router = self._router(topo)
                outcome = merge_blocks(
                    topo, router, blocks,
                    node_graph.srcs, node_graph.dsts, node_graph.vols,
                    self.config.merge_config(seed_offset=9999),
                    num_clusters=node_graph.num_tasks,
                )
        self.stats.setdefault("merge_evaluations", 0)
        self.stats["merge_evaluations"] += outcome.evaluations
        self.stats["stitch_mcl"] = outcome.mcl
        for cluster, node in outcome.positions.items():
            assignment[cluster] = node
        if (assignment < 0).any():
            raise ConfigError("partition stitching left clusters unplaced")
        return assignment


def _is_uniform_pow2(topo: CartesianTopology) -> bool:
    arities = {k for k in topo.shape if k > 1}
    if len(arities) != 1:
        return False
    k = arities.pop()
    return (k & (k - 1)) == 0
