"""Phase 3 — bottom-up beam merging of block mappings (paper Section III-D).

Blocks (sub-cubes whose internal mapping is already fixed) are merged into
their parent while searching *orientations* (rotations/reflections of each
block — the hyperoctahedral group) and, optionally, *repositions* (which
congruent corner slot each block occupies — the paper's "twin degrees of
freedom of rotation and repositioning"). The search is the paper's
incremental beam:

1. **Order determination** — blocks are ranked by the average MCL of their
   pairwise interactions (heaviest first, so the most constrained blocks
   get the most placement freedom).
2. **The first two blocks** are merged exhaustively over orientation pairs
   (when repositioning is off, matching the paper; with repositioning on,
   every step is beam-pruned to bound the product space).
3. Each remaining block is merged against every retained partial solution,
   keeping the best ``N`` (= 64 in the paper) merged configurations.

MCL is evaluated with the all-minimal-paths oblivious router on the global
topology (minimal paths never leave the parent's bounding box, so global
channel space is exact); an optional ``evaluator="lp"`` mode scores each
candidate with the exact routing LP instead — far slower, used to ablate
the uniform-split approximation. Identical sibling merge problems are
solved once and copied (the paper's symmetry exploitation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.core.orientation import (
    Orientation,
    apply_batch,
    orientations_for_shape,
    sample_orientations,
)
from repro.errors import ConfigError
from repro.observability.metrics import get_registry
from repro.observability.trace import span
from repro.routing.base import Router
from repro.topology.cartesian import CartesianTopology
from repro.topology.hierarchy import CubeHierarchy
from repro.utils.logconf import get_logger
from repro.utils.rng import as_rng

__all__ = ["MergeConfig", "MergeBlock", "MergeOutcome", "merge_blocks",
           "hierarchical_merge", "first_fit_merge"]

log = get_logger("core.merge")


@dataclass(frozen=True)
class MergeConfig:
    """Knobs of the phase-3 search.

    Attributes
    ----------
    beam_width:
        ``N`` of the paper — retained merged configurations (default 64).
    max_orientations:
        Cap on orientations per block (None = the full hyperoctahedral
        group; sampling keeps the identity).
    order_mode:
        How pairwise MCLs for the order heuristic are computed:
        ``"identity"`` (cheapest), ``"sampled"`` (min over a few random
        orientation pairs), ``"exhaustive"``.
    order_samples:
        Orientation pairs per block pair in ``"sampled"`` mode.
    reposition:
        Also search which congruent slot each block occupies (the paper's
        repositioning freedom). Grows the branching factor by the number
        of congruent free slots per step.
    evaluator:
        ``"uniform"`` — stencil-based all-minimal-paths loads (fast,
        incremental, the paper's evaluation); ``"lp"`` — exact routing LP
        per candidate (slow; ablation of the approximation).
    seed:
        Randomness seed (orientation sampling only).
    """

    beam_width: int = 64
    max_orientations: int | None = None
    order_mode: str = "sampled"
    order_samples: int = 4
    reposition: bool = False
    evaluator: str = "uniform"
    seed: int = 0

    def __post_init__(self):
        if self.beam_width < 1:
            raise ConfigError(f"beam_width must be >= 1, got {self.beam_width}")
        if self.order_mode not in ("identity", "sampled", "exhaustive"):
            raise ConfigError(f"invalid order_mode {self.order_mode!r}")
        if self.evaluator not in ("uniform", "lp"):
            raise ConfigError(f"invalid evaluator {self.evaluator!r}")


@dataclass
class MergeBlock:
    """A rigid block to be merged: clusters pinned at block-local coords."""

    origin: np.ndarray        # (ndim,) absolute coords of block corner
    shape: tuple[int, ...]    # block extent per dimension
    clusters: np.ndarray      # global cluster ids
    local_coords: np.ndarray  # (len(clusters), ndim) within-block coords


@dataclass
class MergeOutcome:
    """Result of merging one set of blocks."""

    positions: dict[int, int]  # cluster id -> absolute node id
    mcl: float
    evaluations: int = 0
    orientations: list[Orientation] = field(default_factory=list)


class _State:
    __slots__ = ("loads", "positions", "used_slots", "mcl", "order")

    def __init__(self, loads, positions, used_slots, mcl, order):
        self.loads = loads            # dense channel loads or None (lp mode)
        self.positions = positions    # dense (num_clusters,), -1 = unplaced
        self.used_slots = used_slots  # frozenset of occupied slot indices
        self.mcl = mcl
        self.order = order            # deterministic tiebreak


class _MergeEngine:
    """One merge_blocks invocation's working state."""

    def __init__(self, topo, router, blocks, srcs, dsts, vols, config,
                 num_clusters):
        if router.topology != topo:
            raise ConfigError("router is bound to a different topology")
        self.topo = topo
        self.router = router
        self.blocks = blocks
        self.config = config
        self.num_clusters = num_clusters
        self.rng = as_rng(config.seed)
        self.evaluations = 0
        self.seq = 0

        member = np.zeros(num_clusters, dtype=bool)
        for b in blocks:
            member[b.clusters] = True
        keep = member[srcs] & member[dsts] & (srcs != dsts)
        self.srcs, self.dsts, self.vols = srcs[keep], dsts[keep], vols[keep]

        self.block_of = np.full(num_clusters, -1, dtype=np.int64)
        for bi, b in enumerate(blocks):
            self.block_of[b.clusters] = bi
        self.bsrc = self.block_of[self.srcs]
        self.bdst = self.block_of[self.dsts]

        # Slot table: one slot per block's initial origin.
        self.slot_origin = [np.asarray(b.origin, dtype=np.int64) for b in blocks]
        self.slot_shape = [tuple(b.shape) for b in blocks]

        self.orients: list[list[Orientation]] = [
            sample_orientations(
                orientations_for_shape(b.shape), config.max_orientations,
                self.rng,
            )
            for b in blocks
        ]
        self._pos_cache: dict[tuple[int, int, int], np.ndarray] = {}
        # (O, m, ndim) oriented local coords per block, built in one
        # hyperoctahedral batch transform on first use.
        self._orient_coords: dict[int, np.ndarray] = {}
        # Intra-block loads depend only on (block, slot, orientation) —
        # engine-level cache so beam states in the same step share them.
        self._intra_cache: dict[tuple[int, int, int], np.ndarray] = {}

    # -- geometry -------------------------------------------------------------
    def allowed_slots(self, bi: int) -> list[int]:
        if not self.config.reposition:
            return [bi]
        shape = tuple(self.blocks[bi].shape)
        return [s for s, sh in enumerate(self.slot_shape) if sh == shape]

    def oriented_coords(self, bi: int) -> np.ndarray:
        """(O, m, ndim) local coords of block bi under every orientation."""
        got = self._orient_coords.get(bi)
        if got is None:
            b = self.blocks[bi]
            got = apply_batch(self.orients[bi], b.local_coords, b.shape)
            self._orient_coords[bi] = got
        return got

    def positions_for(self, bi: int, slot: int, oi: int) -> np.ndarray:
        """Dense cluster->node array for block bi at slot with orientation oi
        (-1 outside the block)."""
        key = (bi, slot, oi)
        cached = self._pos_cache.get(key)
        if cached is not None:
            return cached
        b = self.blocks[bi]
        coords = self.slot_origin[slot][None, :] + self.oriented_coords(bi)[oi]
        dense = np.full(self.num_clusters, -1, dtype=np.int64)
        dense[b.clusters] = self.topo.index(coords)
        self._pos_cache[key] = dense
        return dense

    # -- evaluation --------------------------------------------------------------
    def _mcl_lp(self, positions: np.ndarray) -> float:
        from repro.core.milp import solve_routing_lp

        placed = positions >= 0
        m = placed[self.srcs] & placed[self.dsts]
        self.evaluations += 1
        return solve_routing_lp(
            self.topo,
            positions[self.srcs[m]], positions[self.dsts[m]], self.vols[m],
        )

    def edges_between(self, group_a, group_b):
        in_a = np.isin(self.bsrc, group_a) | np.isin(self.bsrc, group_b)
        in_b = np.isin(self.bdst, group_a) | np.isin(self.bdst, group_b)
        m = in_a & in_b
        return self.srcs[m], self.dsts[m], self.vols[m]

    def pair_mcl(self, b1, s1, o1, b2, s2, o2) -> float:
        es, ed, ev = self.edges_between([b1], [b2])
        if len(es) == 0:
            return 0.0
        p1 = self.positions_for(b1, s1, o1)
        p2 = self.positions_for(b2, s2, o2)
        dense = np.where(p1 >= 0, p1, p2)
        loads = self.router.link_loads(dense[es], dense[ed], ev)
        self.evaluations += 1
        return float(loads.max()) if loads.size else 0.0

    def pair_mcl_batch(self, b1, s1, b2, s2, pairs) -> np.ndarray:
        """Isolated-pair MCL for many (o1, o2) orientation candidates.

        One ``link_loads_many`` scatter per chunk instead of a
        ``link_loads`` per candidate; each row is bitwise what the solo
        :meth:`pair_mcl` call computes. Chunked so huge orientation
        products cannot blow up the (B, S) buffer.
        """
        es, ed, ev = self.edges_between([b1], [b2])
        B = len(pairs)
        if len(es) == 0:
            return np.zeros(B)
        a1: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        a2: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        m = len(es)
        ps = np.empty((B, m), dtype=np.int64)
        pd = np.empty((B, m), dtype=np.int64)
        for i, (o1, o2) in enumerate(pairs):
            if o1 not in a1:
                p = self.positions_for(b1, s1, o1)
                a1[o1] = (p[es], p[ed])
            if o2 not in a2:
                p = self.positions_for(b2, s2, o2)
                a2[o2] = (p[es], p[ed])
            e1, d1 = a1[o1]
            e2, d2 = a2[o2]
            ps[i] = np.where(e1 >= 0, e1, e2)
            pd[i] = np.where(d1 >= 0, d1, d2)
        S = self.topo.num_channel_slots
        mcls = np.empty(B)
        step = max(1, 8_388_608 // max(S, 1))  # ~64 MB of rows per chunk
        for lo in range(0, B, step):
            hi = min(B, lo + step)
            out = np.zeros((hi - lo, S))
            self.router.link_loads_many(ps[lo:hi], pd[lo:hi], ev, out=out)
            mcls[lo:hi] = out.max(axis=1)
        self.evaluations += B
        return mcls

    # -- order determination -------------------------------------------------------
    def merge_order(self) -> np.ndarray:
        nb = len(self.blocks)
        cfg = self.config
        scores = np.zeros((nb, nb))
        for b1 in range(nb):
            s1 = self.allowed_slots(b1)[0]
            for b2 in range(b1 + 1, nb):
                s2 = b2 if not cfg.reposition else self.allowed_slots(b2)[-1]
                if s2 == s1:
                    s2 = self.allowed_slots(b2)[0]
                if cfg.order_mode == "identity":
                    score = self.pair_mcl(b1, s1, 0, b2, s2, 0)
                elif cfg.order_mode == "exhaustive":
                    pairs = [
                        (o1, o2)
                        for o1 in range(len(self.orients[b1]))
                        for o2 in range(len(self.orients[b2]))
                    ]
                    score = float(
                        self.pair_mcl_batch(b1, s1, b2, s2, pairs).min()
                    )
                else:  # sampled
                    cands = {(0, 0)}
                    for _ in range(cfg.order_samples):
                        cands.add((
                            int(self.rng.integers(len(self.orients[b1]))),
                            int(self.rng.integers(len(self.orients[b2]))),
                        ))
                    score = float(
                        self.pair_mcl_batch(
                            b1, s1, b2, s2, list(cands)
                        ).min()
                    )
                scores[b1, b2] = scores[b2, b1] = score
        avg = scores.sum(axis=1) / max(nb - 1, 1)
        return np.argsort(-avg, kind="stable")

    # -- beam expansion ----------------------------------------------------------------
    def _intra_loads(self, bi, cands, denses, ies, ied, iev) -> np.ndarray:
        """(B, S) intra-block load rows for each (slot, oi) candidate.

        Rows are cached engine-level — intra loads are independent of the
        beam state — and missing rows are computed in one batched scatter
        (bitwise-equal to per-candidate ``link_loads`` into zeros).
        """
        S = self.topo.num_channel_slots
        istack = np.empty((len(cands), S))
        missing: list[tuple[int, int, int]] = []
        midx: list[int] = []
        for ci, (slot, oi) in enumerate(cands):
            key = (bi, slot, oi)
            cached = self._intra_cache.get(key)
            if cached is not None:
                istack[ci] = cached
            else:
                missing.append(key)
                midx.append(ci)
        if missing:
            fresh = np.zeros((len(missing), S))
            if len(ies):
                ps = np.stack([denses[ci][ies] for ci in midx])
                pd = np.stack([denses[ci][ied] for ci in midx])
                self.router.link_loads_many(ps, pd, iev, out=fresh)
            for row, key, ci in zip(fresh, missing, midx):
                self._intra_cache[key] = row
                istack[ci] = row
            self.evaluations += len(missing)
        return istack

    def expand(self, state: _State, bi: int, placed_blocks) -> list[_State]:
        """All candidate states from adding block ``bi`` to ``state``.

        Candidates (slot x orientation) are scored in one batched pass:
        intra-block load rows come from the engine cache, then a single
        ``link_loads_many`` scatter adds every candidate's cross-block
        flows. Per-candidate results are bitwise-identical to the scalar
        per-candidate loop (the property suite pins this).
        """
        cfg = self.config
        intra = (self.bsrc == bi) & (self.bdst == bi)
        ies, ied, iev = self.srcs[intra], self.dsts[intra], self.vols[intra]
        placed_src = np.isin(self.bsrc, placed_blocks)
        placed_dst = np.isin(self.bdst, placed_blocks)
        cross = ((self.bsrc == bi) & placed_dst) | (placed_src & (self.bdst == bi))
        ces, ced, cev = self.srcs[cross], self.dsts[cross], self.vols[cross]

        cands = [
            (slot, oi)
            for slot in self.allowed_slots(bi)
            if slot not in state.used_slots
            for oi in range(len(self.orients[bi]))
        ]
        out: list[_State] = []
        if cfg.evaluator == "lp":
            for slot, oi in cands:
                dense = self.positions_for(bi, slot, oi)
                pos = state.positions.copy()
                sel = dense >= 0
                pos[sel] = dense[sel]
                mcl = self._mcl_lp(pos)
                out.append(_State(
                    None, pos, state.used_slots | {slot}, mcl, self.seq
                ))
                self.seq += 1
            return out

        if not cands:
            return out
        denses = [self.positions_for(bi, slot, oi) for slot, oi in cands]
        loads2d = state.loads[None, :] + self._intra_loads(
            bi, cands, denses, ies, ied, iev
        )
        if len(ces):
            dces = np.stack([d[ces] for d in denses])
            dced = np.stack([d[ced] for d in denses])
            ps = np.where(dces >= 0, dces, state.positions[ces][None, :])
            pd = np.where(dced >= 0, dced, state.positions[ced][None, :])
            self.router.link_loads_many(ps, pd, cev, out=loads2d)
        self.evaluations += len(cands)
        mcls = loads2d.max(axis=1) if loads2d.shape[1] else None
        for ci, (slot, oi) in enumerate(cands):
            dense = denses[ci]
            pos = state.positions.copy()
            sel = dense >= 0
            pos[sel] = dense[sel]
            mcl = float(mcls[ci]) if mcls is not None else 0.0
            out.append(_State(
                loads2d[ci], pos, state.used_slots | {slot}, mcl, self.seq
            ))
            self.seq += 1
        return out

    def top_n(self, states: list[_State]) -> list[_State]:
        states.sort(key=lambda s: (s.mcl, s.order))
        return states[: self.config.beam_width]

    def empty_state(self) -> _State:
        loads = (
            None if self.config.evaluator == "lp"
            else np.zeros(self.topo.num_channel_slots)
        )
        return _State(
            loads, np.full(self.num_clusters, -1, dtype=np.int64),
            frozenset(), 0.0, -1,
        )

    # -- driver --------------------------------------------------------------
    def run(self) -> MergeOutcome:
        blocks = self.blocks
        if len(blocks) == 1:
            dense = self.positions_for(0, 0, 0)
            if self.config.evaluator == "lp":
                mcl = self._mcl_lp(dense)
            else:
                loads = self.router.link_loads(
                    dense[self.srcs], dense[self.dsts], self.vols
                )
                self.evaluations += 1
                mcl = float(loads.max()) if loads.size else 0.0
            return MergeOutcome(
                positions={int(c): int(dense[c]) for c in blocks[0].clusters},
                mcl=mcl, evaluations=self.evaluations,
                orientations=[self.orients[0][0]],
            )

        order = self.merge_order()
        placed: list[int] = []
        states = [self.empty_state()]
        beam_hist = get_registry().histogram("merge.beam_candidates")
        # Keeping *all* first-block orientations (no pruning at step 0)
        # reproduces the paper's exhaustive first-pair exploration: the
        # first block's orientations all tie on MCL, so pruning there would
        # arbitrarily discard pair candidates. Repositioning multiplies the
        # branching, so it prunes every step instead (bounded search).
        for step, bi in enumerate(order):
            bi = int(bi)
            prune = self.config.reposition or step != 0
            new_states: list[_State] = []
            for st in states:
                new_states.extend(self.expand(st, bi, placed))
                if prune and len(new_states) > max(
                    4096, 8 * self.config.beam_width
                ):
                    # top-N selection commutes with chunking; this only
                    # bounds memory, never changes the result.
                    new_states = self.top_n(new_states)
            beam_hist.record(len(new_states))
            states = self.top_n(new_states) if prune else new_states
            if prune:
                # Surviving loads are rows (views) of per-expand batch
                # buffers; detach them so pruned siblings' buffers free.
                for st in states:
                    if st.loads is not None and st.loads.base is not None:
                        st.loads = st.loads.copy()
            placed.append(bi)
        states = self.top_n(states)
        best = states[0]
        positions = {
            int(c): int(best.positions[c]) for b in blocks for c in b.clusters
        }
        return MergeOutcome(
            positions=positions, mcl=best.mcl, evaluations=self.evaluations,
        )


def merge_blocks(
    topo: CartesianTopology,
    router: Router,
    blocks: list[MergeBlock],
    srcs: np.ndarray,
    dsts: np.ndarray,
    vols: np.ndarray,
    config: MergeConfig,
    num_clusters: int,
) -> MergeOutcome:
    """Merge ``blocks`` within ``topo``, minimizing MCL of the given flows.

    ``srcs``/``dsts`` are *cluster ids*; only flows with both endpoints
    inside the union of the blocks are evaluated (the rest belong to outer
    levels of the hierarchy).
    """
    outcome = _MergeEngine(
        topo, router, blocks, srcs, dsts, vols, config, num_clusters
    ).run()
    get_registry().counter("merge.evaluations").inc(outcome.evaluations)
    return outcome


def first_fit_merge(
    topo: CartesianTopology, blocks: list[MergeBlock]
) -> MergeOutcome:
    """Place every block at its own slot with the identity orientation.

    The bottom rung of the phase-3 degradation ladder: no orientation
    search, no MCL evaluations — the phase-2 relative arrangement is kept
    verbatim, which is always a valid (if unoptimized) placement.
    """
    positions: dict[int, int] = {}
    for b in blocks:
        coords = np.asarray(b.origin, dtype=np.int64)[None, :] + b.local_coords
        nodes = topo.index(coords)
        for c, node in zip(b.clusters, np.atleast_1d(nodes)):
            positions[int(c)] = int(node)
    return MergeOutcome(positions=positions, mcl=float("nan"), evaluations=0)


def hierarchical_merge(
    topo: CartesianTopology,
    router: Router,
    cube_h: CubeHierarchy,
    node_graph: CommGraph,
    assignment: np.ndarray,
    config: MergeConfig,
    budget=None,
    degradation=None,
) -> tuple[np.ndarray, dict]:
    """Run phase 3 over the whole hierarchy, bottom-up.

    Parameters
    ----------
    assignment:
        Phase-2 placement (node-cluster -> node id); must be a bijection.
    budget / degradation:
        Optional :class:`~repro.resilience.Budget` and
        :class:`~repro.resilience.DegradationLog`. When the budget runs
        out mid-merge the remaining parent merges are skipped — the
        incoming (phase-2) arrangement is kept for them, i.e. a first-fit
        orientation — and one degradation event is recorded.

    Returns
    -------
    (new_assignment, stats) where stats counts evaluations and cache hits.
    """
    V = topo.num_nodes
    if len(assignment) != V or len(np.unique(assignment)) != V:
        raise ConfigError("assignment must be a bijection of clusters onto nodes")
    assignment = assignment.copy()
    stats = {"evaluations": 0, "cache_hits": 0, "levels": {}}
    cache: dict[tuple, dict[int, np.ndarray]] = {}

    if budget is not None and budget.enforce("phase3"):
        if degradation is not None:
            degradation.record("phase3", "merge->first-fit",
                               "budget-exhausted", level=2)
        stats["degraded"] = True
        return assignment, stats

    for level in range(2, cube_h.num_levels + 1):
        if budget is not None and budget.enforce("phase3"):
            if degradation is not None:
                degradation.record("phase3", "merge->first-fit",
                                   "budget-exhausted", level=level)
            stats["degraded"] = True
            break
        inv = np.empty(V, dtype=np.int64)
        inv[assignment] = np.arange(V)
        level_mcls = []
        for pb in range(cube_h.num_blocks(level)):
            if budget is not None and pb and budget.enforce("phase3"):
                # Mid-level exhaustion: the parents already merged keep
                # their searched orientations, the rest keep phase-2's
                # arrangement — still bijective (merges only permute
                # within their own parent block).
                if degradation is not None:
                    degradation.record("phase3", "merge->first-fit",
                                       "budget-exhausted",
                                       level=level, parent=pb)
                stats["degraded"] = True
                stats["levels"][level] = level_mcls
                return assignment, stats
            blocks, local_index = _parent_blocks(
                topo, cube_h, level, pb, assignment, inv
            )
            srcs, dsts, vols = node_graph.srcs, node_graph.dsts, node_graph.vols
            sig = _merge_signature(level, blocks, local_index,
                                   srcs, dsts, vols)
            cached = cache.get(sig)
            parent_origin = _parent_origin(topo, cube_h, level, pb)
            if cached is not None:
                stats["cache_hits"] += 1
                get_registry().counter("merge.cache_hits").inc()
                for local, rel in cached.items():
                    cluster = local_index[local]
                    assignment[cluster] = int(topo.index(parent_origin + rel))
                continue
            cfg = MergeConfig(
                beam_width=config.beam_width,
                max_orientations=config.max_orientations,
                order_mode=config.order_mode,
                order_samples=config.order_samples,
                reposition=config.reposition,
                evaluator=config.evaluator,
                seed=config.seed + 1009 * level + pb,
            )
            with span("rahtm.merge.block", level=level, parent=pb) as msp:
                outcome = merge_blocks(
                    topo, router, blocks, srcs, dsts, vols, cfg,
                    num_clusters=node_graph.num_tasks,
                )
                msp.set(mcl=outcome.mcl, evaluations=outcome.evaluations)
            stats["evaluations"] += outcome.evaluations
            level_mcls.append(outcome.mcl)
            rel_by_local = {}
            cluster_to_local = {int(c): i for i, c in enumerate(local_index)}
            for cluster, node in outcome.positions.items():
                assignment[cluster] = node
                rel = topo.coords(node) - parent_origin
                rel_by_local[cluster_to_local[cluster]] = rel
            cache[sig] = rel_by_local
        stats["levels"][level] = level_mcls
    return assignment, stats


def _parent_origin(topo, cube_h, level, pb) -> np.ndarray:
    nodes = cube_h.block_nodes(level, pb)
    return topo.coords(int(nodes[0]))


def _parent_blocks(topo, cube_h, level, pb, assignment, inv):
    """Child MergeBlocks of a parent, plus the canonical local cluster order.

    ``local_index[i]`` is the global cluster id of canonical local index
    ``i`` (children in corner order, clusters in within-child C order).
    """
    branching = 2**cube_h.n
    blocks = []
    local_index: list[int] = []
    for corner in range(branching):
        origin = cube_h.corner_origin(level, pb, corner)
        node0 = int(topo.index(origin))
        child_block = cube_h.block_of(node0, level - 1)
        child_nodes = cube_h.block_nodes(level - 1, int(child_block))
        clusters = inv[child_nodes]
        coords = topo.coords(assignment[clusters]) - origin[None, :]
        side = 2 ** (level - 1)
        shape = tuple(
            side if d in cube_h.dims else topo.shape[d]
            for d in range(topo.ndim)
        )
        blocks.append(MergeBlock(
            origin=origin, shape=shape,
            clusters=clusters.copy(), local_coords=coords,
        ))
        local_index.extend(int(c) for c in clusters)
    return blocks, np.asarray(local_index, dtype=np.int64)


def _merge_signature(level, blocks, local_index, srcs, dsts, vols) -> tuple:
    """Canonical key of a parent merge problem for symmetry copying."""
    lookup = {int(c): i for i, c in enumerate(local_index)}
    edges = []
    for s, d, v in zip(srcs, dsts, vols):
        ls, ld = lookup.get(int(s)), lookup.get(int(d))
        if ls is not None and ld is not None and ls != ld:
            edges.append((ls, ld, round(float(v), 9)))
    coords_sig = tuple(
        tuple(map(int, row)) for b in blocks for row in b.local_coords
    )
    return (level, tuple(b.shape for b in blocks), coords_sig,
            tuple(sorted(edges)))
