"""Phase 2's optimizer: the Table II MILP and its companions.

The mixed-integer linear program maps a cluster graph onto a small 2-ary
n-cube while *jointly* choosing the routing, minimizing the maximum
channel load:

- **C1** — every cluster on exactly one vertex, every vertex holding at
  most one cluster (binary placement variables ``g[a, v]``).
- **C2** — per-flow conservation with *floating endpoints*: the net
  outflow at vertex ``v`` equals ``l_i * (g[s_i, v] - g[d_i, v])``, so the
  same constraints serve source, destination, and intermediate vertices.
- **C3** — minimal routing: per flow and dimension a binary ``r[i, dim]``
  allows flow in only one direction (the paper notes this is exact for the
  mesh sub-cubes; the root's 2-ary torus reduces to a mesh with double-wide
  links, which we model as arc multiplicity 2).

The objective is the max channel load ``z`` with ``sum_i f_i(arc) <=
mult(arc) * z`` per arc.

Companions: :func:`solve_routing_lp` (optimal minimal routing for a fixed
placement — pure LP), :func:`brute_force_mapping` (exhaustive placement
search for cross-checking optimality on tiny cubes), and
:func:`greedy_assignment` (the no-MILP fallback/ablation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import SolverError
from repro.lp import Model, SolveStatus, lpsum
from repro.observability.metrics import get_registry
from repro.observability.trace import span
from repro.resilience import faultinject
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.topology.cartesian import CartesianTopology
from repro.utils.logconf import get_logger

__all__ = [
    "CubeArcs",
    "MILPResult",
    "solve_cluster_milp",
    "solve_routing_lp",
    "brute_force_mapping",
    "greedy_assignment",
    "static_assignment",
]

log = get_logger("core.milp")


@dataclass(frozen=True)
class CubeArcs:
    """Directed arcs of a small cube with parallel channels merged.

    Attributes
    ----------
    srcs, dsts:
        Arc endpoints (node ids).
    dims:
        Dimension each arc spans.
    signs:
        Mesh-direction label (+1 / -1); for arity-2 torus dimensions the
        two parallel channels merge into one arc labelled by coordinate
        order, carrying ``mult == 2``.
    mults:
        Channel multiplicity (capacity in links).
    """

    srcs: np.ndarray
    dsts: np.ndarray
    dims: np.ndarray
    signs: np.ndarray
    mults: np.ndarray

    @property
    def num_arcs(self) -> int:
        return len(self.srcs)

    @classmethod
    def from_topology(cls, topo: CartesianTopology) -> "CubeArcs":
        coords = topo.coords_array
        merged: dict[tuple[int, int, int], list] = {}
        for slot in np.flatnonzero(topo.channel_valid):
            u = int(topo.channel_src[slot])
            v = int(topo.channel_dst[slot])
            d = int(topo.channel_dim[slot])
            key = (u, v, d)
            if key in merged:
                merged[key][1] += 1
                continue
            cu, cv = int(coords[u, d]), int(coords[v, d])
            k = topo.shape[d]
            if abs(cv - cu) == 1:
                sign = 1 if cv > cu else -1
            else:  # wraparound hop on a k>2 torus keeps its slot direction
                sign = 1 if topo.channel_dir[slot] == 0 else -1
            merged[key] = [sign, 1]
        keys = sorted(merged)
        return cls(
            srcs=np.array([k[0] for k in keys], dtype=np.int64),
            dsts=np.array([k[1] for k in keys], dtype=np.int64),
            dims=np.array([k[2] for k in keys], dtype=np.int64),
            signs=np.array([merged[k][0] for k in keys], dtype=np.int64),
            mults=np.array([merged[k][1] for k in keys], dtype=np.float64),
        )


@dataclass
class MILPResult:
    """Outcome of a cluster-mapping solve."""

    assignment: np.ndarray  # cluster -> vertex
    mcl: float
    optimal: bool
    status: str
    solve_seconds: float = 0.0
    num_vars: int = 0
    num_constraints: int = 0
    method: str = "milp"
    extras: dict = field(default_factory=dict)


def _network_flows(graph: CommGraph):
    mask = graph.srcs != graph.dsts
    return graph.srcs[mask], graph.dsts[mask], graph.vols[mask]


def solve_cluster_milp(
    cube: CartesianTopology,
    graph: CommGraph,
    time_limit: float | None = 120.0,
    mip_rel_gap: float | None = None,
    enforce_minimal: bool = True,
    fix_first: bool = True,
    warm_assignment: np.ndarray | None = None,
) -> MILPResult:
    """Solve the Table II MILP: place ``graph``'s clusters on ``cube``.

    Parameters
    ----------
    cube:
        Target topology (a 2-ary n-cube in RAHTM; any small mesh/torus
        works).
    graph:
        Cluster communication graph with ``num_tasks <= cube.num_nodes``.
    time_limit, mip_rel_gap:
        Solver budget; hitting the limit with an incumbent returns it with
        ``optimal=False``. No incumbent at all falls back to
        :func:`greedy_assignment`.
    enforce_minimal:
        Emit the C3 direction constraints.
    fix_first:
        Pin the heaviest cluster to vertex 0 — valid symmetry breaking on
        vertex-transitive cubes, cuts solve time substantially.
    warm_assignment:
        Optional injective placement to warm-start from (e.g. the previous
        hierarchy level's solution to a congruent subproblem). Its
        LP-routed MCL is a valid incumbent objective, so ``z`` is bounded
        above by it — pruning the branch-and-bound tree without ever
        cutting off the optimum. Ignored if it is not a valid placement.
    """
    A = graph.num_tasks
    V = cube.num_nodes
    if A > V:
        raise SolverError(f"{A} clusters exceed {V} cube vertices")
    faultinject.inject("solver-fail")
    faultinject.inject("solver-slow")
    srcs, dsts, vols = _network_flows(graph)
    m = len(srcs)
    if m == 0:
        return MILPResult(
            assignment=np.arange(A, dtype=np.int64),
            mcl=0.0, optimal=True, status="trivial", method="trivial",
        )
    arcs = CubeArcs.from_topology(cube)
    E = arcs.num_arcs

    model = Model(f"rahtm-fission-{A}x{V}")
    z = model.add_var("mcl", lb=0.0)
    g = [[model.add_var(f"g[{a},{v}]", binary=True) for v in range(V)]
         for a in range(A)]
    f = [[model.add_var(f"f[{i},{e}]", lb=0.0, ub=float(vols[i]))
          for e in range(E)] for i in range(m)]

    # C1: each cluster on exactly one vertex; each vertex at most one cluster.
    for a in range(A):
        model.add_constraint(lpsum(g[a]) == 1, name=f"C1a[{a}]")
    for v in range(V):
        model.add_constraint(lpsum(g[a][v] for a in range(A)) <= 1,
                             name=f"C1v[{v}]")

    # Arc incidence lists per vertex.
    out_arcs = [np.flatnonzero(arcs.srcs == v) for v in range(V)]
    in_arcs = [np.flatnonzero(arcs.dsts == v) for v in range(V)]

    # C2: flow conservation with floating endpoints.
    for i in range(m):
        li = float(vols[i])
        si, di = int(srcs[i]), int(dsts[i])
        for v in range(V):
            net = lpsum(f[i][int(e)] for e in out_arcs[v]) - lpsum(
                f[i][int(e)] for e in in_arcs[v]
            )
            model.add_constraint(
                net == li * g[si][v] - li * g[di][v], name=f"C2[{i},{v}]"
            )

    # C3: minimal routing via one-direction-per-dimension binaries.
    if enforce_minimal:
        r = [[model.add_var(f"r[{i},{d}]", binary=True)
              for d in range(cube.ndim)] for i in range(m)]
        for i in range(m):
            li = float(vols[i])
            for e in range(E):
                d = int(arcs.dims[e])
                if arcs.signs[e] > 0:
                    model.add_constraint(f[i][e] <= li * r[i][d])
                else:
                    model.add_constraint(f[i][e] <= li * (1 - r[i][d]))

    # Objective: minimize max per-link load (arc load / multiplicity).
    for e in range(E):
        model.add_constraint(
            lpsum(f[i][e] for i in range(m)) <= float(arcs.mults[e]) * z,
            name=f"mcl[{e}]",
        )
    if fix_first:
        heaviest = int(np.argmax(np.bincount(
            np.r_[srcs, dsts], weights=np.r_[vols, vols], minlength=A
        )))
        model.add_constraint(g[heaviest][0] == 1, name="symbreak")
    warm_mcl = None
    if warm_assignment is not None:
        warm = np.asarray(warm_assignment, dtype=np.int64)
        if (
            warm.shape == (A,)
            and len(np.unique(warm)) == A
            and warm.min() >= 0
            and warm.max() < V
        ):
            # The warm placement with optimal minimal routing is feasible,
            # so its objective is a true upper bound on z. The slack term
            # absorbs solver tolerance so the incumbent itself is never
            # excluded numerically.
            warm_mcl = solve_routing_lp(cube, warm[srcs], warm[dsts], vols)
            model.add_constraint(
                z <= warm_mcl * (1.0 + 1e-7) + 1e-9, name="warmbound"
            )
    model.set_objective(z, sense="min")

    registry = get_registry()
    registry.histogram("milp.lp_rows").record(model.num_constraints)
    registry.histogram("milp.lp_cols").record(model.num_vars)
    with span("milp.solve", clusters=A, vertices=V,
              rows=model.num_constraints, cols=model.num_vars) as solve_span:
        sol = model.solve(time_limit=time_limit, mip_rel_gap=mip_rel_gap)
        solve_span.set(status=sol.status.value)
    registry.counter("milp.solves").inc()
    registry.histogram("milp.solve_seconds").record(sol.solve_seconds)
    if not sol.has_solution:
        log.warning("MILP found no incumbent (%s); greedy fallback", sol.status)
        assignment, mcl = greedy_assignment(cube, graph)
        return MILPResult(
            assignment=assignment, mcl=mcl, optimal=False,
            status=f"fallback:{sol.status.value}", method="greedy",
            num_vars=model.num_vars, num_constraints=model.num_constraints,
        )
    assignment = np.empty(A, dtype=np.int64)
    for a in range(A):
        vals = np.array([sol.value(g[a][v]) for v in range(V)])
        assignment[a] = int(np.argmax(vals))
    if len(np.unique(assignment)) != A:
        raise SolverError("MILP solution decodes to a non-injective placement")
    return MILPResult(
        assignment=assignment,
        mcl=float(sol.objective),
        optimal=sol.is_optimal,
        status=sol.status.value,
        solve_seconds=sol.solve_seconds,
        num_vars=model.num_vars,
        num_constraints=model.num_constraints,
        extras={} if warm_mcl is None else {"warm_mcl": float(warm_mcl)},
    )


def solve_routing_lp(
    cube: CartesianTopology,
    srcs,
    dsts,
    vols,
    minimal: bool = True,
    time_limit: float | None = None,
) -> float:
    """Optimal-MCL *routing* of fixed-placement flows (a pure LP).

    This answers "what could an ideal (minimal) adaptive router achieve
    for this placement" — the quantity the MILP optimizes over placements.
    With ``minimal=True`` each flow may only use arcs whose direction makes
    progress toward its destination (both directions on tie dimensions),
    which makes every unit of flow traverse a minimal path.
    """
    srcs = np.asarray(srcs, dtype=np.int64)
    dsts = np.asarray(dsts, dtype=np.int64)
    vols = np.asarray(vols, dtype=np.float64)
    keep = srcs != dsts
    srcs, dsts, vols = srcs[keep], dsts[keep], vols[keep]
    m = len(srcs)
    if m == 0:
        return 0.0
    arcs = CubeArcs.from_topology(cube)
    E = arcs.num_arcs
    model = Model("routing-lp")
    z = model.add_var("mcl", lb=0.0)

    deltas = cube.delta(srcs, dsts)
    fvars: list[dict[int, object]] = []
    for i in range(m):
        allowed: dict[int, object] = {}
        for e in range(E):
            d = int(arcs.dims[e])
            off = int(deltas[i, d])
            k = cube.shape[d]
            if off == 0:
                continue
            tie = cube.wrap[d] and k % 2 == 0 and abs(off) == k // 2
            if minimal and not tie and np.sign(off) != arcs.signs[e]:
                continue
            allowed[e] = model.add_var(f"f[{i},{e}]", lb=0.0, ub=float(vols[i]))
        fvars.append(allowed)

    for i in range(m):
        li = float(vols[i])
        si, di = int(srcs[i]), int(dsts[i])
        for v in range(cube.num_nodes):
            terms = [fvars[i][e] for e in fvars[i] if arcs.srcs[e] == v]
            terms_in = [fvars[i][e] for e in fvars[i] if arcs.dsts[e] == v]
            net = lpsum(terms) - lpsum(terms_in)
            rhs = li * ((v == si) - (v == di))
            model.add_constraint(net == rhs)
    for e in range(E):
        terms = [fvars[i][e] for i in range(m) if e in fvars[i]]
        if terms:
            model.add_constraint(lpsum(terms) <= float(arcs.mults[e]) * z)
    model.set_objective(z, sense="min")
    registry = get_registry()
    registry.counter("lp.routing_solves").inc()
    registry.histogram("lp.lp_rows").record(model.num_constraints)
    registry.histogram("lp.lp_cols").record(model.num_vars)
    sol = model.solve(time_limit=time_limit, raise_on_infeasible=True)
    registry.histogram("lp.solve_seconds").record(sol.solve_seconds)
    if not sol.has_solution:
        raise SolverError(f"routing LP failed: {sol.status}")
    return float(sol.objective)


def brute_force_mapping(
    cube: CartesianTopology,
    graph: CommGraph,
    evaluator: str = "lp",
    fix_first: bool = True,
) -> MILPResult:
    """Exhaustive placement search for tiny cubes (testing oracle).

    ``evaluator="lp"`` scores each placement with :func:`solve_routing_lp`
    (matches the MILP objective exactly); ``"uniform"`` scores with the
    all-minimal-paths router (matches the merge phase's evaluator).
    """
    A, V = graph.num_tasks, cube.num_nodes
    if A > V:
        raise SolverError(f"{A} clusters exceed {V} vertices")
    if V > 8:
        raise SolverError(f"brute force limited to 8 vertices, got {V}")
    srcs, dsts, vols = _network_flows(graph)
    router = MinimalAdaptiveRouter(cube) if evaluator == "uniform" else None
    best_mcl, best_assign = np.inf, None
    tried = 0
    first_positions = [0] if (fix_first and A == V) else range(V)
    for v0 in first_positions:
        others = [v for v in range(V) if v != v0]
        for perm in itertools.permutations(others, A - 1):
            assignment = np.array((v0,) + perm, dtype=np.int64)
            ns, nd = assignment[srcs], assignment[dsts]
            if evaluator == "uniform":
                mcl = router.max_channel_load(ns, nd, vols)
            elif evaluator == "lp":
                mcl = solve_routing_lp(cube, ns, nd, vols)
            else:
                raise SolverError(f"unknown evaluator {evaluator!r}")
            tried += 1
            if mcl < best_mcl - 1e-9:
                best_mcl, best_assign = mcl, assignment
    assert best_assign is not None
    return MILPResult(
        assignment=best_assign, mcl=float(best_mcl), optimal=True,
        status="enumerated", method=f"brute-force:{evaluator}",
        extras={"placements_tried": tried},
    )


def greedy_assignment(
    cube: CartesianTopology, graph: CommGraph
) -> tuple[np.ndarray, float]:
    """Volume-ordered greedy placement scored by the uniform router.

    Fallback when the MILP yields no incumbent; also the "no-MILP"
    ablation of the paper's optimal-leaf-solve design choice.
    """
    A, V = graph.num_tasks, cube.num_nodes
    srcs, dsts, vols = _network_flows(graph)
    router = MinimalAdaptiveRouter(cube)
    order = np.argsort(
        -np.bincount(np.r_[srcs, dsts], weights=np.r_[vols, vols], minlength=A),
        kind="stable",
    )
    assignment = np.full(A, -1, dtype=np.int64)
    free = [True] * V
    for a in order:
        placed = assignment >= 0
        best_v, best_mcl = -1, np.inf
        for v in range(V):
            if not free[v]:
                continue
            assignment[a] = v
            mask = placed.copy()
            mask[a] = True
            emask = mask[srcs] & mask[dsts]
            mcl = router.max_channel_load(
                assignment[srcs[emask]], assignment[dsts[emask]], vols[emask]
            )
            if mcl < best_mcl - 1e-12:
                best_v, best_mcl = v, mcl
        assignment[a] = best_v
        free[best_v] = False
    ns, nd = assignment[srcs], assignment[dsts]
    return assignment, router.max_channel_load(ns, nd, vols)


def static_assignment(
    cube: CartesianTopology, graph: CommGraph
) -> tuple[np.ndarray, float]:
    """Dimension-order placement: cluster ``i`` on vertex ``i`` (C order).

    The bottom rung of the phase-2 degradation ladder — O(A) with no MCL
    evaluations at all, for when the budget cannot even afford the greedy
    placer. Always a valid injective placement.
    """
    A = graph.num_tasks
    if A > cube.num_nodes:
        raise SolverError(f"{A} clusters exceed {cube.num_nodes} vertices")
    assignment = np.arange(A, dtype=np.int64)
    srcs, dsts, vols = _network_flows(graph)
    if len(srcs) == 0:
        return assignment, 0.0
    router = MinimalAdaptiveRouter(cube)
    return assignment, router.max_channel_load(
        assignment[srcs], assignment[dsts], vols
    )
