"""Optional post-merge refinement (Section VI: "techniques to reduce the
mapping computation without sacrificing the quality of mapping").

A cheap annealed pairwise-swap pass over the final cluster placement,
driven by the same MCL objective and incremental load updates. RAHTM's
hierarchical structure restricts mappings to compositions of block
orientations; this pass explores the unstructured neighborhood the
hierarchy cannot reach and typically shaves a few percent of MCL at the
cost of seconds.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import ConfigError
from repro.routing.base import Router
from repro.utils.logconf import get_logger
from repro.utils.rng import as_rng

__all__ = ["refine_assignment"]

log = get_logger("core.refine")


def refine_assignment(
    router: Router,
    node_graph: CommGraph,
    assignment: np.ndarray,
    iterations: int,
    seed=0,
    temperature: float | None = None,
) -> tuple[np.ndarray, float]:
    """Annealed cluster-swap refinement of a placement.

    Parameters
    ----------
    router:
        Evaluation router (bound to the target topology).
    node_graph:
        Cluster-level communication graph.
    assignment:
        Bijective cluster -> node placement to refine (not modified).
    iterations:
        Swap proposals; 0 returns the input unchanged.
    temperature:
        Initial annealing temperature; defaults to 2% of the starting MCL.

    Returns
    -------
    (refined_assignment, refined_mcl)
    """
    V = router.topology.num_nodes
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    if len(assignment) != V or len(np.unique(assignment)) != V:
        raise ConfigError("assignment must be a bijection of clusters onto nodes")
    mask = node_graph.srcs != node_graph.dsts
    srcs, dsts = node_graph.srcs[mask], node_graph.dsts[mask]
    vols = node_graph.vols[mask]

    incident: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * node_graph.num_tasks
    by_cluster: dict[int, list[int]] = {}
    for e, (s, d) in enumerate(zip(srcs, dsts)):
        by_cluster.setdefault(int(s), []).append(e)
        by_cluster.setdefault(int(d), []).append(e)
    for c, es in by_cluster.items():
        incident[c] = np.unique(np.asarray(es, dtype=np.int64))

    loads = router.link_loads(assignment[srcs], assignment[dsts], vols)
    cost = float(loads.max()) if loads.size else 0.0
    if iterations <= 0 or cost == 0.0:
        return assignment, cost

    rng = as_rng(seed)
    t0 = temperature if temperature is not None else 0.02 * cost
    alpha = (1e-3) ** (1.0 / iterations)
    temp = t0
    best, best_cost = assignment.copy(), cost
    n = node_graph.num_tasks
    # Scatter plans replay each proposal's two load updates bitwise; a
    # rejected proposal reuses both plans with negated volumes instead of
    # recomputing the expansion (the propose/rollback symmetry). When the
    # all-pairs tables fit, per-pair expansions are additionally cached
    # across iterations (endpoints recur constantly in a swap walk). The
    # scalar escape hatch keeps the original per-call path.
    use_plans = not router.scalar_fallback
    pair_mode = use_plans and router.pair_tables_available()
    for _ in range(iterations):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a == b:
            temp *= alpha
            continue
        edges = np.union1d(incident[a], incident[b])
        es, ed, ev = srcs[edges], dsts[edges], vols[edges]
        if pair_mode:
            plan_old = router.pair_scatter(assignment[es], assignment[ed], ev)
            plan_old.add_into(loads, -1.0)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            plan_new = router.pair_scatter(assignment[es], assignment[ed], ev)
            plan_new.add_into(loads, 1.0)
        elif use_plans:
            nev = -ev
            plan_old = router.scatter_plan(assignment[es], assignment[ed])
            plan_old.add_into(loads, nev)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            plan_new = router.scatter_plan(assignment[es], assignment[ed])
            plan_new.add_into(loads, ev)
        else:
            nev = -ev
            router.link_loads(assignment[es], assignment[ed], nev, out=loads)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            router.link_loads(assignment[es], assignment[ed], ev, out=loads)
        new_cost = float(loads.max())
        delta = new_cost - cost
        if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-30)):
            cost = new_cost
            if cost < best_cost - 1e-12:
                best_cost, best = cost, assignment.copy()
        elif pair_mode:
            plan_new.add_into(loads, -1.0)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            plan_old.add_into(loads, 1.0)
        elif use_plans:
            plan_new.add_into(loads, nev)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            plan_old.add_into(loads, ev)
        else:
            router.link_loads(assignment[es], assignment[ed], nev, out=loads)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            router.link_loads(assignment[es], assignment[ed], ev, out=loads)
        temp *= alpha
    log.debug("refined MCL to %.6g in %d proposals", best_cost, iterations)
    return best, best_cost
