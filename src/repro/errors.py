"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "MappingError",
    "CommGraphError",
    "WorkloadError",
    "SolverError",
    "InfeasibleError",
    "ConfigError",
    "SimulationError",
    "ServiceError",
    "StoreLockError",
    "JobTimeoutError",
    "DeadlineExceededError",
    "CheckpointError",
    "FaultInjectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Invalid topology construction or query (bad shape, unknown node...)."""


class RoutingError(ReproError):
    """Routing failure: no legal path, malformed flow, unsupported topology."""


class MappingError(ReproError):
    """Invalid task-to-node mapping (non-bijective, capacity violation...)."""


class CommGraphError(ReproError):
    """Malformed communication graph (negative volume, self-loop misuse...)."""


class WorkloadError(ReproError):
    """Workload generator misuse (non-square process count for BT...)."""


class SolverError(ReproError):
    """LP/MILP solver failure other than infeasibility (numerical, limits)."""


class InfeasibleError(SolverError):
    """The optimization model was proven infeasible."""


class ConfigError(ReproError):
    """Invalid experiment or algorithm configuration."""


class SimulationError(ReproError):
    """Network/application simulation failure."""


class ServiceError(ReproError):
    """Mapping-service failure (job spec, result store, executor, engine)."""


class StoreLockError(ServiceError):
    """A cross-process store lock could not be acquired before timeout."""


class JobTimeoutError(ServiceError):
    """A mapping job exceeded its configured time budget."""


class DeadlineExceededError(ReproError):
    """A deadline budget was exhausted under the ``fail`` policy.

    Under the default ``degrade`` policy budget exhaustion never raises —
    each phase falls down its degradation ladder instead.
    """


class CheckpointError(ReproError):
    """Phase-checkpoint persistence failure (malformed state, bad store)."""


class FaultInjectionError(ReproError):
    """An injected fault from the chaos harness (never raised in production
    unless fault injection was explicitly armed)."""
