"""Logging configuration.

The library never calls ``logging.basicConfig`` on import; it only attaches
a ``NullHandler`` to its root logger. Applications (and our experiment
runner) opt in to console output via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace.

    ``get_logger("core.merge")`` and ``get_logger("repro.core.merge")`` are
    equivalent.
    """
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` root logger (idempotent)."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(level)
            return
    handler = logging.StreamHandler()
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    root.addHandler(handler)
