"""Shared low-level utilities: validation, RNG, timing, logging."""

from repro.utils.validation import (
    check_positive_int,
    check_nonnegative,
    check_shape_tuple,
    check_probability,
    check_array_1d,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer, PhaseTimer
from repro.utils.logconf import get_logger

__all__ = [
    "check_positive_int",
    "check_nonnegative",
    "check_shape_tuple",
    "check_probability",
    "check_array_1d",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "PhaseTimer",
    "get_logger",
]
