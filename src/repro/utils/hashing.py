"""Canonical serialization and stable content hashing.

The service layer addresses cached mapping results by the SHA-256 of a
*canonical* JSON rendering of the job spec. Canonical means:

- dict keys are sorted, so insertion order never leaks into the hash;
- floats are rendered via :meth:`float.hex` (wrapped in a one-key dict so
  they cannot collide with genuine strings), so the hash never depends on
  ``repr`` shortest-float heuristics and distinguishes ``1`` from ``1.0``;
- only JSON-safe scalar types are accepted — anything else (numpy
  scalars, objects) must be converted by the caller, which keeps the
  hashed surface explicit.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical", "canonical_json", "stable_hash"]

_FLOAT_KEY = "__float__"


def canonical(obj):
    """Recursively rewrite ``obj`` into its canonical JSON-safe form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {_FLOAT_KEY: obj.hex()}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical dict keys must be str, got {type(key).__name__}"
                )
            out[key] = canonical(value)
        return out
    raise TypeError(f"cannot canonicalize {type(obj).__name__}")


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace, hex floats."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def stable_hash(obj) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
