"""Argument-validation helpers.

These raise :class:`ValueError`/:class:`TypeError` with uniform messages so
call sites stay one-liners. They are deliberately tiny — hot paths should
validate once at the public boundary, never inside inner loops.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "check_positive_int",
    "check_nonnegative",
    "check_shape_tuple",
    "check_probability",
    "check_array_1d",
    "check_power_of_two",
]


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative(value, name: str) -> float:
    """Return ``value`` as ``float`` if it is a non-negative number."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value}")
    return value


def check_shape_tuple(shape, name: str = "shape") -> tuple[int, ...]:
    """Validate a topology shape: a non-empty sequence of ints >= 1."""
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    if not isinstance(shape, Sequence) or len(shape) == 0:
        raise ValueError(f"{name} must be a non-empty sequence of ints")
    out = tuple(check_positive_int(k, f"{name}[{i}]") for i, k in enumerate(shape))
    return out


def check_probability(value, name: str) -> float:
    """Return ``value`` as float if it lies in [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_array_1d(arr, name: str, dtype=None) -> np.ndarray:
    """Coerce to a 1-D numpy array (optionally of ``dtype``), else raise."""
    out = np.asarray(arr, dtype=dtype)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    return out


def check_power_of_two(value, name: str) -> int:
    """Return ``value`` if it is a positive power of two."""
    value = check_positive_int(value, name)
    if value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value
