"""Wall-clock timing helpers used by the experiment harness.

The paper reports offline mapping times per phase (Section V-B); the
:class:`PhaseTimer` accumulates named phase durations so the optimization
time experiment can report the same breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Timer", "PhaseTimer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    >>> pt = PhaseTimer()
    >>> with pt.phase("clustering"):
    ...     pass
    >>> "clustering" in pt.totals
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            dt = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total(self) -> float:
        """Sum of all phase durations in seconds."""
        return sum(self.totals.values())

    def report(self) -> str:
        """Human-readable per-phase breakdown, longest first."""
        lines = ["phase                          total_s   calls"]
        for name, tot in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<30} {tot:8.3f} {self.counts[name]:7d}")
        lines.append(f"{'TOTAL':<30} {self.total:8.3f}")
        return "\n".join(lines)
