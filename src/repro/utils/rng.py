"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an int, or an existing :class:`numpy.random.Generator`;
:func:`as_rng` normalizes all three. Experiments that fan out work derive
independent child streams with :func:`spawn_rngs` so results are
reproducible regardless of evaluation order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Normalize a seed-like argument into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent and stable across platforms.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        seed = int(seed.integers(0, 2**63 - 1))
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
