"""Task-to-node mappings and BG/Q mapfile I/O."""

from repro.mapping.mapping import Mapping
from repro.mapping.mapfile import write_mapfile, read_mapfile
from repro.mapping.serialize import save_mapping, load_mapping

__all__ = ["Mapping", "write_mapfile", "read_mapfile",
           "save_mapping", "load_mapping"]
