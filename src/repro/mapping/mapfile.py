"""BG/Q mapfile emission and parsing.

The BG/Q MPI runtime accepts arbitrary task placements from a *mapfile*:
one line per rank with the A B C D E T coordinates of that rank's slot
(Section II-B of the paper: "The MPI runtime allows for arbitrary
task-to-node mappings that can be read from a file"). RAHTM's output is
delivered to the machine in exactly this form, so the library can write
and read it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import MappingError
from repro.mapping.mapping import Mapping
from repro.topology.bgq import BGQTopology

__all__ = ["write_mapfile", "read_mapfile"]


def write_mapfile(path, mapping: Mapping, bgq: BGQTopology) -> None:
    """Write ``mapping`` as a BG/Q mapfile.

    Each line holds ``A B C D E T`` for one rank, rank order = task order.
    The T coordinate enumerates a task's slot index within its node in
    task-id order.
    """
    if mapping.topology is not bgq.network and mapping.topology != bgq.network:
        raise MappingError("mapping topology does not match the BG/Q network")
    if mapping.tasks_per_node > bgq.tasks_per_node:
        raise MappingError(
            f"mapping concentration {mapping.tasks_per_node} exceeds the "
            f"platform's {bgq.tasks_per_node}"
        )
    coords = bgq.network.coords(mapping.task_to_node)
    # T coordinate: occurrence index of each task on its node.
    order = np.argsort(mapping.task_to_node, kind="stable")
    t_coord = np.empty(mapping.num_tasks, dtype=np.int64)
    sorted_nodes = mapping.task_to_node[order]
    new_node = np.r_[True, sorted_nodes[1:] != sorted_nodes[:-1]]
    run_start = np.maximum.accumulate(np.where(new_node, np.arange(len(order)), 0))
    t_coord[order] = np.arange(len(order)) - run_start
    lines = [
        " ".join(map(str, list(c) + [int(t)]))
        for c, t in zip(coords, t_coord)
    ]
    Path(path).write_text("\n".join(lines) + "\n")


def read_mapfile(path, bgq: BGQTopology) -> Mapping:
    """Parse a BG/Q mapfile back into a :class:`Mapping`.

    The T coordinate is validated against the platform concentration but
    only node placement is retained (the network model has no intra-node
    structure).
    """
    rows = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 6:
            raise MappingError(
                f"mapfile line {lineno}: expected 6 coordinates, got {len(parts)}"
            )
        rows.append([int(p) for p in parts])
    if not rows:
        raise MappingError("mapfile is empty")
    arr = np.asarray(rows, dtype=np.int64)
    t = arr[:, 5]
    if t.min() < 0 or t.max() >= bgq.tasks_per_node:
        raise MappingError(
            f"T coordinate out of range [0, {bgq.tasks_per_node})"
        )
    nodes = bgq.network.index(arr[:, :5])
    return Mapping(bgq.network, nodes, tasks_per_node=bgq.tasks_per_node)
