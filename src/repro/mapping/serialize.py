"""Generic mapping persistence (.npz).

BG/Q mapfiles (:mod:`repro.mapping.mapfile`) are the machine-facing
format; this module is the library-facing one — it round-trips the
topology shape and concentration so a mapping can be validated against
the topology it is later applied to.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import MappingError
from repro.mapping.mapping import Mapping
from repro.topology.cartesian import CartesianTopology

__all__ = ["save_mapping", "load_mapping"]


def save_mapping(path, mapping: Mapping) -> None:
    """Write a mapping to ``path`` (.npz)."""
    topo = mapping.topology
    shape = getattr(topo, "shape", None)
    if shape is None:
        raise MappingError(
            "save_mapping requires a topology with a shape (Cartesian); "
            "for other topologies persist task_to_node yourself"
        )
    np.savez_compressed(
        Path(path),
        task_to_node=mapping.task_to_node,
        shape=np.asarray(shape, dtype=np.int64),
        wrap=np.asarray(getattr(topo, "wrap", ()), dtype=bool),
        tasks_per_node=np.int64(mapping.tasks_per_node),
    )


def load_mapping(path, topology: CartesianTopology | None = None) -> Mapping:
    """Read a mapping; rebuilds the topology unless one is supplied.

    A supplied topology is validated against the stored shape.
    """
    with np.load(Path(path)) as data:
        shape = tuple(int(s) for s in data["shape"])
        wrap = tuple(bool(w) for w in data["wrap"])
        if topology is None:
            topology = CartesianTopology(shape, wrap=wrap or True)
        elif tuple(topology.shape) != shape:
            raise MappingError(
                f"mapping was computed for shape {shape}, "
                f"given topology is {tuple(topology.shape)}"
            )
        return Mapping(
            topology, data["task_to_node"], int(data["tasks_per_node"])
        )
