"""Generic mapping persistence (.npz and JSON-ready dicts).

BG/Q mapfiles (:mod:`repro.mapping.mapfile`) are the machine-facing
format; this module is the library-facing one — it round-trips the
topology shape and concentration so a mapping can be validated against
the topology it is later applied to.

Besides the original ``.npz`` pair there is a JSON-safe dict codec used
by the service layer's content-addressed result store: mappings,
:class:`~repro.metrics.core.MappingReport` and
:class:`~repro.simulator.app.SimResult` round-trip exactly through
:func:`dumps`/:func:`loads` (JSON preserves Python floats bit-for-bit
via shortest-repr, and all integer payloads are exact).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import MappingError
from repro.mapping.mapping import Mapping
from repro.topology.cartesian import CartesianTopology

__all__ = [
    "save_mapping",
    "load_mapping",
    "mapping_to_dict",
    "mapping_from_dict",
    "report_to_dict",
    "report_from_dict",
    "simresult_to_dict",
    "simresult_from_dict",
    "dumps",
    "loads",
]


def save_mapping(path, mapping: Mapping) -> None:
    """Write a mapping to ``path`` (.npz)."""
    topo = mapping.topology
    shape = getattr(topo, "shape", None)
    if shape is None:
        raise MappingError(
            "save_mapping requires a topology with a shape (Cartesian); "
            "for other topologies persist task_to_node yourself"
        )
    np.savez_compressed(
        Path(path),
        task_to_node=mapping.task_to_node,
        shape=np.asarray(shape, dtype=np.int64),
        wrap=np.asarray(getattr(topo, "wrap", ()), dtype=bool),
        tasks_per_node=np.int64(mapping.tasks_per_node),
    )


def load_mapping(path, topology: CartesianTopology | None = None) -> Mapping:
    """Read a mapping; rebuilds the topology unless one is supplied.

    A supplied topology is validated against the stored shape.
    """
    with np.load(Path(path)) as data:
        shape = tuple(int(s) for s in data["shape"])
        wrap = tuple(bool(w) for w in data["wrap"])
        if topology is None:
            topology = CartesianTopology(shape, wrap=wrap or True)
        elif tuple(topology.shape) != shape:
            raise MappingError(
                f"mapping was computed for shape {shape}, "
                f"given topology is {tuple(topology.shape)}"
            )
        return Mapping(
            topology, data["task_to_node"], int(data["tasks_per_node"])
        )


# -- JSON-ready dict codec (service-layer artifacts) ---------------------------------
def mapping_to_dict(mapping: Mapping) -> dict:
    """A JSON-safe dict capturing the mapping and its topology."""
    topo = mapping.topology
    shape = getattr(topo, "shape", None)
    if shape is None:
        raise MappingError(
            "mapping_to_dict requires a topology with a shape (Cartesian); "
            "for other topologies persist task_to_node yourself"
        )
    return {
        "shape": [int(s) for s in shape],
        "wrap": [bool(w) for w in getattr(topo, "wrap", ())],
        "tasks_per_node": int(mapping.tasks_per_node),
        "task_to_node": [int(t) for t in mapping.task_to_node],
    }


def mapping_from_dict(data: dict, topology: CartesianTopology | None = None) -> Mapping:
    """Inverse of :func:`mapping_to_dict`; validates a supplied topology."""
    shape = tuple(int(s) for s in data["shape"])
    wrap = tuple(bool(w) for w in data["wrap"])
    if topology is None:
        topology = CartesianTopology(shape, wrap=wrap or True)
    elif tuple(topology.shape) != shape:
        raise MappingError(
            f"mapping was computed for shape {shape}, "
            f"given topology is {tuple(topology.shape)}"
        )
    return Mapping(
        topology,
        np.asarray(data["task_to_node"], dtype=np.int64),
        int(data["tasks_per_node"]),
    )


def report_to_dict(report) -> dict:
    """A :class:`~repro.metrics.core.MappingReport` as a JSON-safe dict."""
    return asdict(report)


def report_from_dict(data: dict):
    from repro.metrics.core import MappingReport

    return MappingReport(**{
        **{k: float(v) for k, v in data.items()},
        "max_dilation": int(data["max_dilation"]),
        "num_network_flows": int(data["num_network_flows"]),
    })


def simresult_to_dict(result) -> dict:
    """A :class:`~repro.simulator.app.SimResult` as a JSON-safe dict."""
    return asdict(result)


def simresult_from_dict(data: dict):
    from repro.simulator.app import SimResult

    return SimResult(**{k: float(v) for k, v in data.items()})


def _lazy_codecs():
    # Imported here to keep repro.mapping free of metrics/simulator imports
    # at module load (they import Mapping themselves).
    from repro.metrics.core import MappingReport
    from repro.simulator.app import SimResult

    return {
        "mapping": (Mapping, mapping_to_dict, mapping_from_dict),
        "report": (MappingReport, report_to_dict, report_from_dict),
        "simresult": (SimResult, simresult_to_dict, simresult_from_dict),
    }


def dumps(obj) -> str:
    """Serialize a Mapping / MappingReport / SimResult to a JSON string."""
    for kind, (cls, encode, _) in _lazy_codecs().items():
        if isinstance(obj, cls):
            return json.dumps({"kind": kind, "data": encode(obj)})
    raise MappingError(f"cannot serialize {type(obj).__name__}")


def loads(text: str):
    """Inverse of :func:`dumps`."""
    doc = json.loads(text)
    try:
        kind, data = doc["kind"], doc["data"]
    except (TypeError, KeyError) as exc:
        raise MappingError(f"malformed serialized object: {exc}") from exc
    codecs = _lazy_codecs()
    if kind not in codecs:
        raise MappingError(f"unknown serialized kind {kind!r}")
    return codecs[kind][2](data)
