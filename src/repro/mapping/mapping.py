"""The :class:`Mapping` of application tasks onto topology nodes.

A mapping assigns every task (MPI rank) a node id; multiple tasks may share
a node up to the concentration factor (``tasks_per_node``). The mapping is
the *output* of every mapper in this library and the *input* to every
metric and to the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import MappingError
from repro.topology.cartesian import CartesianTopology

__all__ = ["Mapping"]


class Mapping:
    """An assignment of tasks to topology nodes.

    Parameters
    ----------
    topology:
        Target network.
    task_to_node:
        Array ``node_id[task]``.
    tasks_per_node:
        Node capacity (concentration factor). Defaults to the smallest
        uniform capacity that fits, ``ceil(num_tasks / num_nodes)``.
    """

    def __init__(
        self,
        topology: CartesianTopology,
        task_to_node,
        tasks_per_node: int | None = None,
    ):
        self.topology = topology
        t2n = np.asarray(task_to_node, dtype=np.int64).ravel().copy()
        if t2n.size == 0:
            raise MappingError("mapping must place at least one task")
        if t2n.min() < 0 or t2n.max() >= topology.num_nodes:
            raise MappingError(
                f"node id out of range [0, {topology.num_nodes}) in mapping"
            )
        self.task_to_node = t2n
        self.num_tasks = len(t2n)
        if tasks_per_node is None:
            tasks_per_node = -(-self.num_tasks // topology.num_nodes)
        self.tasks_per_node = int(tasks_per_node)
        counts = np.bincount(t2n, minlength=topology.num_nodes)
        if counts.max() > self.tasks_per_node:
            raise MappingError(
                f"node {int(counts.argmax())} holds {int(counts.max())} tasks, "
                f"capacity is {self.tasks_per_node}"
            )
        self._node_counts = counts

    # -- constructors -------------------------------------------------------------
    @classmethod
    def identity(cls, topology: CartesianTopology,
                 tasks_per_node: int = 1) -> "Mapping":
        """Rank r on node ``r // tasks_per_node`` (node order = C order)."""
        n = topology.num_nodes * tasks_per_node
        return cls(topology, np.arange(n) // tasks_per_node, tasks_per_node)

    # -- queries ---------------------------------------------------------------------
    def node_of(self, tasks) -> np.ndarray:
        return self.task_to_node[np.asarray(tasks, dtype=np.int64)]

    def tasks_on(self, node: int) -> np.ndarray:
        return np.flatnonzero(self.task_to_node == int(node))

    @property
    def node_counts(self) -> np.ndarray:
        view = self._node_counts.view()
        view.setflags(write=False)
        return view

    @property
    def used_nodes(self) -> int:
        return int((self._node_counts > 0).sum())

    def is_permutation(self) -> bool:
        """True when tasks<->nodes is one-to-one and onto."""
        return (
            self.num_tasks == self.topology.num_nodes
            and bool((self._node_counts == 1).all())
        )

    # -- transforms ---------------------------------------------------------------------
    def permute_nodes(self, node_perm) -> "Mapping":
        """New mapping with node ``v`` renamed to ``node_perm[v]``."""
        node_perm = np.asarray(node_perm, dtype=np.int64)
        V = self.topology.num_nodes
        if node_perm.shape != (V,) or (np.sort(node_perm) != np.arange(V)).any():
            raise MappingError("node_perm must be a permutation of all nodes")
        return Mapping(
            self.topology, node_perm[self.task_to_node], self.tasks_per_node
        )

    def permute_tasks(self, task_perm) -> "Mapping":
        """New mapping where task ``t`` takes the slot of ``task_perm[t]``."""
        task_perm = np.asarray(task_perm, dtype=np.int64)
        T = self.num_tasks
        if task_perm.shape != (T,) or (np.sort(task_perm) != np.arange(T)).any():
            raise MappingError("task_perm must be a permutation of all tasks")
        return Mapping(
            self.topology, self.task_to_node[task_perm], self.tasks_per_node
        )

    # -- flow extraction -------------------------------------------------------------------
    def network_flows(self, graph: CommGraph):
        """Aggregate a task-level graph into node-level network flows.

        Returns ``(srcs, dsts, vols)`` over *distinct* node pairs; task
        pairs sharing a node communicate through memory and are dropped.
        """
        if graph.num_tasks != self.num_tasks:
            raise MappingError(
                f"graph has {graph.num_tasks} tasks, mapping has {self.num_tasks}"
            )
        ns = self.task_to_node[graph.srcs]
        nd = self.task_to_node[graph.dsts]
        mask = ns != nd
        ns, nd, v = ns[mask], nd[mask], graph.vols[mask]
        if len(ns) == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy(), np.empty(0)
        keys = ns * self.topology.num_nodes + nd
        order = np.argsort(keys, kind="stable")
        keys, v = keys[order], v[order]
        uniq = np.r_[True, keys[1:] != keys[:-1]]
        seg = np.cumsum(uniq) - 1
        agg = np.zeros(int(seg[-1]) + 1)
        np.add.at(agg, seg, v)
        uk = keys[uniq]
        return (
            (uk // self.topology.num_nodes).astype(np.int64),
            (uk % self.topology.num_nodes).astype(np.int64),
            agg,
        )

    def offnode_volume(self, graph: CommGraph) -> float:
        """Total volume that must traverse the network under this mapping."""
        _, _, vols = self.network_flows(graph)
        return float(vols.sum())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Mapping)
            and self.topology == other.topology
            and np.array_equal(self.task_to_node, other.task_to_node)
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"Mapping(tasks={self.num_tasks}, nodes={self.topology.num_nodes}, "
            f"conc={self.tasks_per_node})"
        )
