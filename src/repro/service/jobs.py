"""Mapping jobs: declarative, hashable specs for one mapper x workload cell.

A :class:`MappingJob` captures *everything* needed to recompute a mapping
and its quality metrics — topology, workload, mapper configuration,
router, and (optionally) the network model for simulated communication
time — as plain data. Two properties follow:

- jobs are picklable, so the executor can farm them out to worker
  processes;
- jobs are content-addressable: :meth:`MappingJob.cache_key` is a stable
  SHA-256 over a canonical serialization (sorted keys, hex floats — see
  :mod:`repro.utils.hashing`), so independently constructed but equal
  specs hash equal and any field change changes the key.

:func:`execute_mapping_job` is the worker-side entry point; it returns a
JSON-ready payload that :class:`~repro.service.store.ResultStore` can
persist verbatim and :class:`JobResult` can rehydrate.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, fields
from pathlib import Path

from repro.core.rahtm import RAHTMConfig, RAHTMMapper
from repro.errors import ConfigError, ServiceError
from repro.mapping.mapping import Mapping
from repro.resilience import Budget, MapperCheckpoint
from repro.mapping.serialize import (
    mapping_from_dict,
    mapping_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.metrics.core import MappingReport, evaluate_mapping
from repro.observability.trace import Tracer, activate, active_tracer, span
from repro.routing.dor import DimensionOrderRouter
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.simulator.network import NetworkModel, NetworkParams
from repro.topology.cartesian import CartesianTopology
from repro.utils.hashing import stable_hash
from repro.workloads.registry import is_workload_file, parse_application, parse_workload

__all__ = [
    "SCHEMA_VERSION",
    "TopologySpec",
    "WorkloadSpec",
    "MapperConfig",
    "NetworkSpec",
    "MappingJob",
    "JobRuntime",
    "JobResult",
    "attach_netview",
    "execute_mapping_job",
    "mapping_job_from_payload",
    "mapper_config_from_spec",
    "build_router",
]

#: Version of both the cache-key payload and the stored artifact schema.
#: Bump whenever either changes shape — old artifacts then miss cleanly.
#: v2: payloads carry ``phase_seconds`` (per-phase wall-time breakdown).
#: Still v2 after netview: the optional ``netview`` key is runtime-flagged
#: (never part of the job spec) and readers treat it as absent-able, so
#: cache keys and stored artifacts stay compatible; the engine upgrades
#: cached payloads in place when a netview is requested but missing.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TopologySpec:
    """A Cartesian topology as data: shape + per-dimension wraparound."""

    shape: tuple[int, ...]
    wrap: tuple[bool, ...] = ()

    def __post_init__(self):
        shape = tuple(int(s) for s in self.shape)
        wrap = self.wrap
        if isinstance(wrap, bool):
            wrap = (wrap,) * len(shape)
        wrap = tuple(bool(w) for w in wrap) or (True,) * len(shape)
        if len(wrap) != len(shape):
            raise ConfigError(
                f"wrap has {len(wrap)} entries for {len(shape)} dimensions"
            )
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "wrap", wrap)

    @classmethod
    def from_topology(cls, topology: CartesianTopology) -> "TopologySpec":
        return cls(tuple(topology.shape), tuple(topology.wrap))

    def build(self) -> CartesianTopology:
        return CartesianTopology(self.shape, wrap=self.wrap)

    def payload(self) -> dict:
        return {"shape": list(self.shape), "wrap": list(self.wrap)}


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload in the CLI spec grammar (or a graph-file path) + seed."""

    spec: str
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "spec", str(self.spec))
        object.__setattr__(self, "seed", int(self.seed))

    def build_graph(self):
        return parse_workload(self.spec, seed=self.seed)

    def build_application(self):
        return parse_application(self.spec, seed=self.seed)

    def payload(self) -> dict:
        out: dict = {"spec": self.spec, "seed": self.seed}
        # File-backed workloads are addressed by *content*, not by path:
        # editing the file must change the cache key.
        if is_workload_file(self.spec):
            digest = hashlib.sha256(Path(self.spec).read_bytes()).hexdigest()
            out["spec"] = Path(self.spec).name
            out["digest"] = digest
        return out


@dataclass(frozen=True)
class MapperConfig:
    """A mapper as data: kind + sorted ``(name, value)`` parameter pairs."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "kind", str(self.kind).lower())
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(k), v) for k, v in self.params)),
        )

    @classmethod
    def make(cls, kind: str, **params) -> "MapperConfig":
        return cls(kind, tuple(params.items()))

    @classmethod
    def from_rahtm(cls, config: RAHTMConfig) -> "MapperConfig":
        return cls.make("rahtm", **asdict(config))

    def param_dict(self) -> dict:
        return dict(self.params)

    def build(self, topology):
        """Instantiate the configured mapper bound to ``topology``."""
        kind, p = self.kind, self.param_dict()
        if kind == "rahtm":
            return RAHTMMapper(topology, RAHTMConfig(**p))
        if kind in ("default", "dimorder"):
            from repro.baselines.dimorder import DimOrderMapper

            return DimOrderMapper(topology, p.get("order"))
        if kind == "hilbert":
            from repro.baselines.hilbert import HilbertMapper

            return HilbertMapper(topology)
        if kind == "rubik":
            from repro.baselines.rubik import RubikTilingMapper

            return RubikTilingMapper(topology)
        if kind in ("rcb", "bisection"):
            from repro.baselines.bisection import RecursiveBisectionMapper

            return RecursiveBisectionMapper(topology, seed=p.get("seed", 0))
        if kind in ("anneal-hopbytes", "anneal-mcl"):
            from repro.baselines.hopbytes import HopBytesMapper

            return HopBytesMapper(
                topology, kind.split("-", 1)[1],
                iterations=p.get("iterations", 5000), seed=p.get("seed", 0),
            )
        if kind == "random":
            from repro.baselines.random_map import RandomMapper

            return RandomMapper(topology, seed=p.get("seed", 0))
        raise ConfigError(f"unknown mapper kind {self.kind!r}")

    def payload(self) -> dict:
        return {"kind": self.kind, "params": [list(kv) for kv in self.params]}


@dataclass(frozen=True)
class NetworkSpec:
    """The :class:`NetworkParams` constants as hashable job data."""

    link_bandwidth: float = 1.8e9
    hop_latency: float = 40e-9
    phase_overhead: float = 2e-6
    phase_overlap: float = 0.5

    @classmethod
    def from_params(cls, params: NetworkParams | None) -> "NetworkSpec":
        if params is None:
            return cls()
        return cls(**{f.name: getattr(params, f.name) for f in fields(cls)})

    def build(self) -> NetworkParams:
        return NetworkParams(**asdict(self))

    def payload(self) -> dict:
        return {k: float(v) for k, v in asdict(self).items()}


def build_router(name: str, topology):
    """Router factory shared by the CLI and the job worker."""
    if name == "dor":
        return DimensionOrderRouter(topology)
    if name == "mar":
        return MinimalAdaptiveRouter(topology)
    raise ConfigError(f"unknown router {name!r}; choose 'mar' or 'dor'")


@dataclass(frozen=True)
class MappingJob:
    """One unit of work: map a workload onto a topology and score it.

    When ``network`` is set the job additionally simulates one
    iteration's communication time under the mapping (the quantity the
    experiment runner aggregates into Figures 8-10); the mapper then maps
    the application's aggregate graph, exactly as the serial runner did.
    """

    topology: TopologySpec
    workload: WorkloadSpec
    mapper: MapperConfig
    router: str = "mar"
    network: NetworkSpec | None = None

    def payload(self) -> dict:
        """The canonical content-addressed description of this job."""
        return {
            "schema": SCHEMA_VERSION,
            "topology": self.topology.payload(),
            "workload": self.workload.payload(),
            "mapper": self.mapper.payload(),
            "router": self.router,
            "network": None if self.network is None else self.network.payload(),
        }

    def cache_key(self) -> str:
        return stable_hash(self.payload())

    def describe(self) -> str:
        return (f"{self.mapper.kind} on {self.workload.spec} @ "
                f"{'x'.join(map(str, self.topology.shape))}")


def mapping_job_from_payload(doc: dict) -> MappingJob:
    """Rebuild a :class:`MappingJob` from its :meth:`MappingJob.payload`.

    The inverse of the content-addressed serialization, used by the
    daemon's HTTP submit endpoint and the drained-batch requeue path.
    Round-trip is exact: ``mapping_job_from_payload(j.payload())``
    hashes equal to ``j``. File-backed workloads are stored by content
    digest, not path, so they cannot be reconstructed here and raise
    :class:`~repro.errors.ServiceError`.
    """
    try:
        topo = doc["topology"]
        workload = doc["workload"]
        mapper = doc["mapper"]
    except (KeyError, TypeError) as exc:
        raise ServiceError(f"malformed job spec: missing {exc}") from exc
    if "digest" in workload:
        raise ServiceError(
            "file-backed workload specs are content-addressed and cannot "
            "be reconstructed from a payload; submit the generator spec "
            "instead"
        )
    network = doc.get("network")
    try:
        return MappingJob(
            topology=TopologySpec(tuple(topo["shape"]),
                                  tuple(topo.get("wrap", ()))),
            workload=WorkloadSpec(workload["spec"],
                                  seed=workload.get("seed", 0)),
            mapper=MapperConfig(
                mapper["kind"],
                tuple((k, v) for k, v in mapper.get("params", [])),
            ),
            router=doc.get("router", "mar"),
            network=None if network is None else NetworkSpec(**network),
        )
    except (KeyError, TypeError, ValueError, ConfigError) as exc:
        raise ServiceError(f"malformed job spec: {exc}") from exc


@dataclass(frozen=True)
class JobRuntime:
    """*How* to run jobs, as opposed to *what* to compute.

    Execution policy — deadlines, degradation, resume — deliberately
    lives outside :class:`MappingJob` so it never leaks into
    :meth:`MappingJob.cache_key`: a job computed under a tight deadline
    must still hash equal to the same job computed at leisure.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock budget for one job's ``map()`` call (None = no limit).
    solver_call_budget:
        Cap on phase-2 MILP solves per job (None = no cap).
    on_deadline:
        ``"degrade"`` falls down the fallback ladder and still returns a
        valid mapping; ``"fail"`` raises
        :class:`~repro.errors.DeadlineExceededError`.
    checkpoint_dir:
        Root of a :class:`~repro.service.store.ResultStore` for
        phase-level checkpoints (None disables checkpointing).
    resume:
        Load existing checkpoints before computing (saving is always on
        when ``checkpoint_dir`` is set).
    trace:
        Record a span tree for the job. In-process execution records into
        the caller's active tracer; pooled workers build a local tracer
        and ship the serialized tree back in the payload's ``trace`` key
        for the engine to graft (see
        :meth:`repro.observability.trace.Tracer.graft`).
    netview:
        Attach a compact network-introspection summary (top hotspots,
        load-distribution statistics — see
        :func:`repro.observability.netview.netview_summary`) to the
        payload's ``netview`` key. Deterministic and derived, so cached
        payloads lacking it are upgraded in place by the engine.
    """

    deadline_seconds: float | None = None
    solver_call_budget: int | None = None
    on_deadline: str = "degrade"
    checkpoint_dir: str | None = None
    resume: bool = True
    trace: bool = False
    netview: bool = False

    def __post_init__(self):
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError("deadline_seconds must be > 0 (or None)")
        if self.solver_call_budget is not None and self.solver_call_budget < 0:
            raise ConfigError("solver_call_budget must be >= 0 (or None)")
        if self.on_deadline not in ("degrade", "fail"):
            raise ConfigError(
                f"on_deadline must be 'degrade' or 'fail', "
                f"got {self.on_deadline!r}"
            )
        if self.checkpoint_dir is not None:
            object.__setattr__(self, "checkpoint_dir", str(self.checkpoint_dir))

    @property
    def active(self) -> bool:
        return (self.deadline_seconds is not None
                or self.solver_call_budget is not None
                or self.checkpoint_dir is not None
                or self.trace
                or self.netview)

    def budget(self) -> Budget | None:
        if self.deadline_seconds is None and self.solver_call_budget is None:
            return None
        return Budget(wall_seconds=self.deadline_seconds,
                      solver_calls=self.solver_call_budget,
                      on_exhausted=self.on_deadline)

    def checkpoint(self, job_key: str) -> MapperCheckpoint | None:
        if self.checkpoint_dir is None:
            return None
        from repro.service.store import ResultStore

        return MapperCheckpoint(ResultStore(self.checkpoint_dir),
                                job_key=job_key, resume=self.resume)


def execute_mapping_job(job: MappingJob, runtime: JobRuntime | None = None) -> dict:
    """Worker-side job body: build, map, evaluate; return a JSON payload.

    ``runtime`` (optional) carries the resilience policy; it is applied
    only when the configured mapper advertises ``supports_resilience``
    (baseline mappers run exactly as before). With ``runtime.trace`` set
    and no tracer already active (i.e. in a pooled worker process), a
    local tracer records the job's span tree into the payload's
    ``trace`` key; the engine strips it before caching and grafts it
    into the batch trace.
    """
    key = job.cache_key()
    local_tracer: Tracer | None = None
    if runtime is not None and runtime.trace:
        active = active_tracer()
        # No tracer, or a fork-inherited one owned by the parent process
        # (its spans would never make it home): record locally and ship
        # the tree back in the payload.
        if active is None or active.pid != os.getpid():
            local_tracer = Tracer(run_id=key[:12])
    ctx = activate(local_tracer) if local_tracer is not None else nullcontext()
    with ctx:
        payload = _execute_mapping_job(job, runtime, key)
    if local_tracer is not None:
        payload["trace"] = local_tracer.to_dicts()
    return payload


def _execute_mapping_job(job: MappingJob, runtime: JobRuntime | None,
                         key: str) -> dict:
    with span("job.execute", key=key[:12], mapper=job.mapper.kind,
              workload=job.workload.spec):
        with span("job.build"):
            topology = job.topology.build()
            if job.network is not None:
                app = job.workload.build_application()
                graph = app.comm_graph()
            else:
                app = None
                graph = job.workload.build_graph()
            mapper = job.mapper.build(topology)
        map_kwargs = {}
        if runtime is not None and runtime.active \
                and getattr(mapper, "supports_resilience", False):
            budget = runtime.budget()
            checkpoint = runtime.checkpoint(key)
            if budget is not None:
                map_kwargs["budget"] = budget
            if checkpoint is not None:
                map_kwargs["checkpoint"] = checkpoint
        t0 = time.perf_counter()
        with span("job.map", mapper=getattr(mapper, "name", job.mapper.kind)):
            mapping = mapper.map(graph, **map_kwargs)
        map_seconds = time.perf_counter() - t0
        with span("job.metrics", router=job.router):
            router = build_router(job.router, topology)
            report = evaluate_mapping(router, mapping, graph)
        stats = getattr(mapper, "stats", {}) or {}
        degradation = list(stats.get("degradation", []))
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "job": job.payload(),
            "mapper_name": getattr(mapper, "name", job.mapper.kind),
            "map_seconds": map_seconds,
            "phase_seconds": dict(stats.get("phase_seconds", {})),
            "mapping": mapping_to_dict(mapping),
            "report": report_to_dict(report),
            "degradation": degradation,
            "degraded": bool(degradation),
        }
        if map_kwargs:
            payload["resilience"] = {
                "budget": stats.get("budget"),
                "checkpoint": stats.get("checkpoint"),
                "milp_solves": len(stats.get("milp", [])),
            }
        if runtime is not None and runtime.netview:
            from repro.observability.netview import netview_summary

            with span("job.netview"):
                payload["netview"] = netview_summary(router, mapping, graph)
        if app is not None:
            network = NetworkModel(router, job.network.build())
            with span("job.simulate"):
                payload["iter_comm_seconds"] = app.iteration_comm_time(
                    mapping, network
                )
            payload["iterations"] = app.iterations
    return payload


@dataclass
class JobResult:
    """A rehydrated job payload (from a fresh run or the result store)."""

    key: str
    mapper_name: str
    map_seconds: float
    mapping: Mapping
    report: MappingReport
    iter_comm_seconds: float | None = None
    iterations: int | None = None
    from_cache: bool = False
    degradation: list = None
    degraded: bool = False
    phase_seconds: dict = None
    netview: dict | None = None

    @classmethod
    def from_payload(cls, payload: dict, from_cache: bool = False) -> "JobResult":
        try:
            return cls(
                key=payload["key"],
                mapper_name=payload["mapper_name"],
                map_seconds=float(payload["map_seconds"]),
                mapping=mapping_from_dict(payload["mapping"]),
                report=report_from_dict(payload["report"]),
                iter_comm_seconds=payload.get("iter_comm_seconds"),
                iterations=payload.get("iterations"),
                from_cache=from_cache,
                degradation=list(payload.get("degradation", [])),
                degraded=bool(payload.get("degraded", False)),
                phase_seconds=dict(payload.get("phase_seconds", {})),
                netview=payload.get("netview"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job payload: {exc}") from exc


def attach_netview(payload: dict) -> bool:
    """Compute and attach the compact netview summary to a job payload.

    Used by the engine to upgrade cached payloads produced before the
    netview flag (or by runs without it): the summary is deterministic
    and derived, so attaching it engine-side is equivalent to having
    computed it in the worker. Returns False when the payload cannot be
    re-derived — file-backed workloads are stored by content digest, not
    path, so their graphs cannot be rebuilt here.
    """
    from repro.observability.netview import netview_summary

    job = payload.get("job", {})
    workload = job.get("workload", {})
    if "digest" in workload:
        return False
    topology = TopologySpec(
        tuple(job["topology"]["shape"]), tuple(job["topology"]["wrap"])
    ).build()
    spec = WorkloadSpec(workload["spec"], seed=int(workload.get("seed", 0)))
    if job.get("network") is not None:
        graph = spec.build_application().comm_graph()
    else:
        graph = spec.build_graph()
    mapping = mapping_from_dict(payload["mapping"], topology)
    router = build_router(job.get("router", "mar"), topology)
    with span("job.netview", upgraded=True):
        payload["netview"] = netview_summary(router, mapping, graph)
    return True


def mapper_config_from_spec(spec: str, args=None) -> MapperConfig:
    """Translate a CLI mapper spec (``dimorder:TABC``...) into a config.

    ``args`` is the CLI namespace carrying RAHTM/annealer tunables; any
    object with the same attributes (or ``None`` for defaults) works.
    """
    kind, _, arg = spec.partition(":")
    kind = kind.lower()

    def opt(name, default):
        return getattr(args, name, default) if args is not None else default

    if kind == "rahtm":
        return MapperConfig.from_rahtm(RAHTMConfig(
            beam_width=opt("beam_width", 16),
            max_orientations=opt("max_orientations", 24),
            milp_time_limit=opt("milp_time_limit", 60.0),
            milp_rel_gap=opt("milp_gap", 0.02),
            reposition=opt("reposition", False),
            refine_iterations=opt("refine", 0),
            seed=opt("seed", 0),
        ))
    if kind == "default":
        return MapperConfig.make("dimorder")
    if kind == "dimorder":
        return (MapperConfig.make("dimorder", order=arg) if arg
                else MapperConfig.make("dimorder"))
    if kind in ("hilbert", "rubik"):
        return MapperConfig.make(kind)
    if kind in ("rcb", "bisection"):
        return MapperConfig.make("rcb", seed=opt("seed", 0))
    if kind in ("anneal-hopbytes", "anneal-mcl"):
        return MapperConfig.make(
            kind, iterations=opt("anneal_iters", 5000), seed=opt("seed", 0)
        )
    if kind == "random":
        return MapperConfig.make("random", seed=opt("seed", 0))
    raise ConfigError(f"unknown mapper {spec!r}")
