"""Durable, content-addressed result store (v2 on-disk format).

Artifacts are JSON files named by their job's cache key, sharded by the
key's first two hex digits (``<root>/ab/ab12....json``) so directories
stay small at production scale. Since v2, every artifact is an
**envelope** carrying an integrity header over the payload::

    {"schema": 2, "key": "<cache key>",
     "sha256": "<hex over canonical payload JSON>", "payload": {...}}

**Commit protocol** — crash-consistent against SIGKILL at every step:

1. the envelope is serialized into a ``.tmp`` file in the destination
   shard directory;
2. the file is flushed and ``fsync``'d (skippable via ``fsync=False``
   for throwaway test stores);
3. it is atomically ``os.replace``'d onto its final name — readers can
   never observe a torn artifact, and concurrent writers of one key are
   last-writer-wins with either writer's file complete;
4. the shard directory is fsync'd so the rename itself survives power
   loss.

A writer killed between any two steps leaves either an orphaned tmp
file (no committed entry was touched) or the complete new artifact;
``repro doctor`` finds and removes orphans. The
``store-kill-*`` fault-injection points sit exactly at these seams and
the subprocess crash harness proves the invariant for each of them.

**Reads verify the checksum.** A corrupt entry (unparseable JSON, bad
checksum, key/header mismatch) is not silently evicted: it is moved to
``<root>/quarantine/`` next to a structured corruption report, counted
in ``store.quarantined``, and the read is a miss. Only *stale-schema*
entries — valid artifacts from an older format version — are evicted,
so schema bumps still invalidate old caches transparently.

**Shared directories.** Concurrent engines can share one store root:
single-artifact operations need no coordination, and multi-step
maintenance (``clear``, doctor repairs) takes the advisory
:class:`~repro.service.locking.DirectoryLock` (pid lockfile with
stale-dead-holder takeover, counted in ``store.stale_locks_taken``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServiceError
from repro.observability.metrics import get_registry
from repro.resilience import faultinject
from repro.service.locking import LOCK_NAME, DirectoryLock
from repro.utils.logconf import get_logger

__all__ = [
    "STORE_SCHEMA_VERSION",
    "QUARANTINE_DIR",
    "PENDING_NAME",
    "StoreStats",
    "ResultStore",
    "canonical_json",
    "payload_checksum",
    "verify_artifact",
    "atomic_write_json",
    "fsync_dir",
]

log = get_logger("service.store")

#: On-disk envelope schema version. v2 wraps payloads in a checksummed
#: envelope; v1 artifacts (bare payloads) miss cleanly as stale schema.
STORE_SCHEMA_VERSION = 2

#: Subdirectory receiving corrupt artifacts and their reports.
QUARANTINE_DIR = "quarantine"

#: Root-level file recording the jobs of a drained (SIGTERM'd) batch.
PENDING_NAME = "pending.json"


# -- canonical serialization / checksums ----------------------------------------------
def canonical_json(payload: dict) -> str:
    """The canonical serialization checksums are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict) -> str:
    """SHA-256 hex digest of the canonical payload JSON."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (makes renames durable)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: Path, doc: dict, fsync: bool = True) -> Path:
    """Write ``doc`` to ``path`` via the tmp → fsync → rename protocol."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".aw-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(doc, handle)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
    return path


def verify_artifact(path: Path, expected_key: str | None = None,
                    schema_version: int = STORE_SCHEMA_VERSION):
    """Classify one artifact file.

    Returns ``(status, detail, payload)`` where status is one of
    ``"ok"`` (payload is the verified inner dict), ``"missing"``,
    ``"stale-schema"`` (valid envelope, older format) or ``"corrupt"``
    (unparseable, wrong shape, key mismatch, or checksum mismatch).
    ``expected_key`` defaults to the filename stem.
    """
    path = Path(path)
    key = expected_key if expected_key is not None else path.stem
    try:
        text = path.read_text()
    except FileNotFoundError:
        return "missing", "", None
    except UnicodeDecodeError as exc:
        return "corrupt", f"not valid UTF-8: {exc}", None
    try:
        doc = json.loads(text)
    except ValueError as exc:
        return "corrupt", f"unparseable JSON: {exc}", None
    if not isinstance(doc, dict):
        return "corrupt", "artifact is not a JSON object", None
    if doc.get("schema") != schema_version:
        return ("stale-schema",
                f"envelope schema {doc.get('schema')!r} != "
                f"{schema_version}", None)
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        return "corrupt", "envelope has no payload object", None
    if doc.get("key") != key:
        return ("corrupt",
                f"key mismatch: header says {doc.get('key')!r}, "
                f"file is {key!r}", None)
    digest = payload_checksum(payload)
    if doc.get("sha256") != digest:
        return ("corrupt",
                f"checksum mismatch: header {doc.get('sha256')!r}, "
                f"computed {digest}", None)
    return "ok", "", payload


@dataclass
class StoreStats:
    """Counters for one store instance.

    Every bump is mirrored into the process-wide metrics registry
    (``store.hits`` etc.), so registry snapshots see cache traffic
    aggregated over all stores in the process.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    quarantined: int = 0
    stale_locks_taken: int = 0
    put_failures: int = 0

    def bump(self, field_name: str, n: int = 1) -> None:
        setattr(self, field_name, getattr(self, field_name) + n)
        get_registry().counter(f"store.{field_name}").inc(n)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "evictions": self.evictions,
                "quarantined": self.quarantined,
                "stale_locks_taken": self.stale_locks_taken,
                "put_failures": self.put_failures}


@dataclass
class ResultStore:
    """Content-addressed JSON artifact store under ``root``.

    ``fsync=False`` skips the durability syncs (steps 2 and 4 of the
    commit protocol) — atomicity against *crashes of this process* is
    preserved, durability against power loss is not. Tests and
    throwaway caches use it; production roots keep the default.
    """

    root: Path
    schema_version: int = STORE_SCHEMA_VERSION
    fsync: bool = True
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self):
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ServiceError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    @property
    def lock_path(self) -> Path:
        return self.root / LOCK_NAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    def lock(self, timeout: float = 10.0) -> DirectoryLock:
        """An advisory lock over the whole store (multi-step maintenance)."""
        return DirectoryLock(
            self.root, timeout=timeout,
            on_stale_takeover=lambda: self.stats.bump("stale_locks_taken"),
        )

    # -- read ---------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the verified payload for ``key`` or None (hit/miss).

        Corrupt entries are quarantined with a report; stale-schema
        entries are evicted. Both count as misses.
        """
        path = self.path_for(key)
        status, detail, payload = verify_artifact(
            path, expected_key=key, schema_version=self.schema_version)
        if status == "missing":
            self.stats.bump("misses")
            return None
        if status == "stale-schema":
            log.info("evicting artifact %s: %s", path, detail)
            self._evict_path(path)
            self.stats.bump("misses")
            return None
        if status == "corrupt":
            log.warning("quarantining corrupt artifact %s: %s", path, detail)
            self.quarantine_path(path, key=key, reason=detail)
            self.stats.bump("misses")
            return None
        self.stats.bump("hits")
        return payload

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def _shard_files(self):
        """Committed artifact files, excluding quarantine and tmp files."""
        hexdigits = set("0123456789abcdef")
        for shard in sorted(self.root.iterdir()):
            if (shard.is_dir() and len(shard.name) == 2
                    and set(shard.name) <= hexdigits):
                yield from sorted(shard.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self._shard_files())

    # -- write --------------------------------------------------------------------
    def put(self, key: str, payload: dict) -> Path:
        """Durably persist ``payload`` under ``key``; returns the path.

        Any failure (including injected ENOSPC) cleans up the partial
        tmp file — an aborted put never litters the cache directory.
        """
        path = self.path_for(key)
        doc = {
            "schema": self.schema_version,
            "key": key,
            "sha256": payload_checksum(payload),
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                faultinject.inject("store-kill-tmp")
                if faultinject.fires("store-corrupt"):
                    handle.write('{"schema": ')  # deliberately torn JSON
                else:
                    text = json.dumps(doc)
                    half = len(text) // 2
                    handle.write(text[:half])
                    handle.flush()
                    faultinject.inject("store-kill-mid-write")
                    faultinject.inject("store-enospc")
                    handle.write(text[half:])
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            faultinject.inject("store-kill-pre-rename")
            os.replace(tmp, path)
            faultinject.inject("store-kill-post-rename")
            if self.fsync:
                fsync_dir(path.parent)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            if isinstance(exc, Exception):
                self.stats.bump("put_failures")
            raise
        self.stats.bump("writes")
        return path

    # -- pending (drained-batch) queue ---------------------------------------------
    @property
    def pending_path(self) -> Path:
        return self.root / PENDING_NAME

    def read_pending(self) -> dict | None:
        """The drained-batch document, or None (missing/unreadable).

        The engine writes ``<root>/pending.json`` when a batch is
        drained mid-shutdown; the daemon's startup requeue and ``repro
        doctor --requeue`` read it back through here.
        """
        try:
            doc = json.loads(self.pending_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            log.warning("unreadable pending queue %s: %s",
                        self.pending_path, exc)
            return None
        if not isinstance(doc, dict) or not isinstance(doc.get("jobs"), list):
            log.warning("malformed pending queue %s", self.pending_path)
            return None
        return doc

    def clear_pending(self) -> bool:
        """Remove the drained-batch file; True if one existed."""
        try:
            self.pending_path.unlink()
        except FileNotFoundError:
            return False
        return True

    # -- quarantine ---------------------------------------------------------------
    def quarantine_path(self, path: Path, key: str | None = None,
                        reason: str = "corrupt") -> Path | None:
        """Move a corrupt artifact aside with a structured report.

        Returns the quarantined path, or None when the file vanished
        first (a concurrent store already dealt with it — the rename is
        the atomic arbiter, so exactly one process wins).
        """
        path = Path(path)
        qdir = self.quarantine_dir
        qdir.mkdir(parents=True, exist_ok=True)
        nonce = f"{os.getpid()}-{time.monotonic_ns()}"
        dest = qdir / f"{path.name}.{nonce}.quarantined"
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        report = {
            "kind": "corruption_report",
            "schema": 1,
            "key": key if key is not None else path.stem,
            "reason": reason,
            "original_path": str(path),
            "quarantined_path": str(dest),
            "time_unix": time.time(),
        }
        try:
            atomic_write_json(dest.with_name(dest.name + ".report.json"),
                              report, fsync=self.fsync)
        except OSError:
            log.warning("could not write corruption report for %s", dest)
        self.stats.bump("quarantined")
        return dest

    def quarantine_key(self, key: str, reason: str = "corrupt") -> Path | None:
        """Quarantine the artifact stored under ``key`` (if any)."""
        return self.quarantine_path(self.path_for(key), key=key,
                                    reason=reason)

    def write_quarantine_report(self, stem: str, doc: dict) -> Path:
        """Persist a standalone report (e.g. a poison-job postmortem)
        into the quarantine directory for ``repro doctor`` to list."""
        nonce = f"{os.getpid()}-{time.monotonic_ns()}"
        path = self.quarantine_dir / f"{stem}.{nonce}.report.json"
        atomic_write_json(path, doc, fsync=self.fsync)
        self.stats.bump("quarantined")
        return path

    def list_quarantine(self) -> list[dict]:
        """Quarantine contents: one entry per report/data file."""
        qdir = self.quarantine_dir
        if not qdir.is_dir():
            return []
        entries = []
        for path in sorted(qdir.iterdir()):
            entry: dict = {"file": path.name}
            if path.name.endswith(".report.json"):
                try:
                    entry["report"] = json.loads(path.read_text())
                except (OSError, ValueError):
                    entry["report"] = None
            entries.append(entry)
        return entries

    # -- eviction -----------------------------------------------------------------
    def _evict_path(self, path: Path) -> bool:
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats.bump("evictions")
        return True

    def evict(self, key: str) -> bool:
        """Drop one artifact; True if it existed."""
        return self._evict_path(self.path_for(key))

    def clear(self) -> int:
        """Drop every committed artifact; returns the number evicted.

        Takes the directory lock: clearing is a multi-step sweep that
        must not interleave with another process's repair or clear.
        """
        count = 0
        with self.lock():
            for path in list(self._shard_files()):
                if self._evict_path(path):
                    count += 1
        return count
