"""Disk-backed content-addressed result store.

Artifacts are JSON files named by their job's cache key, sharded by the
key's first two hex digits (``<root>/ab/ab12....json``) so directories
stay small at production scale. Writes are atomic: the payload lands in
a temp file in the destination directory and is ``os.replace``d into
place, so readers never observe a torn artifact and concurrent writers
of the same key are last-writer-wins with either writer's file complete.

Every artifact carries a ``schema`` version; a version mismatch (or a
corrupt/unparseable file) is treated as a miss and the stale file is
evicted, so schema bumps invalidate old caches transparently.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServiceError
from repro.observability.metrics import get_registry
from repro.resilience import faultinject
from repro.utils.logconf import get_logger

__all__ = ["StoreStats", "ResultStore"]

log = get_logger("service.store")

#: Artifact schema version (see :data:`repro.service.jobs.SCHEMA_VERSION`).
STORE_SCHEMA_VERSION = 1


@dataclass
class StoreStats:
    """hit/miss/write/evict counters for one store instance.

    Every bump is mirrored into the process-wide metrics registry
    (``store.hits`` etc.), so registry snapshots see cache traffic
    aggregated over all stores in the process.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    def bump(self, field_name: str, n: int = 1) -> None:
        setattr(self, field_name, getattr(self, field_name) + n)
        get_registry().counter(f"store.{field_name}").inc(n)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "evictions": self.evictions}


@dataclass
class ResultStore:
    """Content-addressed JSON artifact store under ``root``."""

    root: Path
    schema_version: int = STORE_SCHEMA_VERSION
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self):
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ServiceError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # -- read ---------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the payload for ``key`` or None (counting hit/miss)."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats.bump("misses")
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            log.warning("evicting corrupt artifact %s", path)
            self._evict_path(path)
            self.stats.bump("misses")
            return None
        if not isinstance(payload, dict) or payload.get("schema") != self.schema_version:
            log.info("evicting artifact %s with stale schema %r", path,
                     payload.get("schema") if isinstance(payload, dict) else None)
            self._evict_path(path)
            self.stats.bump("misses")
            return None
        self.stats.bump("hits")
        return payload

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    # -- write --------------------------------------------------------------------
    def put(self, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        payload = {**payload, "schema": self.schema_version}
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                if faultinject.fires("store-corrupt"):
                    handle.write('{"schema": ')  # deliberately torn JSON
                else:
                    json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        self.stats.bump("writes")
        return path

    # -- eviction -----------------------------------------------------------------
    def _evict_path(self, path: Path) -> bool:
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats.bump("evictions")
        return True

    def evict(self, key: str) -> bool:
        """Drop one artifact; True if it existed."""
        return self._evict_path(self.path_for(key))

    def clear(self) -> int:
        """Drop every artifact; returns the number evicted."""
        count = 0
        for path in list(self.root.glob("*/*.json")):
            if self._evict_path(path):
                count += 1
        return count
