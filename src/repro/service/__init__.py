"""The mapping-job service layer.

Turns "compute a mapping / evaluate a mapping" into first-class batch
jobs: declarative content-addressed specs (:mod:`repro.service.jobs`), a
disk-backed result store (:mod:`repro.service.store`), a process-pool
batch executor (:mod:`repro.service.executor`) and the engine façade
composing them (:mod:`repro.service.engine`).
"""

from repro.service.engine import EngineStats, MappingEngine
from repro.service.executor import BatchExecutor, ExecutorConfig, JobOutcome
from repro.service.jobs import (
    JobResult,
    JobRuntime,
    MapperConfig,
    MappingJob,
    NetworkSpec,
    TopologySpec,
    WorkloadSpec,
    execute_mapping_job,
    mapper_config_from_spec,
)
from repro.service.store import ResultStore, StoreStats

__all__ = [
    "MappingEngine",
    "EngineStats",
    "BatchExecutor",
    "ExecutorConfig",
    "JobOutcome",
    "MappingJob",
    "JobRuntime",
    "JobResult",
    "MapperConfig",
    "TopologySpec",
    "WorkloadSpec",
    "NetworkSpec",
    "ResultStore",
    "StoreStats",
    "execute_mapping_job",
    "mapper_config_from_spec",
]
