"""The mapping-job service layer.

Turns "compute a mapping / evaluate a mapping" into first-class batch
jobs: declarative content-addressed specs (:mod:`repro.service.jobs`), a
durable disk-backed result store with checksummed artifacts and
quarantine (:mod:`repro.service.store`), cross-process directory locks
(:mod:`repro.service.locking`), a supervised process-pool batch
executor — circuit breaker, poison-job quarantine, graceful drain
(:mod:`repro.service.executor`, :mod:`repro.service.supervision`) — the
engine façade composing them (:mod:`repro.service.engine`), and the
``repro doctor`` fsck over cache/checkpoint directories
(:mod:`repro.service.doctor`).
"""

from repro.service.doctor import DoctorReport, Finding, diagnose
from repro.service.engine import EngineStats, MappingEngine
from repro.service.executor import BatchExecutor, ExecutorConfig, JobOutcome
from repro.service.jobs import (
    JobResult,
    JobRuntime,
    MapperConfig,
    MappingJob,
    NetworkSpec,
    TopologySpec,
    WorkloadSpec,
    execute_mapping_job,
    mapper_config_from_spec,
    mapping_job_from_payload,
)
from repro.service.locking import DirectoryLock
from repro.service.store import ResultStore, StoreStats
from repro.service.supervision import CircuitBreaker, full_jitter_delay

__all__ = [
    "MappingEngine",
    "EngineStats",
    "BatchExecutor",
    "ExecutorConfig",
    "JobOutcome",
    "MappingJob",
    "JobRuntime",
    "JobResult",
    "MapperConfig",
    "TopologySpec",
    "WorkloadSpec",
    "NetworkSpec",
    "ResultStore",
    "StoreStats",
    "DirectoryLock",
    "CircuitBreaker",
    "full_jitter_delay",
    "DoctorReport",
    "Finding",
    "diagnose",
    "execute_mapping_job",
    "mapper_config_from_spec",
    "mapping_job_from_payload",
]
