"""Cross-process advisory directory locks.

Concurrent mapping engines may share one cache directory (a CI fleet, two
operators on one NFS scratch space). Single-artifact writes are already
safe — the store's commit protocol is one atomic rename — but multi-step
maintenance (``repro doctor --repair``, ``ResultStore.clear``, quarantine
sweeps) must not interleave across processes. :class:`DirectoryLock`
provides the classic lockfile protocol for that:

- acquisition creates ``<dir>/.lock`` with ``O_CREAT | O_EXCL`` (atomic on
  POSIX and NFSv3+) and records the holder's pid, host, and acquire time
  as JSON;
- a lockfile whose recorded pid is dead (same host, ``os.kill(pid, 0)``
  fails) is **stale**: the contender atomically renames it aside and
  retries, so a crashed holder never wedges the directory. Takeovers are
  counted (``stale_locks_taken``) and reported to an optional callback so
  store stats and ``repro doctor`` can surface them;
- an unparseable lockfile (the holder died mid-write, or junk) is only
  stolen once it is demonstrably old (``stale_grace`` seconds by mtime) —
  a live writer finishes its few-byte write long before that;
- a lock held by a live pid on *another* host is always honoured: pids
  cannot be probed remotely.

The lock is advisory: readers and single-artifact writers never take it.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

from repro.errors import StoreLockError
from repro.utils.logconf import get_logger

__all__ = ["LOCK_NAME", "DirectoryLock", "pid_alive", "read_lock_info"]

log = get_logger("service.locking")

#: Default lockfile name inside the locked directory.
LOCK_NAME = ".lock"


def pid_alive(pid: int) -> bool:
    """True when ``pid`` exists on this host (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def read_lock_info(path: Path) -> dict | None:
    """The holder record in ``path``, or None (missing/unparseable)."""
    try:
        raw = Path(path).read_text()
    except OSError:
        return None
    try:
        info = json.loads(raw)
    except ValueError:
        return None
    return info if isinstance(info, dict) else None


class DirectoryLock:
    """Advisory pid-lockfile over one directory, with stale takeover.

    Usable as a context manager::

        with DirectoryLock(cache_dir, timeout=10.0):
            ...  # exclusive multi-step maintenance

    Parameters
    ----------
    directory:
        The directory to lock (created if missing).
    timeout:
        Seconds to keep contending before :class:`StoreLockError`.
    poll:
        Sleep between contention attempts.
    stale_grace:
        Age (mtime, seconds) past which an *unparseable* lockfile is
        treated as crash debris and stolen.
    on_stale_takeover:
        Optional ``callback()`` invoked once per stale lock taken over
        (the store wires its ``stale_locks_taken`` counter here).
    """

    def __init__(self, directory, name: str = LOCK_NAME,
                 timeout: float = 10.0, poll: float = 0.05,
                 stale_grace: float = 5.0, on_stale_takeover=None):
        self.directory = Path(directory)
        self.path = self.directory / name
        self.timeout = float(timeout)
        self.poll = float(poll)
        self.stale_grace = float(stale_grace)
        self.on_stale_takeover = on_stale_takeover
        #: Stale locks this instance has taken over (monotonic).
        self.stale_takeovers = 0
        self._held = False

    # -- acquisition ----------------------------------------------------------------
    def acquire(self) -> "DirectoryLock":
        if self._held:
            return self
        self.directory.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if self._takeover_if_stale():
                    continue
                if time.monotonic() >= deadline:
                    holder = read_lock_info(self.path) or {}
                    raise StoreLockError(
                        f"could not lock {self.directory} within "
                        f"{self.timeout:.3g}s; held by pid "
                        f"{holder.get('pid', '?')} on "
                        f"{holder.get('host', '?')} ({self.path})"
                    )
                time.sleep(self.poll)
                continue
            with os.fdopen(fd, "w") as handle:
                json.dump({
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "acquired_unix": time.time(),
                }, handle)
                handle.flush()
            self._held = True
            return self

    def _takeover_if_stale(self) -> bool:
        """Remove a provably-dead holder's lockfile; True if removed."""
        info = read_lock_info(self.path)
        if info is None:
            # Missing (released between our O_EXCL and this read): retry.
            if not self.path.exists():
                return True
            # Unparseable: steal only once older than the write grace.
            try:
                age = time.time() - self.path.stat().st_mtime
            except OSError:
                return True
            if age < self.stale_grace:
                return False
        else:
            host = info.get("host")
            if host is not None and host != socket.gethostname():
                return False  # cannot probe pids across hosts
            try:
                pid = int(info.get("pid", -1))
            except (TypeError, ValueError):
                pid = -1
            if pid_alive(pid):
                return False
        # Atomic steal: rename the dead lock aside so two contenders
        # cannot both "win" an unlink-then-create race; the loser's
        # os.replace fails with FileNotFoundError and it re-contends.
        aside = self.path.with_name(
            f"{self.path.name}.stale-{os.getpid()}-{time.monotonic_ns()}"
        )
        try:
            os.replace(self.path, aside)
        except FileNotFoundError:
            return True  # someone else stole it; re-contend
        try:
            os.unlink(aside)
        except OSError:
            pass
        self.stale_takeovers += 1
        log.warning("took over stale lock %s (dead holder %s)",
                    self.path, info)
        if self.on_stale_takeover is not None:
            self.on_stale_takeover()
        return True

    # -- release --------------------------------------------------------------------
    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        info = read_lock_info(self.path)
        if info is not None and info.get("pid") not in (None, os.getpid()):
            # Someone declared us dead and took over; their lock, not ours.
            log.warning("lock %s no longer ours (taken by pid %s); "
                        "leaving it", self.path, info.get("pid"))
            return
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "DirectoryLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
