"""Executor supervision primitives: circuit breaker + full-jitter backoff.

Infrastructure failures (a worker segfaulting takes its whole process
pool down) are different from job failures: retrying into a broken
substrate just burns pool rebuilds. :class:`CircuitBreaker` implements
the classic three-state machine over *consecutive* infrastructure
failures:

- **closed** — healthy; failures increment a consecutive counter, any
  success resets it;
- **open** — ``threshold`` consecutive failures seen; further work is
  refused (``allow()`` is False) until ``cooldown`` seconds pass;
- **half-open** — cooldown elapsed; exactly one probe is let through.
  Its success closes the circuit, its failure re-opens it (and restarts
  the cooldown).

:func:`full_jitter_delay` is the AWS-style "full jitter" backoff: the
k-th retry sleeps ``uniform(0, base * 2**(k-1))``. A deterministic
``backoff * 2**(k-1)`` schedule makes parallel CI shards retry in
lockstep and thunder-herd whatever they all depend on; jitter decorrelates
them. The draw is seeded from the job's own identity (cache key), so a
given (job, attempt) pair always sleeps the same amount — chaos runs
stay reproducible.
"""

from __future__ import annotations

import hashlib
import time

__all__ = ["CircuitBreaker", "full_jitter_delay", "jitter_token"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        #: Times the breaker transitioned into OPEN (monotonic count).
        self.times_opened = 0

    def record_failure(self) -> bool:
        """Count one infrastructure failure; True when this opens it."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open, cooldown restarts.
            self._open()
            return True
        if self.state == self.CLOSED \
                and self.consecutive_failures >= self.threshold:
            self._open()
            return True
        return False

    def record_success(self) -> None:
        """Any success proves the substrate healthy again."""
        self.consecutive_failures = 0
        self.state = self.CLOSED
        self.opened_at = None

    def allow(self) -> bool:
        """May the caller attempt (or rebuild) now?

        In the open state this flips to half-open once the cooldown has
        elapsed, admitting a single probe; while that probe is out,
        further calls are refused.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                return True
            return False
        return False  # half-open: one probe already out

    def _open(self) -> None:
        self.state = self.OPEN
        self.opened_at = self._clock()
        self.times_opened += 1

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "times_opened": self.times_opened,
        }


def jitter_token(item: object) -> str:
    """A stable per-job identity to seed jitter from.

    Content-addressed jobs use their cache key; anything else falls
    back to ``repr`` (stable for the value-like tuples/strings batches
    are made of).
    """
    cache_key = getattr(item, "cache_key", None)
    if callable(cache_key):
        try:
            return str(cache_key())
        except Exception:
            pass
    return repr(item)


def full_jitter_delay(base: float, attempt: int, token: str) -> float:
    """Full-jitter backoff before retry ``attempt`` (1-based failures).

    Deterministic in ``(base, attempt, token)``: the fraction of the
    exponential cap comes from a SHA-256 over the token and attempt, so
    reruns sleep identically while distinct jobs decorrelate.
    """
    cap = base * (2 ** max(attempt - 1, 0))
    if cap <= 0:
        return 0.0
    digest = hashlib.sha256(f"{token}#{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return cap * fraction
