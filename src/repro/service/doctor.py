"""``repro doctor`` — fsck for cache and checkpoint directories.

The store's commit protocol guarantees a crash can only leave two kinds
of debris: orphaned ``.tmp`` files (the writer died before its rename)
and a stale lockfile (the holder died mid-maintenance). Bit rot and
torn non-atomic writers additionally produce corrupt artifacts, which
normal reads already quarantine lazily. :func:`diagnose` makes all of
that *eagerly* visible for one directory tree:

- every committed artifact is checksum-verified
  (:func:`~repro.service.store.verify_artifact`): corrupt entries and
  stale-schema entries are reported (and, under ``--repair``,
  quarantined resp. evicted);
- orphaned ``*.tmp`` files are reported (removed under ``--repair``);
- the lockfile is classified live (informational) or stale — dead
  holder — (removed under ``--repair``);
- the quarantine directory and any drained-batch ``pending.json`` are
  listed so an operator sees what needs a postmortem or a resubmit;
- a ``checkpoints/`` subdirectory (the default phase-checkpoint
  location) is fsck'd recursively with the same rules;
- a ``board/`` subdirectory (the distributed fleet's job board, see
  :mod:`repro.distributed`) is swept for dead coordination state:
  claims whose heartbeat outlived their lease (``expired-lease``),
  claims whose queue entry is gone (``orphan-claim``), worker
  registrations whose process died or stopped heartbeating
  (``stale-worker``), registrations whose host label is absent from the
  coordinator-published ``board/hosts.json`` registry
  (``unknown-host``, informational — possibly a live foreign worker,
  never swept), stats snapshots whose heartbeat sequence regressed
  behind their registration's (skew debris: mtimes on that host cannot
  be trusted), and reclaim/duplicate-marker/temp debris
  (``board-debris``, informational). Repairs reuse the board's own
  rename-aside reclaim discipline, so a doctor racing a live reaper is
  safe.

The exit contract is binary: a directory is **clean** when it has no
*problem* findings (``corrupt-artifact``, ``stale-schema``,
``orphan-tmp``, ``stale-lock``, ``missing-root``, ``orphan-claim``,
``expired-lease``, ``stale-worker``). Informational findings
(``quarantine-entry``, ``active-lock``, ``pending-batch``,
``board-debris``, ``unknown-host``) never fail a directory —
quarantine is where problems go to be *handled*, so its contents are
news, not sickness.

Repairs run under the store's :class:`~repro.service.locking.DirectoryLock`
so two doctors (or a doctor and a ``clear``) never interleave sweeps.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.locking import read_lock_info, pid_alive
from repro.service.store import (
    PENDING_NAME,
    QUARANTINE_DIR,
    ResultStore,
    verify_artifact,
)
from repro.utils.logconf import get_logger

__all__ = ["DOCTOR_SCHEMA_VERSION", "PROBLEM_KINDS", "Finding",
           "DoctorReport", "diagnose"]

log = get_logger("service.doctor")

#: Schema of the JSON artifact written by ``repro doctor --out``.
DOCTOR_SCHEMA_VERSION = 1

#: Finding kinds that make a directory unhealthy (exit 1).
PROBLEM_KINDS = frozenset({
    "missing-root", "corrupt-artifact", "stale-schema", "orphan-tmp",
    "stale-lock", "orphan-claim", "expired-lease", "stale-worker",
})

#: Age past which a worker stats snapshot counts as board debris.
STALE_STATS_SECONDS = 3600.0


@dataclass
class Finding:
    """One observation about the directory under diagnosis."""

    kind: str
    path: str
    detail: str
    key: str | None = None
    repaired: bool = False
    action: str | None = None

    @property
    def problem(self) -> bool:
        return self.kind in PROBLEM_KINDS

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "key": self.key,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass
class DoctorReport:
    """Everything :func:`diagnose` learned about one directory."""

    root: str
    repair: bool
    scanned: int = 0
    findings: list[Finding] = field(default_factory=list)
    checkpoints: "DoctorReport | None" = None
    #: Parsed drained-batch queue (``pending.json``), when one exists —
    #: carried whole so ``--requeue`` can clear the file without losing
    #: the job specs an operator needs to resubmit.
    pending: dict | None = None

    @property
    def problems(self) -> list[Finding]:
        nested = self.checkpoints.problems if self.checkpoints else []
        return [f for f in self.findings if f.problem] + nested

    @property
    def clean(self) -> bool:
        """True when nothing is wrong — or everything wrong was repaired."""
        return all(f.repaired for f in self.problems)

    def to_dict(self) -> dict:
        return {
            "kind": "doctor_report",
            "schema": DOCTOR_SCHEMA_VERSION,
            "root": self.root,
            "repair": self.repair,
            "scanned": self.scanned,
            "clean": self.clean,
            "time_unix": time.time(),
            "findings": [f.to_dict() for f in self.findings],
            "checkpoints": (self.checkpoints.to_dict()
                            if self.checkpoints else None),
            "pending": self.pending,
        }

    def to_text(self) -> str:
        lines = [f"doctor: {self.root}",
                 f"  scanned {self.scanned} artifact(s)"]
        reports = [("", self)]
        if self.checkpoints is not None:
            reports.append(("checkpoints/", self.checkpoints))
            lines[-1] += (f" (+{self.checkpoints.scanned} "
                          "checkpoint artifact(s))")
        shown = 0
        for prefix, report in reports:
            for finding in report.findings:
                mark = ("repaired" if finding.repaired
                        else "PROBLEM" if finding.problem else "info")
                action = f" -> {finding.action}" if finding.action else ""
                lines.append(f"  [{mark}] {finding.kind}: "
                             f"{prefix}{finding.path} — "
                             f"{finding.detail}{action}")
                shown += 1
        if not shown:
            lines.append("  no findings")
        lines.append(f"  verdict: {'CLEAN' if self.clean else 'UNHEALTHY'}")
        return "\n".join(lines)


def diagnose(root, repair: bool = False, requeue: bool = False,
             _recurse: bool = True) -> DoctorReport:
    """Fsck the store directory at ``root``.

    With ``repair=True``, problems are fixed in place (corrupt →
    quarantined, stale schema → evicted, orphan tmp / stale lock →
    removed) under the store's directory lock, and each finding is
    marked ``repaired`` with the action taken.

    With ``requeue=True``, a drained-batch ``pending.json`` is consumed:
    its parsed contents land in :attr:`DoctorReport.pending` (so the
    jobs can be surfaced or resubmitted) and the file is removed —
    matching what a restarting ``repro serve`` does automatically.
    """
    root = Path(root)
    report = DoctorReport(root=str(root), repair=repair)
    if not root.is_dir():
        report.findings.append(Finding(
            kind="missing-root", path=str(root),
            detail="directory does not exist"))
        return report
    store = ResultStore(root)
    if repair:
        # Handle a stale lock *before* acquiring our own: acquisition
        # would silently take it over and the finding would be lost.
        _scan_lock(store, report, repair=True)
        with store.lock():
            _scan(root, store, report, repair=True, requeue=requeue,
                  include_lock=False)
    else:
        _scan(root, store, report, repair=False, requeue=requeue)
    if _recurse:
        ckdir = root / "checkpoints"
        if ckdir.is_dir():
            report.checkpoints = diagnose(ckdir, repair=repair,
                                          _recurse=False)
    return report


def _scan(root: Path, store: ResultStore, report: DoctorReport,
          repair: bool, requeue: bool = False,
          include_lock: bool = True) -> None:
    _scan_artifacts(store, report, repair)
    _scan_orphan_tmps(root, report, repair)
    if include_lock:
        _scan_lock(store, report, repair)
    _scan_quarantine(store, report)
    _scan_pending(root, report, requeue)
    _scan_board(root, report, repair)


def _scan_artifacts(store: ResultStore, report: DoctorReport,
                    repair: bool) -> None:
    for path in store._shard_files():
        report.scanned += 1
        status, detail, _ = verify_artifact(
            path, schema_version=store.schema_version)
        if status == "ok" or status == "missing":
            continue
        if status == "stale-schema":
            finding = Finding(kind="stale-schema", path=path.name,
                              detail=detail, key=path.stem)
            if repair:
                store._evict_path(path)
                finding.repaired = True
                finding.action = "evicted"
            report.findings.append(finding)
        else:  # corrupt
            finding = Finding(kind="corrupt-artifact", path=path.name,
                              detail=detail, key=path.stem)
            if repair:
                dest = store.quarantine_path(path, key=path.stem,
                                             reason=f"doctor: {detail}")
                finding.repaired = True
                finding.action = (f"quarantined as {dest.name}"
                                  if dest else "already handled")
            report.findings.append(finding)


def _scan_orphan_tmps(root: Path, report: DoctorReport,
                      repair: bool) -> None:
    candidates = sorted(
        set(root.glob("*.tmp")) | set(root.glob(".*.tmp"))
        | set(root.glob("*/*.tmp")) | set(root.glob("*/.*.tmp"))
        | set(root.glob(".lock.stale-*"))  # takeover debris
    )
    for path in candidates:
        if QUARANTINE_DIR in path.parts:
            continue
        finding = Finding(
            kind="orphan-tmp", path=str(path.relative_to(root)),
            detail="uncommitted temp file left by a crashed writer")
        if repair:
            try:
                os.unlink(path)
                finding.repaired = True
                finding.action = "removed"
            except FileNotFoundError:
                finding.repaired = True
                finding.action = "already gone"
        report.findings.append(finding)


def _scan_lock(store: ResultStore, report: DoctorReport,
               repair: bool) -> None:
    path = store.lock_path
    if not path.exists():
        return
    info = read_lock_info(path)
    holder = f"pid {info.get('pid')} on {info.get('host')}" if info else None
    same_host = bool(info) and info.get("host") in (None,
                                                    socket.gethostname())
    alive = (same_host and isinstance(info.get("pid"), int)
             and pid_alive(info["pid"]))
    if repair and info is not None and info.get("pid") == os.getpid():
        # Under --repair the doctor itself holds the lock; that is not
        # a finding, it is the procedure.
        return
    if alive or (info is not None and not same_host):
        report.findings.append(Finding(
            kind="active-lock", path=path.name,
            detail=f"held by live {holder}" if same_host
            else f"held by {holder} (remote host; cannot probe)"))
        return
    finding = Finding(
        kind="stale-lock", path=path.name,
        detail=(f"holder {holder} is dead" if info
                else "unparseable lockfile (crash debris)"))
    if repair:
        try:
            os.unlink(path)
            finding.repaired = True
            finding.action = "removed"
        except FileNotFoundError:
            finding.repaired = True
            finding.action = "already gone"
    report.findings.append(finding)


def _scan_quarantine(store: ResultStore, report: DoctorReport) -> None:
    for entry in store.list_quarantine():
        doc = entry.get("report")
        detail = "quarantined artifact"
        key = None
        if isinstance(doc, dict):
            key = doc.get("key")
            detail = (f"{doc.get('kind', 'report')}: "
                      f"{doc.get('reason') or doc.get('error') or ''}"
                      .rstrip(": "))
        report.findings.append(Finding(
            kind="quarantine-entry",
            path=f"{QUARANTINE_DIR}/{entry['file']}",
            detail=detail, key=key))


def _scan_board(root: Path, report: DoctorReport, repair: bool) -> None:
    """Sweep a distributed fleet's job board for dead coordination state.

    Imported lazily (and by submodule, not the ``repro.distributed``
    package) to keep the service layer's import graph acyclic: the
    board module only depends on ``repro.service.store``.
    """
    from repro.distributed.board import BOARD_DIR, JobBoard, read_json

    board_root = root / BOARD_DIR
    if not board_root.is_dir():
        return
    board = JobBoard(board_root)
    now = time.time()

    def _relative(path: Path) -> str:
        return str(path.relative_to(root))

    def _repair_unlink(finding: Finding, path: Path) -> None:
        if not repair:
            return
        try:
            os.unlink(path)
            finding.repaired = True
            finding.action = "removed"
        except FileNotFoundError:
            finding.repaired = True
            finding.action = "already gone"

    # -- claims: expired leases and orphans ---------------------------------
    try:
        claim_paths = sorted(board.claims_dir.glob("*.claim"))
    except OSError:
        claim_paths = []
    for path in claim_paths:
        speculative = path.name.endswith(".spec.claim")
        key = path.name[: -len(".spec.claim" if speculative
                               else ".claim")]
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue  # released/reclaimed mid-scan
        doc = read_json(path)
        lease = 10.0
        if isinstance(doc, dict):
            try:
                lease = float(doc.get("lease_seconds", 10.0))
            except (TypeError, ValueError):
                pass
        if age <= lease:
            continue  # heartbeat is fresh: the holder is alive
        holder = (f"worker {doc.get('worker')}" if isinstance(doc, dict)
                  else "unparseable claim")
        seq_note = ""
        if isinstance(doc, dict) and isinstance(doc.get("seq"), int):
            seq_note = f", heartbeat seq {doc['seq']}"
        if board.entry_path(key).exists():
            finding = Finding(
                kind="expired-lease", path=_relative(path), key=key,
                detail=(f"{holder} stopped heartbeating "
                        f"{age:.1f}s ago (lease {lease:.1f}s{seq_note}); "
                        "a live coordinator would reclaim and requeue "
                        "this job"))
        else:
            finding = Finding(
                kind="orphan-claim", path=_relative(path), key=key,
                detail=(f"{holder}'s claim outlived its queue entry by "
                        f"{age:.1f}s (job settled or poisoned)"))
        if repair and board.reclaim(key, speculative=speculative):
            finding.repaired = True
            finding.action = "reclaimed (rename-aside)"
        elif repair:
            finding.repaired = True
            finding.action = "already reclaimed"
        report.findings.append(finding)

    # -- worker registrations -----------------------------------------------
    known_hosts = board.read_host_registry()
    reg_seq: dict[str, int] = {}
    for path, doc, age in board.list_workers():
        stale_after = 10.0
        host = pid = None
        if isinstance(doc, dict):
            host, pid = doc.get("host"), doc.get("pid")
            try:
                stale_after = float(doc.get("stale_after", 10.0))
            except (TypeError, ValueError):
                pass
            worker = doc.get("worker")
            if isinstance(doc.get("seq"), int) and worker:
                reg_seq[str(worker)] = doc["seq"]
        if (known_hosts is not None and isinstance(host, str)
                and host not in known_hosts
                and host != socket.gethostname()):
            # Informational, never swept: possibly a live worker from a
            # rig nobody told this coordinator about (split brain) — the
            # store stays safe either way, but the operator should know.
            report.findings.append(Finding(
                kind="unknown-host", path=_relative(path),
                detail=(f"registration of {doc.get('worker') if doc else '?'}"
                        f" claims host {host!r}, which is not in the "
                        "board's host registry")))
        same_host = host in (None, socket.gethostname())
        dead = (same_host and isinstance(pid, int)
                and not pid_alive(pid))
        if not dead and age <= stale_after:
            continue
        why = (f"pid {pid} is dead" if dead
               else f"no heartbeat for {age:.1f}s "
                    f"(stale after {stale_after:.1f}s)")
        finding = Finding(
            kind="stale-worker", path=_relative(path),
            detail=f"registration of {doc.get('worker') if doc else '?'}: "
                   f"{why}")
        _repair_unlink(finding, path)
        report.findings.append(finding)

    # -- worker stats snapshots ---------------------------------------------
    # Stats files deliberately outlive their worker (the fleet totals of
    # a SIGKILLed worker stay mergeable), so only sweep truly ancient
    # ones — an hour with no publish means nobody is merging them — plus
    # sequence regressions: a snapshot lagging its own registration's
    # heartbeat seq by more than one publish means mtimes on that host
    # went backwards (clock skew debris) or its stats writes are failing.
    for worker_id, doc, age in board.list_worker_stats():
        path = board.worker_stats_path(worker_id)
        stats_seq = doc.get("seq") if isinstance(doc, dict) else None
        expected = reg_seq.get(worker_id)
        if (isinstance(stats_seq, int) and expected is not None
                and stats_seq + 2 < expected):
            finding = Finding(
                kind="board-debris", path=_relative(path),
                detail=(f"worker stats snapshot of {worker_id}: heartbeat "
                        f"sequence went backwards (stats seq {stats_seq} "
                        f"vs registration seq {expected}; clock-skew "
                        "debris)"))
            _repair_unlink(finding, path)
            report.findings.append(finding)
            continue
        if age <= STALE_STATS_SECONDS:
            continue
        finding = Finding(
            kind="board-debris", path=_relative(path),
            detail=f"worker stats snapshot of {worker_id}: "
                   f"last published {age:.0f}s ago")
        _repair_unlink(finding, path)
        report.findings.append(finding)

    # -- debris: reclaim asides, duplicate markers, torn publishes ----------
    debris = (
        sorted(board.claims_dir.glob("*.claim.reclaimed-*"))
        + sorted(board.done_dir.glob("*.dup-*"))
        + sorted(board_root.rglob(".*.tmp"))  # covers .bp-* publishes too
    )
    for path in debris:
        kinds = {"reclaimed": "reaper rename-aside debris",
                 "dup": "duplicate-execution marker (lost a "
                        "first-commit-wins race)"}
        what = ("torn exclusive-publish temp file"
                if path.suffix == ".tmp"
                else kinds["dup" if ".dup-" in path.name else "reclaimed"])
        finding = Finding(kind="board-debris", path=_relative(path),
                          detail=what)
        _repair_unlink(finding, path)
        report.findings.append(finding)


def _scan_pending(root: Path, report: DoctorReport,
                  requeue: bool = False) -> None:
    path = root / PENDING_NAME
    if not path.exists():
        return
    doc = None
    try:
        doc = json.loads(path.read_text())
        n = len(doc.get("jobs", [])) if isinstance(doc, dict) else 0
        detail = (f"{n} drained job(s) awaiting resubmission "
                  "(rerun the batch; completed jobs hit the cache)")
    except (OSError, ValueError):
        detail = "unreadable pending-batch file"
    finding = Finding(kind="pending-batch", path=path.name, detail=detail)
    if isinstance(doc, dict):
        report.pending = doc
    if requeue:
        try:
            os.unlink(path)
            finding.repaired = True
            finding.action = ("cleared (specs carried in this report)"
                              if isinstance(doc, dict)
                              else "cleared (unreadable; nothing to carry)")
        except FileNotFoundError:
            finding.repaired = True
            finding.action = "already gone"
    report.findings.append(finding)
