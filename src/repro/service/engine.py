"""The mapping-job engine: content-addressed cache + batch executor.

:class:`MappingEngine` is the façade every traffic path goes through
(CLI ``map``/``compare``, the experiment runner, ``report_all``):

1. each submitted :class:`~repro.service.jobs.MappingJob` is looked up in
   the :class:`~repro.service.store.ResultStore` by its content hash;
2. misses fan out over the :class:`~repro.service.executor.BatchExecutor`
   (process pool, per-job timeout, bounded retries);
3. fresh results are persisted back to the store, so identical jobs —
   across commands, sessions and scales that share cells — are never
   solved twice.

Per-job telemetry (queued / started / finished, wall seconds, cache
hits) is emitted through :mod:`repro.utils.logconf` under
``repro.service.engine`` and aggregated in :class:`EngineStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from functools import partial
from typing import Sequence

from repro.errors import ConfigError, ServiceError
from repro.observability.metrics import get_registry
from repro.observability.trace import active_tracer, event as trace_event, span
from repro.service.executor import BatchExecutor, ExecutorConfig, JobOutcome
from repro.service.jobs import (
    JobResult,
    JobRuntime,
    MappingJob,
    attach_netview,
    execute_mapping_job,
)
from repro.service.store import PENDING_NAME, ResultStore, atomic_write_json
from repro.utils.logconf import get_logger

__all__ = ["EngineStats", "MappingEngine"]

log = get_logger("service.engine")


@dataclass
class EngineStats:
    """Aggregate counters over every batch this engine has run.

    Every bump is mirrored into the process-wide metrics registry
    (``engine.submitted`` etc.), so registry snapshots cover engine
    traffic without consumers having to hold an engine reference.
    """

    submitted: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    timed_out: int = 0
    retried: int = 0
    degraded: int = 0
    quarantined: int = 0
    poison_jobs: int = 0
    circuit_open: int = 0
    stale_locks_taken: int = 0
    drained: int = 0

    def bump(self, field_name: str, n: int = 1) -> None:
        if n <= 0:
            return
        setattr(self, field_name, getattr(self, field_name) + n)
        get_registry().counter(f"engine.{field_name}").inc(n)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "retried": self.retried,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "poison_jobs": self.poison_jobs,
            "circuit_open": self.circuit_open,
            "stale_locks_taken": self.stale_locks_taken,
            "drained": self.drained,
        }


class MappingEngine:
    """Compose store + executor into the one entry point for mapping work.

    Parameters
    ----------
    cache_dir:
        Root of the content-addressed store; ``None`` disables caching.
    jobs:
        Worker processes (``1`` = serial in-process execution).
    job_timeout:
        Per-attempt wall-clock budget in seconds.
    retries / backoff:
        Transient-failure retry policy (see :class:`ExecutorConfig`).
    store:
        Pre-built :class:`ResultStore`, overriding ``cache_dir``.
    runtime:
        Optional :class:`~repro.service.jobs.JobRuntime` resilience
        policy (deadline, degradation, checkpoint/resume) applied to
        every executed job. Never part of the cache key.
    backend:
        ``"local"`` (default) runs misses on the in-process
        :class:`BatchExecutor`; ``"distributed"`` shards them across
        fleet workers via the shared job board under the cache
        directory (requires a store — the board lives inside it).
    distributed:
        Optional :class:`~repro.distributed.DistributedConfig` for the
        distributed backend; by default the engine spawns ``jobs``
        local worker subprocesses with ``job_timeout`` as the per-job
        budget.
    """

    def __init__(
        self,
        cache_dir=None,
        jobs: int = 1,
        job_timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        store: ResultStore | None = None,
        runtime: JobRuntime | None = None,
        executor_config: ExecutorConfig | None = None,
        backend: str = "local",
        distributed=None,
    ):
        if backend not in ("local", "distributed"):
            raise ConfigError(
                f"unknown engine backend {backend!r}; "
                "choose 'local' or 'distributed'"
            )
        if store is None and cache_dir is not None:
            store = ResultStore(cache_dir)
        self.store = store
        self.runtime = runtime
        self.backend = backend
        if backend == "distributed":
            if store is None:
                raise ConfigError(
                    "the distributed backend needs a cache directory: the "
                    "shared store is the fleet's coordination substrate"
                )
            # Imported lazily: the fleet package sits above the service
            # layer and most engine users never touch it.
            from repro.distributed import DistributedConfig, DistributedExecutor

            if distributed is None:
                distributed = DistributedConfig(
                    spawn_workers=max(jobs, 1), timeout=job_timeout
                )
            self.executor = DistributedExecutor(
                store, distributed, on_event=self._on_executor_event
            )
        else:
            if executor_config is None:
                executor_config = ExecutorConfig(
                    jobs=jobs, timeout=job_timeout,
                    retries=retries, backoff=backoff,
                )
            self.executor = BatchExecutor(executor_config,
                                          on_event=self._on_executor_event)
        self.stats = EngineStats()

    # -- telemetry ------------------------------------------------------------------
    def _on_executor_event(self, event: str, info: dict) -> None:
        job = info.get("item")
        label = job.describe() if isinstance(job, MappingJob) else job
        if event == "queued":
            log.debug("queued [%s] %s", info["index"], label)
        elif event == "started":
            if info.get("attempt", 1) > 1:
                self.stats.bump("retried")
            log.info("started [%s] %s (attempt %d)",
                     info["index"], label, info["attempt"])
        elif event == "finished":
            log.info(
                "finished [%s] %s in %.3fs attempts=%d cache_hit=False "
                "error=%s", info["index"], label, info["wall_seconds"],
                info["attempts"], info["error"],
            )
        elif event == "poisoned":
            self.stats.bump("poison_jobs")
            trace_event("engine.poison_job", index=info["index"],
                        deaths=info.get("deaths"))
            log.error("poison job [%s] %s quarantined after %s worker "
                      "death(s)", info["index"], label, info.get("deaths"))
            if self.store is not None and isinstance(job, MappingJob):
                # Serialize the killer's full spec for postmortem; the
                # stem carries the cache key so `repro doctor` and a
                # human can tie the report back to the job.
                key = job.cache_key()
                try:
                    self.store.write_quarantine_report(
                        f"poison-{key[:16]}",
                        {
                            "kind": "poison_job",
                            "schema": 1,
                            "key": key,
                            "job": job.payload(),
                            "describe": job.describe(),
                            "deaths": info.get("deaths"),
                            "worker": info.get("worker"),
                            "host": info.get("host"),
                            "error": info.get("error"),
                            "time_unix": time.time(),
                        },
                    )
                except OSError as exc:  # pragma: no cover - disk full
                    log.warning("could not write poison-job report: %s", exc)
        elif event == "circuit_open":
            self.stats.bump("circuit_open")
            trace_event("engine.circuit_open",
                        failures=info.get("failures"))
            log.error("executor circuit breaker opened after %s "
                      "consecutive pool failures", info.get("failures"))
        elif event == "pool_rebuild":
            log.warning("executor rebuilt its worker pool "
                        "(rebuild #%s): %s", info.get("rebuilds"),
                        info.get("error"))
        elif event == "drain_requested":
            log.warning("engine draining: %s", info.get("reason"))

    # -- execution ------------------------------------------------------------------
    def run(self, jobs: Sequence[MappingJob]) -> list[JobOutcome]:
        """Run a batch; outcomes align positionally with ``jobs``.

        Successful outcomes carry a :class:`JobResult` in ``.result``
        (``from_cache`` set on store hits); failures carry ``.error``.
        """
        jobs = list(jobs)
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        miss_indices: list[int] = []
        t0 = time.perf_counter()
        tracer = active_tracer()
        registry = get_registry()
        store_before = (
            (self.store.stats.quarantined, self.store.stats.stale_locks_taken)
            if self.store is not None else (0, 0)
        )
        with span("engine.batch", jobs=len(jobs)) as batch_span:
            for i, job in enumerate(jobs):
                self.stats.bump("submitted")
                key = job.cache_key()
                log.debug("queued [%d] %s key=%s", i, job.describe(), key[:12])
                payload = self.store.get(key) if self.store is not None else None
                if payload is not None:
                    self.stats.bump("cache_hits")
                    # A hit skips the mapper entirely: the saved-time gauge
                    # accumulates the original run's map_seconds, and the
                    # outcome reports wall_seconds=0.0 explicitly — the hit
                    # itself did no mapping work.
                    registry.gauge("engine.cache_hit_saved_seconds").add(
                        float(payload.get("map_seconds", 0.0))
                    )
                    trace_event("engine.cache_hit", index=i, key=key[:12],
                                saved_s=float(payload.get("map_seconds", 0.0)))
                    if (self.runtime is not None and self.runtime.netview
                            and "netview" not in payload):
                        # Cached payloads from pre-netview runs are upgraded
                        # in place: the summary is deterministic, so the
                        # refreshed artifact is what the worker would have
                        # produced (file-backed workloads can't be rebuilt
                        # here and simply stay summary-less).
                        if attach_netview(payload):
                            self._store_put(key, payload)
                    result = JobResult.from_payload(payload, from_cache=True)
                    outcomes[i] = JobOutcome(
                        index=i, item=job, result=result, error=None,
                        attempts=0, wall_seconds=0.0,
                    )
                    log.info("finished [%d] %s in 0.000s attempts=0 "
                             "cache_hit=True error=None", i, job.describe())
                else:
                    miss_indices.append(i)
            if miss_indices:
                runtime = self.runtime
                if tracer is not None:
                    # An active tracer means the caller wants this batch
                    # traced; pooled workers then record locally and ship
                    # their span trees back for grafting.
                    runtime = (replace(runtime, trace=True)
                               if runtime is not None else JobRuntime(trace=True))
                body = execute_mapping_job
                if runtime is not None and runtime.active:
                    body = partial(execute_mapping_job, runtime=runtime)
                if hasattr(self.executor, "runtime"):
                    # The distributed backend serializes the runtime into
                    # each board entry instead of closing over it.
                    self.executor.runtime = runtime
                raw = self.executor.run(body, [jobs[i] for i in miss_indices])
                for outcome, i in zip(raw, miss_indices):
                    job = jobs[i]
                    if outcome.ok:
                        payload = outcome.result
                        # Worker span trees never reach the store: traces
                        # are timing-nondeterministic and would bloat the
                        # content-addressed artifacts.
                        trace_docs = payload.pop("trace", None)
                        if trace_docs and tracer is not None:
                            tracer.graft(trace_docs, job_index=i,
                                         job_key=payload["key"][:12])
                        degraded = bool(payload.get("degraded"))
                        if degraded:
                            self.stats.bump("degraded")
                            log.warning(
                                "job [%d] %s degraded: %s", i, job.describe(),
                                "; ".join(
                                    f"{e.get('phase')} {e.get('action')} "
                                    f"({e.get('reason')})"
                                    for e in payload.get("degradation", [])
                                ) or "unknown",
                            )
                        if self.store is not None and not degraded:
                            # A degraded mapping is valid but below the
                            # mapper's quality bar — caching it would pin the
                            # deadline's collateral damage into every future
                            # run of this job.
                            self._store_put(payload["key"], payload)
                        self.stats.bump("executed")
                        result = JobResult.from_payload(payload)
                    else:
                        self.stats.bump("failed")
                        if outcome.timed_out:
                            self.stats.bump("timed_out")
                        if outcome.drained:
                            self.stats.bump("drained")
                        result = None
                    outcomes[i] = JobOutcome(
                        index=i, item=job, result=result, error=outcome.error,
                        attempts=outcome.attempts,
                        wall_seconds=outcome.wall_seconds,
                        timed_out=outcome.timed_out,
                        poisoned=outcome.poisoned,
                        drained=outcome.drained,
                    )
            self._persist_pending(jobs, outcomes)
            done = [o for o in outcomes if o is not None]
            batch_span.set(
                cached=sum(1 for o in done if o.attempts == 0),
                executed=sum(1 for o in done if o.ok and o.attempts > 0),
                failed=sum(1 for o in done if not o.ok),
            )
        if self.store is not None:
            # Fold store-level durability incidents that surfaced during
            # this batch into the engine's own counters: one snapshot
            # answers "did anything get quarantined / any locks stolen?".
            self.stats.bump("quarantined",
                            self.store.stats.quarantined - store_before[0])
            self.stats.bump(
                "stale_locks_taken",
                self.store.stats.stale_locks_taken - store_before[1])
        log.info(
            "batch of %d done in %.3fs: %d cached, %d executed, %d failed",
            len(jobs), time.perf_counter() - t0,
            sum(1 for o in done if o.attempts == 0),
            sum(1 for o in done if o.ok and o.attempts > 0),
            sum(1 for o in done if not o.ok),
        )
        return outcomes  # type: ignore[return-value]

    def _store_put(self, key: str, payload: dict) -> None:
        """Persist a result, tolerating storage failure.

        A full disk (or an injected ``store-enospc``) costs the cache
        entry, never the computed mapping: the commit protocol already
        cleaned up its temp file and counted a ``put_failure``.
        """
        try:
            self.store.put(key, payload)
        except (OSError, ServiceError) as exc:
            log.warning("could not cache result %s (%s); "
                        "returning it uncached", key[:12], exc)

    def _persist_pending(self, jobs: Sequence[MappingJob],
                         outcomes: Sequence[JobOutcome | None]) -> None:
        """Record drained (never-ran) jobs for a warm resume.

        A drained batch leaves ``<cache>/pending.json`` describing every
        job that was abandoned mid-shutdown; a clean batch removes it.
        Resubmitting the same batch resumes for free anyway (completed
        jobs hit the cache), so this file is the operator-facing receipt
        plus the machine-readable queue, not the resume mechanism itself.
        """
        if self.store is None:
            return
        pending_path = self.store.root / PENDING_NAME
        drained = [o for o in outcomes
                   if o is not None and o.drained]
        if not drained:
            try:
                pending_path.unlink()
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - permissions
                pass
            return
        doc = {
            "kind": "pending_batch",
            "schema": 1,
            "time_unix": time.time(),
            "jobs": [
                {
                    "index": o.index,
                    "key": jobs[o.index].cache_key(),
                    "describe": jobs[o.index].describe(),
                    "spec": jobs[o.index].payload(),
                    "error": o.error,
                }
                for o in drained
            ],
        }
        try:
            atomic_write_json(pending_path, doc)
        except OSError as exc:  # pragma: no cover - disk full
            log.warning("could not persist pending queue: %s", exc)
            return
        log.warning(
            "drained batch: %d job(s) not run; pending queue saved to %s "
            "(resubmit the batch to resume — completed jobs will hit the "
            "cache)", len(drained), pending_path)

    def run_one(self, job: MappingJob) -> JobResult:
        """Run a single job; raises :class:`ServiceError` on failure."""
        outcome = self.run([job])[0]
        if not outcome.ok:
            raise ServiceError(
                f"mapping job {job.describe()} failed after "
                f"{outcome.attempts} attempt(s): {outcome.error}"
            )
        return outcome.result
