"""Batch execution of jobs over a process pool.

The executor is deliberately generic: it runs ``fn(item)`` for a list of
picklable items with

- a configurable worker count (``jobs=1`` falls back to in-process
  serial execution — no pool, no pickling, easy debugging);
- a per-job wall-clock timeout, enforced *inside* the worker via
  ``SIGALRM`` so a hung job is cancelled without poisoning the pool
  (on platforms without ``SIGALRM`` the timeout is best-effort off);
- bounded retry with exponential backoff for transient failures (any
  exception except a timeout); a job that keeps failing is reported as a
  failed :class:`JobOutcome` without killing the rest of the batch.
  Backoff never blocks the dispatch loop: retries are parked on a
  due-time queue while completed futures keep being harvested;
- hard worker deaths (segfault, OOM-kill, ``os._exit``) surface as
  ``BrokenProcessPool``; the pool is rebuilt once per batch and every
  in-flight job is either rescheduled (within its retry budget) or
  reported failed — one crashing job cannot sink the batch.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import ConfigError, JobTimeoutError
from repro.observability.metrics import get_registry
from repro.resilience import faultinject
from repro.utils.logconf import get_logger

__all__ = ["ExecutorConfig", "JobOutcome", "BatchExecutor"]

log = get_logger("service.executor")


@dataclass(frozen=True)
class ExecutorConfig:
    """Batch-execution knobs.

    Attributes
    ----------
    jobs:
        Worker processes; ``1`` executes serially in-process.
    timeout:
        Per-attempt wall-clock budget in seconds (None = unlimited).
    retries:
        Extra attempts after the first failure (timeouts never retry —
        a job that blew its budget once will blow it again).
    backoff:
        Base of the exponential backoff slept before attempt ``k``:
        ``backoff * 2**(k-2)`` seconds.
    """

    jobs: int = 1
    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05

    def __post_init__(self):
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be > 0 (or None)")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff < 0:
            raise ConfigError("backoff must be >= 0")


@dataclass
class JobOutcome:
    """What happened to one item of a batch."""

    index: int
    item: object
    result: object | None
    error: str | None
    attempts: int
    wall_seconds: float
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`JobTimeoutError` in this thread after ``seconds``.

    Signal-based, so it interrupts pure-Python *and* long native calls
    that release the GIL between bytecodes; only armed when running in a
    main thread on a platform with ``SIGALRM`` (ProcessPoolExecutor
    workers always qualify).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(f"job exceeded {seconds:.6g}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _invoke(fn, item, timeout):
    """Worker-side wrapper applying the per-attempt deadline."""
    faultinject.inject("worker-crash")
    with _deadline(timeout):
        return fn(item)


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


class BatchExecutor:
    """Run a batch of ``fn(item)`` calls per :class:`ExecutorConfig`.

    ``on_event(event, info)`` (optional) receives ``"queued"``,
    ``"started"`` (once per attempt) and ``"finished"`` telemetry.
    """

    def __init__(self, config: ExecutorConfig | None = None, on_event=None):
        self.config = config or ExecutorConfig()
        self.on_event = on_event
        #: Times a broken process pool was rebuilt (reset per batch).
        self.pool_rebuilds = 0

    def _emit(self, event: str, **info) -> None:
        if self.on_event is not None:
            self.on_event(event, info)

    def run(self, fn, items) -> list[JobOutcome]:
        """Execute every item; outcomes are positionally aligned to items."""
        items = list(items)
        for i in range(len(items)):
            self._emit("queued", index=i, item=items[i])
        if self.config.jobs == 1 or len(items) <= 1:
            return [self._run_serial(fn, i, item)
                    for i, item in enumerate(items)]
        return self._run_pool(fn, items)

    # -- serial fallback -----------------------------------------------------------
    def _run_serial(self, fn, index: int, item) -> JobOutcome:
        start = time.perf_counter()
        attempt = 0
        while True:
            attempt += 1
            self._emit("started", index=index, item=item, attempt=attempt)
            try:
                result = _invoke(fn, item, self.config.timeout)
            except JobTimeoutError as exc:
                get_registry().counter("executor.timeouts").inc()
                outcome = JobOutcome(index, item, None, _describe(exc),
                                     attempt, time.perf_counter() - start,
                                     timed_out=True)
                break
            except Exception as exc:
                if attempt <= self.config.retries:
                    get_registry().counter("executor.retries").inc()
                    log.warning("job %d attempt %d failed (%s); retrying",
                                index, attempt, _describe(exc))
                    time.sleep(self.config.backoff * 2 ** (attempt - 1))
                    continue
                outcome = JobOutcome(index, item, None, _describe(exc),
                                     attempt, time.perf_counter() - start)
                break
            else:
                outcome = JobOutcome(index, item, result, None, attempt,
                                     time.perf_counter() - start)
                break
        self._emit("finished", index=index, item=item, attempts=outcome.attempts,
                   wall_seconds=outcome.wall_seconds, error=outcome.error,
                   timed_out=outcome.timed_out)
        return outcome

    # -- pooled path ---------------------------------------------------------------
    def _run_pool(self, fn, items: list) -> list[JobOutcome]:
        outcomes: list[JobOutcome | None] = [None] * len(items)
        starts = [0.0] * len(items)
        workers = min(self.config.jobs, len(items))
        self.pool_rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        pending: dict = {}                       # future -> (index, attempt)
        retries: list[tuple[float, int, int]] = []  # (due, index, attempt)

        def submit(index: int, attempt: int) -> None:
            if attempt == 1:
                starts[index] = time.perf_counter()
            self._emit("started", index=index, item=items[index],
                       attempt=attempt)
            future = pool.submit(_invoke, fn, items[index],
                                 self.config.timeout)
            pending[future] = (index, attempt)

        def finish(index: int, attempt: int, result, error,
                   timed_out: bool = False) -> None:
            outcomes[index] = JobOutcome(
                index, items[index], result, error, attempt,
                time.perf_counter() - starts[index], timed_out=timed_out,
            )
            self._emit("finished", index=index, item=items[index],
                       attempts=attempt,
                       wall_seconds=outcomes[index].wall_seconds,
                       error=error, timed_out=timed_out)

        def reschedule(index: int, attempt: int, exc: BaseException) -> None:
            """Park a retry on the due-time queue, or fail the job."""
            if attempt <= self.config.retries:
                get_registry().counter("executor.retries").inc()
                delay = self.config.backoff * 2 ** (attempt - 1)
                log.warning("job %d attempt %d failed (%s); retry in %.3fs",
                            index, attempt, _describe(exc), delay)
                retries.append((time.perf_counter() + delay, index,
                                attempt + 1))
            else:
                finish(index, attempt, None, _describe(exc))

        try:
            for i in range(len(items)):
                submit(i, 1)
            while pending or retries:
                now = time.perf_counter()
                due = [r for r in retries if r[0] <= now]
                retries = [r for r in retries if r[0] > now]
                for _, index, attempt in due:
                    submit(index, attempt)
                if not pending:
                    # Only future-dated retries left; sleep until the
                    # earliest one (nothing else can make progress).
                    time.sleep(max(0.0, min(r[0] for r in retries)
                                   - time.perf_counter()))
                    continue
                # Harvest completions, but wake for the next retry due-time
                # instead of blocking on the slowest in-flight job.
                wake = (max(0.0, min(r[0] for r in retries) - now)
                        if retries else None)
                done, _ = wait(set(pending), timeout=wake,
                               return_when=FIRST_COMPLETED)
                broken: BrokenProcessPool | None = None
                for future in done:
                    entry = pending.pop(future, None)
                    if entry is None:
                        continue
                    index, attempt = entry
                    try:
                        result = future.result()
                    except JobTimeoutError as exc:
                        get_registry().counter("executor.timeouts").inc()
                        finish(index, attempt, None, _describe(exc),
                               timed_out=True)
                    except BrokenProcessPool as exc:
                        # A worker died hard; every in-flight future is
                        # lost with it. Handle the whole pool below.
                        broken = exc
                        reschedule(index, attempt, exc)
                    except Exception as exc:
                        reschedule(index, attempt, exc)
                    else:
                        finish(index, attempt, result, None)
                if broken is not None:
                    for index, attempt in pending.values():
                        reschedule(index, attempt, broken)
                    pending.clear()
                    pool.shutdown(wait=False)
                    if self.pool_rebuilds or not retries:
                        # Second crash (or nothing left to rerun): give up
                        # on the pool and fail any queued retries.
                        for _, index, attempt in retries:
                            finish(index, attempt - 1, None,
                                   _describe(broken))
                        retries = []
                    else:
                        self.pool_rebuilds += 1
                        get_registry().counter("executor.pool_rebuilds").inc()
                        log.warning("process pool broke (%s); rebuilding",
                                    _describe(broken))
                        pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes  # type: ignore[return-value]
