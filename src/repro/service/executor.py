"""Supervised batch execution of jobs over a process pool.

The executor is deliberately generic: it runs ``fn(item)`` for a list of
picklable items with

- a configurable worker count (``jobs=1`` falls back to in-process
  serial execution — no pool, no pickling, easy debugging);
- a per-job wall-clock timeout, enforced *inside* the worker via
  ``SIGALRM`` so a hung job is cancelled without poisoning the pool
  (on platforms without ``SIGALRM`` the timeout is best-effort off);
- bounded retry with **full-jitter** exponential backoff for transient
  failures (any exception except a timeout), seeded from the job's own
  identity so reruns are reproducible but parallel CI shards don't
  thunder-herd. Backoff never blocks the dispatch loop: retries are
  parked on a due-time queue while completed futures keep being
  harvested;
- **worker-death supervision**: a hard death (segfault, OOM-kill,
  ``os._exit``) breaks the whole pool and loses every in-flight future.
  The pool is rebuilt and the lost jobs are re-run *one at a time*
  (probe mode) so the next crash is attributable to exactly one job. A
  job that kills its worker ``poison_threshold`` times (default 2) is a
  **poison job**: it is failed with a ``poisoned`` outcome and announced
  via the ``"poisoned"`` event (the engine serializes its spec into the
  store's quarantine for postmortem) instead of being retried forever;
- a **circuit breaker** over pool breaks: ``circuit_threshold``
  consecutive infrastructure failures open it, refusing further
  rebuilds (remaining jobs fail fast with a circuit-open error) until
  ``circuit_cooldown`` seconds pass; then a single half-open rebuild
  probe is admitted, and its success closes the circuit. The breaker
  persists across batches on the executor instance;
- **graceful drain** on SIGTERM/SIGINT (and via
  :meth:`BatchExecutor.request_drain`): dispatch stops, queued futures
  are cancelled, in-flight jobs are harvested, and unfinished items are
  reported with ``drained`` outcomes so the engine can persist the
  pending queue for a warm resume.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import ConfigError, JobTimeoutError
from repro.observability.metrics import get_registry
from repro.resilience import faultinject
from repro.service.supervision import (
    CircuitBreaker,
    full_jitter_delay,
    jitter_token,
)
from repro.utils.logconf import get_logger

__all__ = ["ExecutorConfig", "JobOutcome", "BatchExecutor"]

log = get_logger("service.executor")


@dataclass(frozen=True)
class ExecutorConfig:
    """Batch-execution knobs.

    Attributes
    ----------
    jobs:
        Worker processes; ``1`` executes serially in-process.
    timeout:
        Per-attempt wall-clock budget in seconds (None = unlimited).
    retries:
        Extra attempts after the first failure (timeouts never retry —
        a job that blew its budget once will blow it again).
    backoff:
        Cap base of the backoff slept before retry ``k``: with jitter,
        ``uniform(0, backoff * 2**(k-1))`` seconds (seeded from the job
        key); without, exactly ``backoff * 2**(k-1)``.
    jitter:
        Apply full jitter to retry backoff (default). Disable for
        tests that assert exact sleep lengths.
    poison_threshold:
        Worker deaths attributable to one job before it is quarantined
        as a poison job instead of re-run.
    circuit_threshold:
        Consecutive pool breaks that open the circuit breaker.
    circuit_cooldown:
        Seconds the breaker stays open before admitting a half-open
        rebuild probe.
    drain_on_signals:
        Install SIGTERM/SIGINT handlers for the duration of a pooled
        ``run()`` that trigger a graceful drain (main thread only).
    """

    jobs: int = 1
    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05
    jitter: bool = True
    poison_threshold: int = 2
    circuit_threshold: int = 3
    circuit_cooldown: float = 30.0
    drain_on_signals: bool = True

    def __post_init__(self):
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be > 0 (or None)")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff < 0:
            raise ConfigError("backoff must be >= 0")
        if self.poison_threshold < 1:
            raise ConfigError("poison_threshold must be >= 1")
        if self.circuit_threshold < 1:
            raise ConfigError("circuit_threshold must be >= 1")
        if self.circuit_cooldown < 0:
            raise ConfigError("circuit_cooldown must be >= 0")


@dataclass
class JobOutcome:
    """What happened to one item of a batch."""

    index: int
    item: object
    result: object | None
    error: str | None
    attempts: int
    wall_seconds: float
    timed_out: bool = False
    poisoned: bool = False
    drained: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`JobTimeoutError` in this thread after ``seconds``.

    Signal-based, so it interrupts pure-Python *and* long native calls
    that release the GIL between bytecodes; only armed when running in a
    main thread on a platform with ``SIGALRM`` (ProcessPoolExecutor
    workers always qualify).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(f"job exceeded {seconds:.6g}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _invoke(fn, item, timeout):
    """Worker-side wrapper applying the per-attempt deadline."""
    faultinject.inject("worker-crash")
    with _deadline(timeout):
        return fn(item)


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


class BatchExecutor:
    """Run a batch of ``fn(item)`` calls per :class:`ExecutorConfig`.

    ``on_event(event, info)`` (optional) receives ``"queued"``,
    ``"started"`` (once per attempt), ``"finished"``, ``"pool_rebuild"``,
    ``"poisoned"``, ``"circuit_open"`` and ``"drained"`` telemetry.
    """

    def __init__(self, config: ExecutorConfig | None = None, on_event=None):
        self.config = config or ExecutorConfig()
        self.on_event = on_event
        #: Times a broken process pool was rebuilt (reset per batch).
        self.pool_rebuilds = 0
        #: Breaker over pool breaks; persists across batches.
        self.breaker = CircuitBreaker(
            threshold=self.config.circuit_threshold,
            cooldown=self.config.circuit_cooldown,
        )
        self._drain = threading.Event()

    # -- drain ---------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def request_drain(self, reason: str = "drain requested") -> None:
        """Stop dispatching; harvest in-flight work and return early.

        Sticky across batches: a draining executor (a process told to
        shut down) fails further dispatch fast until the process exits.
        """
        if not self._drain.is_set():
            log.warning("draining batch executor: %s", reason)
            get_registry().counter("executor.drains").inc()
            self._drain.set()
            self._emit("drain_requested", reason=reason)

    @contextmanager
    def _drain_signals(self):
        """SIGTERM/SIGINT trigger a graceful drain while a batch runs."""
        usable = (self.config.drain_on_signals
                  and threading.current_thread() is threading.main_thread())
        if not usable:
            yield
            return
        previous = {}

        def _handler(signum, frame):
            self.request_drain(f"received signal {signum}")

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _handler)
            except (ValueError, OSError):  # pragma: no cover - platform
                pass
        try:
            yield
        finally:
            for sig, prev in previous.items():
                signal.signal(sig, prev)

    def _emit(self, event: str, **info) -> None:
        if self.on_event is not None:
            self.on_event(event, info)

    def _backoff_delay(self, item, attempt: int) -> float:
        if not self.config.jitter:
            return self.config.backoff * 2 ** (attempt - 1)
        return full_jitter_delay(self.config.backoff, attempt,
                                 jitter_token(item))

    def run(self, fn, items) -> list[JobOutcome]:
        """Execute every item; outcomes are positionally aligned to items."""
        items = list(items)
        for i in range(len(items)):
            self._emit("queued", index=i, item=items[i])
        with self._drain_signals():
            if self.config.jobs == 1 or len(items) <= 1:
                return [self._run_serial(fn, i, item)
                        for i, item in enumerate(items)]
            return self._run_pool(fn, items)

    # -- serial fallback -----------------------------------------------------------
    def _run_serial(self, fn, index: int, item) -> JobOutcome:
        start = time.perf_counter()
        attempt = 0
        if self._drain.is_set():
            outcome = JobOutcome(index, item, None,
                                 "drained: batch shut down before this job "
                                 "started", 0, 0.0, drained=True)
            self._emit("finished", index=index, item=item, attempts=0,
                       wall_seconds=0.0, error=outcome.error,
                       timed_out=False, drained=True)
            return outcome
        while True:
            attempt += 1
            self._emit("started", index=index, item=item, attempt=attempt)
            try:
                result = _invoke(fn, item, self.config.timeout)
            except JobTimeoutError as exc:
                get_registry().counter("executor.timeouts").inc()
                outcome = JobOutcome(index, item, None, _describe(exc),
                                     attempt, time.perf_counter() - start,
                                     timed_out=True)
                break
            except Exception as exc:
                if attempt <= self.config.retries and not self._drain.is_set():
                    get_registry().counter("executor.retries").inc()
                    log.warning("job %d attempt %d failed (%s); retrying",
                                index, attempt, _describe(exc))
                    time.sleep(self._backoff_delay(item, attempt))
                    continue
                outcome = JobOutcome(index, item, None, _describe(exc),
                                     attempt, time.perf_counter() - start)
                break
            else:
                outcome = JobOutcome(index, item, result, None, attempt,
                                     time.perf_counter() - start)
                break
        self._emit("finished", index=index, item=item, attempts=outcome.attempts,
                   wall_seconds=outcome.wall_seconds, error=outcome.error,
                   timed_out=outcome.timed_out)
        return outcome

    # -- pooled path ---------------------------------------------------------------
    def _run_pool(self, fn, items: list) -> list[JobOutcome]:
        registry = get_registry()
        if self.breaker.state == CircuitBreaker.HALF_OPEN:
            # A previous batch's probe never resolved (its work all
            # finished through other paths); this batch is the probe.
            pass
        elif not self.breaker.allow():
            # Opened by a previous batch and still cooling down: refuse
            # to build a pool at all rather than feed a sick substrate.
            error = ("circuit breaker open after repeated worker crashes; "
                     "refusing to dispatch until the cooldown "
                     f"({self.config.circuit_cooldown:.3g}s) elapses")
            return [JobOutcome(i, item, None, error, 0, 0.0)
                    for i, item in enumerate(items)]
        outcomes: list[JobOutcome | None] = [None] * len(items)
        starts = [0.0] * len(items)
        workers = min(self.config.jobs, len(items))
        self.pool_rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        pending: dict = {}                       # future -> (index, attempt)
        retries: list[tuple[float, int, int]] = []  # (due, index, attempt)
        suspects: deque[tuple[int, int]] = deque()  # (index, attempt) probes
        deaths: dict[int, int] = {}              # index -> worker deaths

        def submit(index: int, attempt: int) -> None:
            if attempt == 1:
                starts[index] = time.perf_counter()
            self._emit("started", index=index, item=items[index],
                       attempt=attempt)
            future = pool.submit(_invoke, fn, items[index],
                                 self.config.timeout)
            pending[future] = (index, attempt)

        def finish(index: int, attempt: int, result, error,
                   timed_out: bool = False, poisoned: bool = False,
                   drained: bool = False) -> None:
            if outcomes[index] is not None:
                return
            outcomes[index] = JobOutcome(
                index, items[index], result, error, attempt,
                time.perf_counter() - starts[index], timed_out=timed_out,
                poisoned=poisoned, drained=drained,
            )
            self._emit("finished", index=index, item=items[index],
                       attempts=attempt,
                       wall_seconds=outcomes[index].wall_seconds,
                       error=error, timed_out=timed_out, poisoned=poisoned,
                       drained=drained)

        def reschedule(index: int, attempt: int, exc: BaseException) -> None:
            """Park a retry on the due-time queue, or fail the job."""
            if attempt <= self.config.retries:
                registry.counter("executor.retries").inc()
                delay = self._backoff_delay(items[index], attempt)
                log.warning("job %d attempt %d failed (%s); retry in %.3fs",
                            index, attempt, _describe(exc), delay)
                retries.append((time.perf_counter() + delay, index,
                                attempt + 1))
            else:
                finish(index, attempt, None, _describe(exc))

        def poison(index: int, attempt: int, exc: BaseException) -> None:
            registry.counter("executor.poison_jobs").inc()
            error = (f"poison job: worker died {deaths[index]} time(s) "
                     f"running it (last: {_describe(exc)}); quarantined")
            log.error("job %d is poison (%d worker deaths); quarantining",
                      index, deaths[index])
            self._emit("poisoned", index=index, item=items[index],
                       deaths=deaths[index], error=_describe(exc))
            finish(index, attempt, None, error, poisoned=True)

        def fail_unfinished(error: str) -> None:
            """Fail everything still queued (suspects + parked retries)."""
            while suspects:
                index, attempt = suspects.popleft()
                finish(index, max(attempt - 1, 1), None, error)
            for _, index, attempt in retries:
                finish(index, max(attempt - 1, 1), None, error)
            retries.clear()

        def drain_queued() -> None:
            """Cancel not-yet-started futures and abandon queued work."""
            for future, (index, attempt) in list(pending.items()):
                if future.cancel():
                    del pending[future]
                    finish(index, max(attempt - 1, 0), None,
                           "drained: cancelled before the job started",
                           drained=True)
            while suspects:
                index, attempt = suspects.popleft()
                finish(index, max(attempt - 1, 1), None,
                       "drained: crash probe abandoned during shutdown",
                       drained=True)
            for _, index, attempt in retries:
                finish(index, max(attempt - 1, 1), None,
                       "drained: retry abandoned during shutdown",
                       drained=True)
            retries.clear()

        def on_pool_break(exc: BrokenProcessPool) -> None:
            """A worker died hard, taking the pool and every in-flight
            future with it. Attribute deaths, enter probe mode, and
            rebuild — if the circuit breaker still lets us."""
            nonlocal pool
            registry.counter("executor.worker_deaths").inc()
            for index, attempt in pending.values():
                deaths[index] = deaths.get(index, 0) + 1
                if deaths[index] >= self.config.poison_threshold:
                    poison(index, attempt, exc)
                else:
                    suspects.append((index, attempt + 1))
            pending.clear()
            pool.shutdown(wait=False)
            if self.breaker.record_failure():
                registry.counter("executor.circuit_open").inc()
                log.error("circuit breaker OPEN after %d consecutive "
                          "pool failures", self.breaker.consecutive_failures)
                self._emit("circuit_open",
                           failures=self.breaker.consecutive_failures,
                           error=_describe(exc))
            if not (suspects or retries):
                return  # every job already has an outcome; nothing to run
            if not self.breaker.allow():
                fail_unfinished(
                    f"circuit breaker open after repeated worker crashes "
                    f"(last: {_describe(exc)}); cooling down "
                    f"{self.config.circuit_cooldown:.3g}s"
                )
                return
            self.pool_rebuilds += 1
            registry.counter("executor.pool_rebuilds").inc()
            log.warning("process pool broke (%s); rebuilding (%d)",
                        _describe(exc), self.pool_rebuilds)
            self._emit("pool_rebuild", rebuilds=self.pool_rebuilds,
                       error=_describe(exc))
            pool = ProcessPoolExecutor(max_workers=workers)

        try:
            for i in range(len(items)):
                submit(i, 1)
            while pending or retries or suspects:
                if self._drain.is_set():
                    drain_queued()
                    if not pending:
                        break
                now = time.perf_counter()
                due = [r for r in retries if r[0] <= now]
                retries = [r for r in retries if r[0] > now]
                if suspects:
                    # Probe mode: exactly one suspect in flight at a
                    # time, so the next pool break is attributable to
                    # one job. Due retries are parked until it ends.
                    if not pending and not self._drain.is_set():
                        index, attempt = suspects.popleft()
                        submit(index, attempt)
                    for _, index, attempt in due:
                        retries.append((now, index, attempt))
                elif not self._drain.is_set():
                    for _, index, attempt in due:
                        submit(index, attempt)
                if not pending:
                    if retries and not suspects:
                        # Only future-dated retries left; sleep until the
                        # earliest one (nothing else can make progress).
                        time.sleep(max(0.0, min(r[0] for r in retries)
                                       - time.perf_counter()))
                    continue
                # Harvest completions, but wake for the next retry
                # due-time instead of blocking on the slowest in-flight
                # job. In probe mode retries are parked, so just block
                # on the probe.
                wake = (max(0.0, min(r[0] for r in retries) - now)
                        if retries and not suspects else None)
                done, _ = wait(set(pending), timeout=wake,
                               return_when=FIRST_COMPLETED)
                broken: BrokenProcessPool | None = None
                for future in done:
                    entry = pending.get(future)
                    if entry is None:
                        continue
                    index, attempt = entry
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        # Leave it in pending: on_pool_break attributes
                        # the death for every lost in-flight future.
                        broken = exc
                        continue
                    except CancelledError:
                        del pending[future]
                        finish(index, max(attempt - 1, 0), None,
                               "drained: cancelled before the job started",
                               drained=True)
                        continue
                    except JobTimeoutError as exc:
                        # The worker survived (it raised, cleanly), so the
                        # substrate is healthy even though the job is not.
                        del pending[future]
                        deaths.pop(index, None)
                        self.breaker.record_success()
                        registry.counter("executor.timeouts").inc()
                        finish(index, attempt, None, _describe(exc),
                               timed_out=True)
                        continue
                    except Exception as exc:
                        del pending[future]
                        deaths.pop(index, None)
                        self.breaker.record_success()
                        reschedule(index, attempt, exc)
                        continue
                    del pending[future]
                    deaths.pop(index, None)
                    self.breaker.record_success()
                    finish(index, attempt, result, None)
                if broken is not None:
                    on_pool_break(broken)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        for i, item in enumerate(items):
            if outcomes[i] is None:  # pragma: no cover - defensive
                outcomes[i] = JobOutcome(i, item, None,
                                         "internal: job never completed",
                                         0, 0.0)
        return outcomes  # type: ignore[return-value]
