"""IPM-style aggregation of virtual-MPI traces."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.profile.vmpi import VirtualMPI

__all__ = ["IPMReport", "profile_commgraph"]


@dataclass
class IPMReport:
    """Aggregate communication statistics in the spirit of an IPM banner.

    Attributes
    ----------
    num_ranks:
        Communicator size.
    total_bytes:
        Total point-to-point traffic recorded.
    by_call:
        Bytes per MPI call name.
    per_rank_sent:
        Bytes sent per rank.
    point_to_point_fraction:
        Share of volume from point-to-point calls (vs expanded
        collectives) — the paper notes its benchmarks are dominated by
        point-to-point traffic.
    """

    num_ranks: int
    total_bytes: float
    by_call: dict[str, float] = field(default_factory=dict)
    per_rank_sent: np.ndarray = field(default_factory=lambda: np.empty(0))

    _P2P_CALLS = ("MPI_Send", "MPI_Isend", "MPI_Sendrecv", "MPI_Recv", "MPI_Irecv")

    @property
    def point_to_point_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        p2p = sum(v for k, v in self.by_call.items() if k in self._P2P_CALLS)
        return p2p / self.total_bytes

    @classmethod
    def from_vmpi(cls, vm: VirtualMPI) -> "IPMReport":
        sent = np.zeros(vm.num_ranks)
        for e in vm.events:
            sent[e.src] += e.nbytes
        return cls(
            num_ranks=vm.num_ranks,
            total_bytes=float(sent.sum()),
            by_call=vm.volume_by_call(),
            per_rank_sent=sent,
        )

    def banner(self) -> str:
        """Human-readable summary table."""
        lines = [
            "# IPM-style communication profile",
            f"# ranks: {self.num_ranks}   total: {self.total_bytes:.3e} bytes "
            f"(p2p {self.point_to_point_fraction:.0%})",
            f"{'call':<20} {'bytes':>14} {'share':>7}",
        ]
        for call, vol in sorted(self.by_call.items(), key=lambda kv: -kv[1]):
            share = vol / self.total_bytes if self.total_bytes else 0.0
            lines.append(f"{call:<20} {vol:14.4e} {share:6.1%}")
        return "\n".join(lines)


def profile_commgraph(vm: VirtualMPI) -> tuple[CommGraph, IPMReport]:
    """One-shot profiling: the mapper input plus the IPM summary."""
    return vm.comm_graph(), IPMReport.from_vmpi(vm)
