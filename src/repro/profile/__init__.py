"""Profiling substrate: a virtual-MPI trace recorder and IPM-style reports.

The paper obtains its communication graphs by profiling real runs with the
IPM tool. Offline, we emulate the pipeline: workload drivers issue
`send`/`sendrecv` calls against a :class:`VirtualMPI` communicator, and
:class:`IPMReport` aggregates the trace into the per-rank / per-call
summaries IPM would print, plus the communication matrix the mappers eat.
"""

from repro.profile.vmpi import VirtualMPI, CommEvent
from repro.profile.ipm import IPMReport, profile_commgraph

__all__ = ["VirtualMPI", "CommEvent", "IPMReport", "profile_commgraph"]
