"""A minimal virtual MPI communicator that records traffic.

Only the bookkeeping MPI semantics the profiler needs are implemented:
point-to-point calls record (src, dst, bytes, call) events; collectives
are expanded through :mod:`repro.workloads.collectives` with the chosen
implementation algorithm — exactly the extension Section VI of the paper
sketches for handling collectives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import WorkloadError
from repro.workloads.collectives import collective_pattern

__all__ = ["CommEvent", "VirtualMPI"]


@dataclass(frozen=True)
class CommEvent:
    """One recorded point-to-point transfer."""

    src: int
    dst: int
    nbytes: float
    call: str


class VirtualMPI:
    """Trace-recording stand-in for an MPI communicator.

    Parameters
    ----------
    num_ranks:
        Communicator size.
    """

    def __init__(self, num_ranks: int):
        if num_ranks < 1:
            raise WorkloadError("communicator needs >= 1 rank")
        self.num_ranks = int(num_ranks)
        self.events: list[CommEvent] = []
        self.compute_seconds = np.zeros(self.num_ranks)

    def _check_rank(self, rank: int) -> int:
        rank = int(rank)
        if not (0 <= rank < self.num_ranks):
            raise WorkloadError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )
        return rank

    # -- point-to-point ----------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: float,
             call: str = "MPI_Send") -> None:
        """Record a one-way transfer."""
        src, dst = self._check_rank(src), self._check_rank(dst)
        if nbytes < 0:
            raise WorkloadError(f"negative message size {nbytes}")
        self.events.append(CommEvent(src, dst, float(nbytes), call))

    def sendrecv(self, a: int, b: int, nbytes: float,
                 call: str = "MPI_Sendrecv") -> None:
        """Record a symmetric exchange (both directions)."""
        self.send(a, b, nbytes, call)
        self.send(b, a, nbytes, call)

    # -- collectives --------------------------------------------------------------
    def collective(self, name: str, nbytes: float, root: int = 0) -> None:
        """Record a collective over all ranks, expanded per algorithm.

        ``name`` follows :data:`repro.workloads.collectives.SUPPORTED_COLLECTIVES`.
        """
        graph = collective_pattern(name, self.num_ranks, volume=float(nbytes),
                                   root=self._check_rank(root))
        call = f"MPI_{name.split('-')[0].capitalize()}"
        for s, d, v in zip(graph.srcs, graph.dsts, graph.vols):
            self.events.append(CommEvent(int(s), int(d), float(v), call))

    # -- compute accounting ----------------------------------------------------------
    def compute(self, rank: int, seconds: float) -> None:
        """Attribute computation time to a rank (for comm-fraction reports)."""
        self.compute_seconds[self._check_rank(rank)] += float(seconds)

    # -- extraction ---------------------------------------------------------------------
    def comm_graph(self) -> CommGraph:
        """Aggregate all recorded events into a communication graph."""
        if not self.events:
            return CommGraph(self.num_ranks, [], [], [])
        srcs = np.array([e.src for e in self.events], dtype=np.int64)
        dsts = np.array([e.dst for e in self.events], dtype=np.int64)
        vols = np.array([e.nbytes for e in self.events])
        return CommGraph(self.num_ranks, srcs, dsts, vols)

    def volume_by_call(self) -> dict[str, float]:
        """Total bytes per MPI call name (the IPM per-call breakdown)."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.call] = out.get(e.call, 0.0) + e.nbytes
        return out
