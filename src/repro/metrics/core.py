"""Metric implementations over (mapping, communication graph, router)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.mapping.mapping import Mapping
from repro.routing.base import Router

__all__ = [
    "max_channel_load",
    "hop_bytes",
    "dilation",
    "average_channel_load",
    "load_histogram",
    "MappingReport",
    "evaluate_mapping",
]


def channel_loads(router: Router, mapping: Mapping, graph: CommGraph) -> np.ndarray:
    """Dense per-channel-slot load vector for ``graph`` under ``mapping``."""
    srcs, dsts, vols = mapping.network_flows(graph)
    return router.link_loads(srcs, dsts, vols)


def max_channel_load(router: Router, mapping: Mapping, graph: CommGraph) -> float:
    """Maximum channel load — the paper's optimization objective."""
    loads = channel_loads(router, mapping, graph)
    return float(loads.max()) if loads.size else 0.0


def average_channel_load(router: Router, mapping: Mapping, graph: CommGraph) -> float:
    """Mean load over *valid* channels (a lower bound on achievable MCL)."""
    loads = channel_loads(router, mapping, graph)
    valid = router.topology.channel_valid
    return float(loads[valid].mean()) if valid.any() else 0.0


def hop_bytes(mapping: Mapping, graph: CommGraph) -> float:
    """Sum of volume x minimal-hop-distance over network flows.

    Routing independent by construction; equals total channel load under
    any minimal routing.
    """
    srcs, dsts, vols = mapping.network_flows(graph)
    if len(srcs) == 0:
        return 0.0
    hops = mapping.topology.hop_distance(srcs, dsts)
    return float((hops * vols).sum())


def dilation(mapping: Mapping, graph: CommGraph) -> tuple[float, int]:
    """(volume-weighted mean hops, max hops) over network flows."""
    srcs, dsts, vols = mapping.network_flows(graph)
    if len(srcs) == 0:
        return 0.0, 0
    hops = mapping.topology.hop_distance(srcs, dsts)
    total = vols.sum()
    mean = float((hops * vols).sum() / total) if total else 0.0
    return mean, int(hops.max())


def load_histogram(
    router: Router, mapping: Mapping, graph: CommGraph, bins: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of valid-channel loads; returns (counts, bin_edges)."""
    loads = channel_loads(router, mapping, graph)
    valid = router.topology.channel_valid
    return np.histogram(loads[valid], bins=bins)


@dataclass(frozen=True)
class MappingReport:
    """A one-stop summary of mapping quality."""

    mcl: float
    hop_bytes: float
    avg_load: float
    mean_dilation: float
    max_dilation: int
    offnode_volume: float
    total_volume: float
    num_network_flows: int

    @property
    def offnode_fraction(self) -> float:
        return self.offnode_volume / self.total_volume if self.total_volume else 0.0

    @property
    def load_imbalance(self) -> float:
        """MCL / average load: 1.0 means a perfectly balanced network."""
        return self.mcl / self.avg_load if self.avg_load else 0.0

    def __str__(self) -> str:
        return (
            f"MCL={self.mcl:.4g} hop-bytes={self.hop_bytes:.4g} "
            f"avg-load={self.avg_load:.4g} imbalance={self.load_imbalance:.2f} "
            f"dilation(mean/max)={self.mean_dilation:.2f}/{self.max_dilation} "
            f"off-node={self.offnode_fraction:.0%}"
        )


def evaluate_mapping(
    router: Router, mapping: Mapping, graph: CommGraph
) -> MappingReport:
    """Compute all quality metrics for one mapping."""
    srcs, dsts, vols = mapping.network_flows(graph)
    loads = router.link_loads(srcs, dsts, vols)
    valid = router.topology.channel_valid
    if len(srcs):
        hops = mapping.topology.hop_distance(srcs, dsts)
        hb = float((hops * vols).sum())
        total = vols.sum()
        mean_dil = float((hops * vols).sum() / total) if total else 0.0
        max_dil = int(hops.max())
    else:
        hb, mean_dil, max_dil = 0.0, 0.0, 0
    return MappingReport(
        mcl=float(loads.max()) if loads.size else 0.0,
        hop_bytes=hb,
        avg_load=float(loads[valid].mean()) if valid.any() else 0.0,
        mean_dilation=mean_dil,
        max_dilation=max_dil,
        offnode_volume=float(vols.sum()),
        total_volume=graph.total_volume,
        num_network_flows=len(srcs),
    )
