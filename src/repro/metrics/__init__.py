"""Mapping quality metrics.

- :func:`max_channel_load` — the paper's objective (MCL): the heaviest
  channel's load under a routing model; lower is better throughput.
- :func:`hop_bytes` — the classic routing-unaware metric (volume times
  minimal hop distance) that Figure 1 shows is the *wrong* objective on an
  adaptively routed machine.
- :func:`evaluate_mapping` — a full :class:`MappingReport` in one call.
"""

from repro.metrics.core import (
    MappingReport,
    average_channel_load,
    dilation,
    evaluate_mapping,
    hop_bytes,
    load_histogram,
    max_channel_load,
)

__all__ = [
    "MappingReport",
    "max_channel_load",
    "hop_bytes",
    "dilation",
    "average_channel_load",
    "load_histogram",
    "evaluate_mapping",
]
