"""Flow-level network timing model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.routing.base import Router

__all__ = ["NetworkParams", "NetworkModel"]


@dataclass(frozen=True)
class NetworkParams:
    """Link and software constants (defaults approximate BG/Q).

    Attributes
    ----------
    link_bandwidth:
        Usable bytes/second per link direction (BG/Q: 2 GB/s raw,
        ~1.8 GB/s effective).
    hop_latency:
        Per-hop router traversal latency in seconds.
    phase_overhead:
        Fixed software (MPI stack) cost charged once per communication
        phase.
    phase_overlap:
        How much an iteration's phases overlap in time, in [0, 1].
        0 serializes phases completely (blocking exchanges); 1 drains the
        whole iteration's traffic concurrently (perfect nonblocking
        overlap). Real iterative codes post receives ahead and progress
        several exchanges at once on BG/Q's messaging hardware; the
        default 0.5 splits the difference and is ablated in
        ``benchmarks/bench_ablations.py``.
    """

    link_bandwidth: float = 1.8e9
    hop_latency: float = 40e-9
    phase_overhead: float = 2e-6
    phase_overlap: float = 0.5

    def __post_init__(self):
        if self.link_bandwidth <= 0:
            raise SimulationError("link_bandwidth must be > 0")
        if self.hop_latency < 0 or self.phase_overhead < 0:
            raise SimulationError("latencies must be >= 0")
        if not (0.0 <= self.phase_overlap <= 1.0):
            raise SimulationError("phase_overlap must be in [0, 1]")


class NetworkModel:
    """Estimates communication-phase durations on one topology + router.

    The bandwidth term assumes the phase completes when the most-loaded
    channel drains — the steady-state behaviour the MCL metric abstracts;
    the latency term covers the longest path's pipeline fill.
    """

    def __init__(self, router: Router, params: NetworkParams | None = None):
        self.router = router
        self.topology = router.topology
        self.params = params or NetworkParams()

    def phase_time(self, srcs, dsts, vols) -> float:
        """Duration of one communication phase (node-level flows)."""
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        offnode = srcs != dsts
        if not offnode.any():
            return 0.0
        srcs, dsts, vols = srcs[offnode], dsts[offnode], vols[offnode]
        loads = self.router.link_loads(srcs, dsts, vols)
        bw_time = float(loads.max()) / self.params.link_bandwidth
        max_hops = int(self.topology.hop_distance(srcs, dsts).max())
        return bw_time + max_hops * self.params.hop_latency + self.params.phase_overhead
