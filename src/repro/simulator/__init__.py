"""Flow-level execution simulator (the evaluation substrate).

The paper measures wall-clock on a real BG/Q; offline we estimate
per-iteration communication time with a flow-level network model driven by
the *same* link-load analysis RAHTM optimizes:

    phase time = max-channel-bytes / link-bandwidth
               + max-hops * hop-latency + per-phase software overhead

An :class:`ApplicationModel` is a list of per-iteration communication
phases plus a compute time; benchmark builders calibrate compute so the
communication fraction under the *default* mapping matches the paper's
Figure 9 measurements (CG ~70%, BT/SP ~35-40%) — making Figures 8/10
shape-comparable.
"""

from repro.simulator.network import NetworkModel, NetworkParams
from repro.simulator.fluid import FluidPhaseSimulator
from repro.simulator.des import AdaptivePacketSimulator
from repro.simulator.app import ApplicationModel, SimResult, calibrate_compute
from repro.simulator.apps import (
    bt_application,
    sp_application,
    cg_application,
    halo_application,
)

__all__ = [
    "NetworkModel",
    "NetworkParams",
    "FluidPhaseSimulator",
    "AdaptivePacketSimulator",
    "ApplicationModel",
    "SimResult",
    "calibrate_compute",
    "bt_application",
    "sp_application",
    "cg_application",
    "halo_application",
]
