"""Calibrated benchmark application models.

Builders return an :class:`ApplicationModel` whose per-iteration phases
carry the benchmark's serialized communication structure (BT/SP sweep
directions, CG reduction steps) and whose compute time is calibrated so
the communication fraction under a *reference mapping* matches the paper's
Figure 9 (CG > 70%, BT/SP ~35-40%).
"""

from __future__ import annotations

from repro.commgraph.graph import CommGraph
from repro.mapping.mapping import Mapping
from repro.simulator.app import ApplicationModel, calibrate_compute
from repro.simulator.network import NetworkModel
from repro.workloads.nas import (
    _resolve_class,
    cg_phase_edges,
    multipartition_face_bytes,
    multipartition_phase_pairs,
)
from repro.workloads.stencil import halo_nd

__all__ = [
    "bt_application",
    "sp_application",
    "cg_application",
    "halo_application",
    "PAPER_COMM_FRACTIONS",
]

# Figure 9 of the paper: communication share of execution time under the
# default ABCDET mapping.
PAPER_COMM_FRACTIONS = {"BT": 0.35, "SP": 0.40, "CG": 0.72}


def _multipartition_application(
    name: str, num_tasks: int, problem_class, words: int, sweeps: int,
) -> ApplicationModel:
    problem = _resolve_class(problem_class)
    q, face_bytes = multipartition_face_bytes(
        num_tasks, problem, words, sweeps
    )
    phases = tuple(
        CommGraph.from_edges(
            num_tasks, [(s, d, face_bytes) for s, d in pairs],
            grid_shape=(q, q),
        )
        for pairs in multipartition_phase_pairs(q)
    )
    return ApplicationModel(
        name=name, phases=phases, iterations=problem.iterations,
        compute_seconds_per_iter=0.0,
    )


def bt_application(num_tasks: int, problem_class="C") -> ApplicationModel:
    """NAS BT: six serialized face-exchange phases per time step."""
    return _multipartition_application("BT", num_tasks, problem_class, 25, 1)


def sp_application(num_tasks: int, problem_class="C") -> ApplicationModel:
    """NAS SP: the same sweeps with scalar payloads, two passes each."""
    return _multipartition_application("SP", num_tasks, problem_class, 5, 2)


def cg_application(num_tasks: int, problem_class="C") -> ApplicationModel:
    """NAS CG: transpose exchange + recursive-halving reduction steps."""
    problem = _resolve_class(problem_class)
    phase_edges, grid = cg_phase_edges(num_tasks, problem_class)
    phases = tuple(
        CommGraph.from_edges(num_tasks, edges, grid_shape=grid)
        for edges in phase_edges if edges
    )
    return ApplicationModel(
        name="CG", phases=phases, iterations=problem.iterations,
        compute_seconds_per_iter=0.0,
    )


def halo_application(
    grid_shape, volume: float = 1.0, iterations: int = 100, wrap: bool = True,
) -> ApplicationModel:
    """Generic stencil: one phase per (dimension, direction)."""
    import numpy as np

    full = halo_nd(grid_shape, volume=volume, wrap=wrap)
    # Split the aggregate halo into per-(dimension, direction) phases.
    gs = np.asarray(full.grid_shape, dtype=np.int64)
    n = len(gs)
    strides = np.ones(n, dtype=np.int64)
    for d in range(n - 2, -1, -1):
        strides[d] = strides[d + 1] * gs[d + 1]

    def coords(t):
        return (t[:, None] // strides[None, :]) % gs[None, :]

    diff = coords(full.dsts) - coords(full.srcs)
    # Reduce each dimension's offset to the wrapped representative.
    wrapped = diff.copy()
    for d in range(n):
        k = int(gs[d])
        wrapped[:, d] = np.where(diff[:, d] == k - 1, -1, wrapped[:, d])
        wrapped[:, d] = np.where(diff[:, d] == -(k - 1), 1, wrapped[:, d])
    phases = []
    for d in range(n):
        others_zero = np.ones(len(diff), dtype=bool)
        for dd in range(n):
            if dd != d:
                others_zero &= wrapped[:, dd] == 0
        for sign in (1, -1):
            mask = (wrapped[:, d] == sign) & others_zero
            if mask.any():
                phases.append(CommGraph(
                    full.num_tasks, full.srcs[mask], full.dsts[mask],
                    full.vols[mask], grid_shape=full.grid_shape,
                ))
    if not phases:
        phases = [full]
    return ApplicationModel(
        name="halo", phases=tuple(phases), iterations=iterations,
        compute_seconds_per_iter=0.0,
    )


def calibrated(
    app: ApplicationModel,
    reference_mapping: Mapping,
    network: NetworkModel,
    fraction: float | None = None,
) -> ApplicationModel:
    """Calibrate ``app``'s compute to the paper fraction (by name)."""
    if fraction is None:
        fraction = PAPER_COMM_FRACTIONS.get(app.name, 0.5)
    return calibrate_compute(app, reference_mapping, network, fraction)
