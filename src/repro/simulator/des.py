"""Packet-level discrete-event simulation with *real* adaptive routing.

The analytic models in this library (and in the paper) approximate
minimal adaptive routing by an oblivious uniform split over minimal
paths. This module closes the loop: a deterministic store-and-forward
discrete-event simulator in which every packet *adaptively* picks, at
each hop, the minimal-progress channel that frees up earliest — the
congestion-avoiding behaviour the BG/Q hardware implements.

Comparing its phase times against the analytic model's (see
``tests/test_des.py`` and ``benchmarks/bench_ablations.py``) quantifies
how faithful the paper's approximation is: on bandwidth-dominated phases
the two agree closely, which is the empirical justification for
optimizing the analytic MCL.

The simulator is O(packets x hops x log packets) — a spot-check tool for
small configurations, not a replacement for the flow-level models.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.errors import SimulationError
from repro.topology.cartesian import CartesianTopology

__all__ = ["AdaptivePacketSimulator"]

_MAX_PACKETS = 200_000


class AdaptivePacketSimulator:
    """Store-and-forward DES with least-busy minimal adaptive routing.

    Parameters
    ----------
    topology:
        Target torus/mesh.
    link_bandwidth:
        Bytes/second per channel.
    packet_bytes:
        Maximum packet payload; flows are segmented into packets (BG/Q
        chunks at 512 B, any small value works — smaller packets cost
        simulation time and improve path diversity).
    hop_latency:
        Per-hop forwarding latency in seconds.
    """

    def __init__(self, topology: CartesianTopology, link_bandwidth: float = 1.8e9,
                 packet_bytes: float = 512.0, hop_latency: float = 40e-9):
        if link_bandwidth <= 0 or packet_bytes <= 0 or hop_latency < 0:
            raise SimulationError("invalid simulator parameters")
        self.topology = topology
        self.link_bandwidth = float(link_bandwidth)
        self.packet_bytes = float(packet_bytes)
        self.hop_latency = float(hop_latency)

    # -- routing ---------------------------------------------------------------
    def _minimal_channels(self, node: int, dst: int) -> list[int]:
        """Channel slots making minimal progress from ``node`` to ``dst``."""
        topo = self.topology
        delta = topo.delta(node, dst)
        out = []
        for d in range(topo.ndim):
            off = int(delta[d])
            if off == 0:
                continue
            k = topo.shape[d]
            tie = topo.wrap[d] and k % 2 == 0 and abs(off) == k // 2
            dirs = (0, 1) if tie else ((0,) if off > 0 else (1,))
            for dr in dirs:
                slot = (node * topo.ndim + d) * 2 + dr
                if topo.channel_valid[slot]:
                    out.append(slot)
        return out

    # -- simulation -------------------------------------------------------------
    def phase_time(self, srcs, dsts, vols) -> float:
        """Seconds until the last packet of the phase is delivered."""
        topo = self.topology
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        offnode = (srcs != dsts) & (vols > 0)
        srcs, dsts, vols = srcs[offnode], dsts[offnode], vols[offnode]
        if len(srcs) == 0:
            return 0.0
        total_packets = int(np.ceil(vols / self.packet_bytes).sum())
        if total_packets > _MAX_PACKETS:
            raise SimulationError(
                f"{total_packets} packets exceed the DES budget "
                f"({_MAX_PACKETS}); raise packet_bytes or shrink the phase"
            )

        link_free = np.zeros(topo.num_channel_slots)
        # Event queue: (time, tiebreak, node, dst, bytes_remaining_payload)
        counter = itertools.count()
        events: list[tuple[float, int, int, int, float]] = []
        for s, d, v in zip(srcs, dsts, vols):
            remaining = float(v)
            while remaining > 1e-12:
                payload = min(self.packet_bytes, remaining)
                remaining -= payload
                heapq.heappush(
                    events, (0.0, next(counter), int(s), int(d), payload)
                )
        finish = 0.0
        while events:
            t, tb, node, dst, payload = heapq.heappop(events)
            if node == dst:
                finish = max(finish, t)
                continue
            choices = self._minimal_channels(node, dst)
            if not choices:
                raise SimulationError(
                    f"no minimal channel from {node} to {dst}"
                )
            # Adaptive choice: the channel that can start serving earliest.
            slot = min(choices, key=lambda c: (max(link_free[c], t), c))
            start = max(link_free[slot], t)
            service = payload / self.link_bandwidth
            link_free[slot] = start + service
            arrive = start + service + self.hop_latency
            nxt = int(topo.channel_dst[slot])
            heapq.heappush(events, (arrive, next(counter), nxt, dst, payload))
        return finish
