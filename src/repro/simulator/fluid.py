"""Fluid (max-min fair) phase simulation — the second opinion.

The default :class:`NetworkModel` times a phase by draining the
most-loaded channel (the MCL abstraction the paper optimizes). This module
implements a finer-grained *fluid* model: every flow keeps its routing
split (the stencil fractions) but flows share link bandwidth max-min
fairly, flows finish at different times, and freed capacity speeds up the
rest — a progressive-filling water-level computation inside an
event-driven outer loop.

Both models agree on single-bottleneck phases; they diverge when traffic
is heterogeneous, which makes the fluid model a useful ablation: if a
mapping wins under both, the win is not an artifact of the MCL
abstraction (see ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import SimulationError
from repro.observability.metrics import get_registry
from repro.observability.trace import span
from repro.routing.base import Router

__all__ = ["FluidPhaseSimulator", "max_min_fair_rates"]

_EPS = 1e-12


def max_min_fair_rates(usage: sp.csr_matrix, capacity: np.ndarray,
                       active: np.ndarray) -> np.ndarray:
    """Max-min fair rates for flows with fixed fractional routes.

    Parameters
    ----------
    usage:
        (links x flows) matrix; ``usage[l, i]`` is the fraction of flow
        ``i``'s rate that crosses link ``l``.
    capacity:
        Per-link capacity (bytes/second).
    active:
        Boolean mask of flows currently transmitting.

    Returns
    -------
    Per-flow rates (0 for inactive flows). Progressive filling: raise all
    unfrozen flows' rates together until a link saturates, freeze the
    flows crossing it, repeat.
    """
    n_links, n_flows = usage.shape
    rates = np.zeros(n_flows)
    unfrozen = active.copy()
    used = np.zeros(n_links)
    for _ in range(n_flows):
        if not unfrozen.any():
            break
        # Per-link total usage of unfrozen flows.
        mask_vec = unfrozen.astype(np.float64)
        demand = usage @ mask_vec
        room = capacity - used
        with np.errstate(divide="ignore", invalid="ignore"):
            fill = np.where(demand > _EPS, room / demand, np.inf)
        fill = np.maximum(fill, 0.0)
        lam = float(fill.min()) if np.isfinite(fill).any() else np.inf
        if not np.isfinite(lam):
            # Unfrozen flows touch no loaded link: they are unconstrained;
            # model caps them at the max single-link capacity.
            rates[unfrozen] += capacity.max()
            break
        rates[unfrozen] += lam
        used += demand * lam
        saturated = np.flatnonzero(room - demand * lam <= 1e-9 * capacity)
        if len(saturated) == 0:
            break
        # Freeze flows crossing any saturated link.
        frozen_flows = np.unique(usage[saturated].tocoo().col)
        newly = unfrozen[frozen_flows]
        unfrozen[frozen_flows] = False
        if not newly.any():
            break
    return rates


class FluidPhaseSimulator:
    """Event-driven fluid simulation of one communication phase."""

    def __init__(self, router: Router, link_bandwidth: float = 1.8e9,
                 max_events: int = 100_000):
        if link_bandwidth <= 0:
            raise SimulationError("link_bandwidth must be > 0")
        self.router = router
        self.link_bandwidth = float(link_bandwidth)
        self.max_events = int(max_events)

    def _usage_matrix(self, srcs, dsts) -> sp.csr_matrix:
        # The attribution engine builds the same (flows x slots) route
        # fractions the routers scatter-add from, vectorized per distinct
        # offset; unit volumes keep every off-node flow's column.
        from repro.observability.attribution import attribute_flows

        att = attribute_flows(
            self.router, srcs, dsts, np.ones(len(srcs))
        )
        return att.usage_matrix()

    def phase_time(self, srcs, dsts, vols) -> float:
        """Seconds until the last byte of the phase is delivered."""
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        offnode = (srcs != dsts) & (vols > 0)
        srcs, dsts, vols = srcs[offnode], dsts[offnode], vols[offnode]
        if len(srcs) == 0:
            return 0.0
        registry = get_registry()
        with span("fluid.phase_time", flows=len(srcs)) as phase_span:
            usage = self._usage_matrix(srcs, dsts)
            capacity = np.full(usage.shape[0], self.link_bandwidth)
            remaining = vols.copy()
            active = remaining > 0
            t = 0.0
            for step in range(self.max_events):
                if not active.any():
                    phase_span.set(events=step, seconds=t)
                    registry.counter("fluid.events").inc(step)
                    registry.counter("fluid.phases").inc()
                    return t
                rates = max_min_fair_rates(usage, capacity, active)
                transmitting = active & (rates > _EPS)
                if not transmitting.any():
                    raise SimulationError(
                        "fluid simulation stalled (zero rates)"
                    )
                with np.errstate(divide="ignore"):
                    finish = np.where(
                        transmitting,
                        remaining / np.maximum(rates, _EPS),
                        np.inf,
                    )
                dt = float(finish.min())
                t += dt
                remaining = np.maximum(remaining - rates * dt, 0.0)
                active = remaining > 1e-9 * vols
            raise SimulationError(
                f"fluid simulation exceeded {self.max_events} events"
            )
