"""Iterative application execution model."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.commgraph.graph import CommGraph
from repro.errors import SimulationError
from repro.mapping.mapping import Mapping
from repro.simulator.network import NetworkModel

__all__ = ["SimResult", "ApplicationModel", "calibrate_compute"]


@dataclass(frozen=True)
class SimResult:
    """Simulated execution breakdown."""

    total_seconds: float
    comm_seconds: float
    compute_seconds: float

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.total_seconds if self.total_seconds else 0.0


@dataclass(frozen=True)
class ApplicationModel:
    """An iterative application: compute + communication phases per iteration.

    Attributes
    ----------
    name:
        Label for reports.
    phases:
        Per-iteration communication phases, each a task-level
        :class:`CommGraph` (phases serialize: BT's six sweep directions,
        CG's reduction steps, ...).
    iterations:
        Outer iteration count.
    compute_seconds_per_iter:
        Computation time per iteration (identical across mappings — the
        mapper can only move communication time).
    """

    name: str
    phases: tuple[CommGraph, ...]
    iterations: int
    compute_seconds_per_iter: float

    def __post_init__(self):
        if self.iterations < 1:
            raise SimulationError("iterations must be >= 1")
        if self.compute_seconds_per_iter < 0:
            raise SimulationError("compute time must be >= 0")
        if not self.phases:
            raise SimulationError("application needs at least one phase")

    @property
    def num_tasks(self) -> int:
        return self.phases[0].num_tasks

    def comm_graph(self) -> CommGraph:
        """All phases aggregated — the mapper's input."""
        total = self.phases[0]
        for p in self.phases[1:]:
            total = total + p
        return total

    def iteration_comm_time(self, mapping: Mapping, network: NetworkModel) -> float:
        """Communication seconds of one iteration under ``mapping``.

        Interpolates between fully serialized phases (sum of per-phase
        times) and fully overlapped execution (the whole iteration's
        traffic draining concurrently) by the network's ``phase_overlap``
        parameter.
        """
        serial = 0.0
        for phase in self.phases:
            srcs, dsts, vols = mapping.network_flows(phase)
            serial += network.phase_time(srcs, dsts, vols)
        alpha = network.params.phase_overlap
        if alpha == 0.0 or len(self.phases) == 1:
            return serial
        srcs, dsts, vols = mapping.network_flows(self.comm_graph())
        overlapped = network.phase_time(srcs, dsts, vols)
        return (1.0 - alpha) * serial + alpha * overlapped

    def simulate(self, mapping: Mapping, network: NetworkModel) -> SimResult:
        """Full-run execution estimate (no compute/comm overlap)."""
        comm = self.iterations * self.iteration_comm_time(mapping, network)
        compute = self.iterations * self.compute_seconds_per_iter
        return SimResult(
            total_seconds=comm + compute,
            comm_seconds=comm,
            compute_seconds=compute,
        )


def calibrate_compute(
    app: ApplicationModel,
    mapping: Mapping,
    network: NetworkModel,
    target_comm_fraction: float,
) -> ApplicationModel:
    """Set per-iteration compute so ``mapping`` sees the target fraction.

    This anchors the simulator to the paper's measured communication
    fractions (Figure 9) under the *default* mapping; other mappings then
    shift the fraction exactly as a real run would.
    """
    if not (0 < target_comm_fraction < 1):
        raise SimulationError(
            f"target fraction must be in (0, 1), got {target_comm_fraction}"
        )
    comm = app.iteration_comm_time(mapping, network)
    if comm <= 0:
        raise SimulationError("cannot calibrate: zero communication time")
    compute = comm * (1.0 - target_comm_fraction) / target_comm_fraction
    return replace(app, compute_seconds_per_iter=compute)
