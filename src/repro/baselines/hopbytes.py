"""Annealed swap-search mapper with hop-bytes or MCL objective.

``objective="hopbytes"`` is the routing-unaware optimizer representative
of pre-RAHTM heuristic mappers: it pulls communicating tasks close
together, which Figure 1 shows actively *fights* adaptive routing by
collapsing path diversity.

``objective="mcl"`` runs the same search with the routing-aware objective
— a flat (non-hierarchical) ablation of RAHTM that shows the metric, not
the search, is what matters most at small scale, but stops scaling long
before the hierarchical decomposition does.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Mapper
from repro.commgraph.graph import CommGraph
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.utils.rng import as_rng

__all__ = ["HopBytesMapper"]


class HopBytesMapper(Mapper):
    """Simulated-annealing task-swap search.

    Parameters
    ----------
    topology:
        Target network.
    objective:
        ``"hopbytes"`` (routing-unaware) or ``"mcl"`` (routing-aware).
    iterations:
        Swap proposals; cost is O(degree) per proposal for hop-bytes and
        O(degree x stencil + channels) for MCL.
    restarts:
        Independent annealing runs; best final state wins.
    initial:
        ``"rank"`` starts from rank order (what a practitioner would
        hand-tune from; the first restart uses it, later restarts
        randomize) or ``"random"`` for fully random starts.
    seed:
        RNG seed.
    """

    def __init__(self, topology, objective: str = "hopbytes",
                 iterations: int = 5000, restarts: int = 1,
                 initial: str = "rank", seed=0):
        super().__init__(topology)
        if objective not in ("hopbytes", "mcl"):
            raise ConfigError(
                f"objective must be 'hopbytes' or 'mcl', got {objective!r}"
            )
        if initial not in ("rank", "random"):
            raise ConfigError(
                f"initial must be 'rank' or 'random', got {initial!r}"
            )
        self.objective = objective
        self.iterations = int(iterations)
        self.restarts = int(restarts)
        self.initial = initial
        self.seed = seed
        self.name = f"anneal-{objective}"

    # -- cost models -------------------------------------------------------------
    def _hopbytes(self, t2n, srcs, dsts, vols) -> float:
        ns, nd = t2n[srcs], t2n[dsts]
        mask = ns != nd
        if not mask.any():
            return 0.0
        hops = self.topology.hop_distance(ns[mask], nd[mask])
        return float((hops * vols[mask]).sum())

    def map(self, graph: CommGraph) -> Mapping:
        conc = self.concentration(graph)
        rng = as_rng(self.seed)
        mask = graph.srcs != graph.dsts
        srcs, dsts, vols = graph.srcs[mask], graph.dsts[mask], graph.vols[mask]
        T = graph.num_tasks
        # incident edge ids per task
        incident: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * T
        by_task: dict[int, list[int]] = {}
        for e, (s, d) in enumerate(zip(srcs, dsts)):
            by_task.setdefault(int(s), []).append(e)
            by_task.setdefault(int(d), []).append(e)
        for t, es in by_task.items():
            incident[t] = np.unique(np.asarray(es, dtype=np.int64))

        best_t2n, best_cost = None, np.inf
        for restart in range(self.restarts):
            from_rank = self.initial == "rank" and restart == 0
            t2n, cost = self._anneal(
                graph, conc, srcs, dsts, vols, incident,
                as_rng(int(rng.integers(2**62))), from_rank,
            )
            if cost < best_cost:
                best_t2n, best_cost = t2n, cost
        return Mapping(self.topology, best_t2n, tasks_per_node=conc)

    def _anneal(self, graph, conc, srcs, dsts, vols, incident, rng,
                from_rank: bool):
        T = graph.num_tasks
        # slot s holds task s (rank-order start) or a random task.
        slot_of_task = (
            np.arange(T, dtype=np.int64) if from_rank else rng.permutation(T)
        )
        t2n = slot_of_task // conc
        router = (
            MinimalAdaptiveRouter(self.topology)
            if self.objective == "mcl" else None
        )
        if self.objective == "mcl":
            loads = router.link_loads(t2n[srcs], t2n[dsts], vols)
            cost = float(loads.max()) if loads.size else 0.0
        else:
            loads = None
            cost = self._hopbytes(t2n, srcs, dsts, vols)

        if cost == 0.0 or self.iterations == 0:
            return t2n, cost
        t0 = 0.05 * cost
        alpha = (1e-3) ** (1.0 / max(self.iterations, 1))
        temp = t0
        best_t2n, best_cost = t2n.copy(), cost
        for _ in range(self.iterations):
            a, b = int(rng.integers(T)), int(rng.integers(T))
            if a == b or t2n[a] == t2n[b]:
                temp *= alpha
                continue
            edges = np.union1d(incident[a], incident[b])
            es, ed, ev = srcs[edges], dsts[edges], vols[edges]
            if self.objective == "mcl":
                ns, nd = t2n[es], t2n[ed]
                router.link_loads(ns, nd, -ev, out=loads)
                t2n[a], t2n[b] = t2n[b], t2n[a]
                router.link_loads(t2n[es], t2n[ed], ev, out=loads)
                new_cost = float(loads.max())
            else:
                old = self._edge_hopbytes(t2n, es, ed, ev)
                t2n[a], t2n[b] = t2n[b], t2n[a]
                new_cost = cost - old + self._edge_hopbytes(t2n, es, ed, ev)
            delta = new_cost - cost
            if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-30)):
                cost = new_cost
                if cost < best_cost - 1e-12:
                    best_cost, best_t2n = cost, t2n.copy()
            else:  # revert
                if self.objective == "mcl":
                    router.link_loads(t2n[es], t2n[ed], -ev, out=loads)
                    t2n[a], t2n[b] = t2n[b], t2n[a]
                    router.link_loads(t2n[es], t2n[ed], ev, out=loads)
                else:
                    t2n[a], t2n[b] = t2n[b], t2n[a]
            temp *= alpha
        return best_t2n, best_cost

    def _edge_hopbytes(self, t2n, es, ed, ev) -> float:
        ns, nd = t2n[es], t2n[ed]
        mask = ns != nd
        if not mask.any():
            return 0.0
        hops = self.topology.hop_distance(ns[mask], nd[mask])
        return float((hops * ev[mask]).sum())
