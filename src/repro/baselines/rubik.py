"""Rubik-style hierarchical tiling (RHT).

Rubik [18 in the paper] lets an expert divide the application's logical
grid into tiles and map each tile onto a sub-torus of the machine. The
paper's comparison point ("RHT") tiles the application with 4x4 tiles
mapped to 4x2x2 sub-tori. This mapper reproduces the scheme: tile the app
grid, tile the topology into boxes, send tile *i* to box *i* (both in C
order), tasks within a tile filling the box's slots in C order.

Unlike RAHTM this discovers nothing: the tiling is fixed a priori, which
is precisely why it helps locality-friendly workloads (BT/SP) and hurts
CG (Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Mapper
from repro.commgraph.graph import CommGraph
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping

__all__ = ["RubikTilingMapper"]


def _factorizations(total: int, limits: tuple[int, ...]):
    """All shapes with prod == total and shape[d] dividing limits[d]."""
    out: list[tuple[int, ...]] = []

    def recurse(d: int, rem: int, partial: list[int]):
        if d == len(limits):
            if rem == 1:
                out.append(tuple(partial))
            return
        for extent in range(1, min(rem, limits[d]) + 1):
            if rem % extent == 0 and limits[d] % extent == 0:
                partial.append(extent)
                recurse(d + 1, rem // extent, partial)
                partial.pop()

    recurse(0, total, [])
    return out


def _most_compact(shapes):
    """Shape minimizing max/min extent ratio (most cube-like)."""
    def key(s):
        nz = [x for x in s]
        return (max(nz) / min(nz), s)
    return min(shapes, key=key)


class RubikTilingMapper(Mapper):
    """Fixed hierarchical tiling of app grid onto topology boxes.

    Parameters
    ----------
    topology:
        Target network.
    tile_shape:
        Tile extent in the app grid (must divide it). ``None`` = auto.
    box_shape:
        Box extent in the topology (must divide it). ``None`` = auto.
    target_box_nodes:
        Auto mode targets boxes of about this many nodes (default 16,
        i.e. the paper's 4x2x2 sub-tori... times the E dimension).
    """

    name = "rubik-tiling"

    def __init__(self, topology, tile_shape=None, box_shape=None,
                 target_box_nodes: int = 16):
        super().__init__(topology)
        self.tile_shape = tile_shape
        self.box_shape = box_shape
        self.target_box_nodes = int(target_box_nodes)

    def _auto_shapes(self, graph: CommGraph, conc: int):
        grid = graph.grid_shape or (graph.num_tasks,)
        V = self.topology.num_nodes
        # Candidate box sizes near the target, dividing V.
        candidates = sorted(
            (b for b in range(1, V + 1) if V % b == 0),
            key=lambda b: (abs(b - self.target_box_nodes), b),
        )
        for b in candidates:
            tile_size = b * conc
            if graph.num_tasks % tile_size:
                continue
            tiles = _factorizations(tile_size, grid)
            boxes = _factorizations(b, self.topology.shape)
            if tiles and boxes:
                return _most_compact(tiles), _most_compact(boxes)
        raise ConfigError(
            f"no tile/box factorization found for grid {grid} on "
            f"{self.topology.shape} with concentration {conc}"
        )

    def map(self, graph: CommGraph) -> Mapping:
        conc = self.concentration(graph)
        grid = graph.grid_shape or (graph.num_tasks,)
        tile_shape = self.tile_shape
        box_shape = self.box_shape
        if tile_shape is None or box_shape is None:
            auto_tile, auto_box = self._auto_shapes(graph, conc)
            tile_shape = tuple(tile_shape or auto_tile)
            box_shape = tuple(box_shape or auto_box)
        tile_shape = tuple(int(t) for t in tile_shape)
        box_shape = tuple(int(b) for b in box_shape)
        if len(tile_shape) != len(grid):
            raise ConfigError(f"tile {tile_shape} rank mismatch with grid {grid}")
        if len(box_shape) != self.topology.ndim:
            raise ConfigError(
                f"box {box_shape} rank mismatch with topology "
                f"{self.topology.shape}"
            )
        if any(g % t for g, t in zip(grid, tile_shape)):
            raise ConfigError(f"tile {tile_shape} does not divide grid {grid}")
        if any(s % b for s, b in zip(self.topology.shape, box_shape)):
            raise ConfigError(
                f"box {box_shape} does not divide topology {self.topology.shape}"
            )
        tile_size = int(np.prod(tile_shape))
        box_nodes = int(np.prod(box_shape))
        if tile_size != box_nodes * conc:
            raise ConfigError(
                f"tile holds {tile_size} tasks but box offers "
                f"{box_nodes} nodes x {conc} tasks"
            )
        tile_grid = tuple(g // t for g, t in zip(grid, tile_shape))
        box_grid = tuple(
            s // b for s, b in zip(self.topology.shape, box_shape)
        )
        if int(np.prod(tile_grid)) != int(np.prod(box_grid)):
            raise ConfigError(
                f"{int(np.prod(tile_grid))} tiles vs "
                f"{int(np.prod(box_grid))} boxes"
            )

        # Task -> (tile id, within-tile index), both C order.
        num_tasks = graph.num_tasks
        gs = np.asarray(grid, dtype=np.int64)
        ts = np.asarray(tile_shape, dtype=np.int64)
        gstr = _strides(grid)
        ranks = np.arange(num_tasks, dtype=np.int64)
        coords = (ranks[:, None] // gstr[None, :]) % gs[None, :]
        tile_ids = (coords // ts) @ _strides(tile_grid)
        within = (coords % ts) @ _strides(tile_shape)

        # (box id, slot) -> node.
        bs = np.asarray(box_shape, dtype=np.int64)
        box_origin_coords = _all_coords(box_grid) * bs[None, :]
        # Slot s of a box: node offset s // conc (C order within the box).
        node_offset_coords = _all_coords(box_shape)
        node_coords = (
            box_origin_coords[tile_ids]
            + node_offset_coords[within // conc]
        )
        nodes = self.topology.index(node_coords)
        return Mapping(self.topology, nodes, tasks_per_node=conc)


def _strides(shape) -> np.ndarray:
    shape = tuple(int(s) for s in shape)
    n = len(shape)
    strides = np.ones(n, dtype=np.int64)
    for d in range(n - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return strides


def _all_coords(shape) -> np.ndarray:
    shape = tuple(int(s) for s in shape)
    total = int(np.prod(shape))
    strides = _strides(shape)
    ids = np.arange(total, dtype=np.int64)
    return (ids[:, None] // strides[None, :]) % np.asarray(shape, dtype=np.int64)
