"""Dimension-permutation (canonical) mappings.

BG/Q's default assigns ranks in ABCDET order — the space is traversed
dimension by dimension with the last letter varying fastest, T being the
on-node slot. Alternate permutations (TABCDE, ACEBDT, ...) are the cheap
human-guided option the paper compares against and finds *non-uniform*:
good for some benchmarks, bad for others (Figures 8/10).

This mapper generalizes the scheme to any Cartesian topology: an order is
a sequence of network dimension indices plus the letter ``"T"``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Mapper
from repro.commgraph.graph import CommGraph
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping

__all__ = ["DimOrderMapper", "parse_order"]

_LETTERS = "ABCDEFGHIJ"


def parse_order(order, ndim: int) -> tuple:
    """Normalize an order spec into a tuple of dim indices and ``"T"``.

    Accepts letter strings (``"ABCDET"``, BG/Q style: A=dim 0) or mixed
    sequences like ``(0, 1, "T", 2)``.
    """
    if isinstance(order, str):
        items: list = []
        for ch in order.upper():
            if ch == "T":
                items.append("T")
            else:
                idx = _LETTERS.find(ch)
                if idx < 0 or idx >= ndim:
                    raise ConfigError(
                        f"dimension letter {ch!r} invalid for {ndim}-D topology"
                    )
                items.append(idx)
    else:
        items = ["T" if x == "T" else int(x) for x in order]
    dims = [x for x in items if x != "T"]
    if sorted(dims) != list(range(ndim)) or items.count("T") != 1:
        raise ConfigError(
            f"order must name every dimension once plus 'T', got {order!r}"
        )
    return tuple(items)


class DimOrderMapper(Mapper):
    """Assign ranks by traversing dimensions in a fixed order.

    Parameters
    ----------
    topology:
        Target network.
    order:
        Dimension order; the *last* entry varies fastest (BG/Q
        convention, so ``"ABCDET"`` fills a node's T slots consecutively).
        Defaults to all dimensions in index order followed by ``"T"``.
    """

    def __init__(self, topology, order=None):
        super().__init__(topology)
        ndim = self.topology.ndim
        if order is None:
            order = tuple(range(ndim)) + ("T",)
        self.order = parse_order(order, ndim)
        self.name = "dimorder-" + "".join(
            "T" if x == "T" else _LETTERS[x] for x in self.order
        )

    def map(self, graph: CommGraph) -> Mapping:
        conc = self.concentration(graph)
        sizes = [
            conc if x == "T" else self.topology.shape[x] for x in self.order
        ]
        ranks = np.arange(graph.num_tasks, dtype=np.int64)
        rem = ranks.copy()
        coord_by_item: dict = {}
        for pos in range(len(self.order) - 1, -1, -1):
            coord_by_item[self.order[pos]] = rem % sizes[pos]
            rem //= sizes[pos]
        node_coords = np.stack(
            [coord_by_item[d] for d in range(self.topology.ndim)], axis=-1
        )
        nodes = self.topology.index(node_coords)
        return Mapping(self.topology, nodes, tasks_per_node=conc)
