"""Hilbert space-filling-curve mapping.

The paper's Hilbert baseline (Section IV): "Because Hilbert curves are
well-defined in square spaces, we apply Hilbert mapping to the four
dimensions that are all 4-nodes long (i.e., ABCD dimensions). For the
remaining two dimensions, we map nodes in dimension order (ET order)."

We implement the n-dimensional Hilbert curve with Skilling's transpose
algorithm (J. Skilling, "Programming the Hilbert curve", AIP 2004), pick
the largest group of equal power-of-two dimensions to curve through, and
traverse the remaining dimensions plus T in dimension order (varying
fastest, matching the paper's ET tail).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Mapper
from repro.commgraph.graph import CommGraph
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping

__all__ = ["hilbert_index_to_coords", "HilbertMapper"]


def hilbert_index_to_coords(index: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Coordinates of position ``index`` on the ``ndim``-D Hilbert curve
    through a ``2^bits``-side cube (Skilling's TransposeToAxes).

    Consecutive indices are grid neighbours (Hamiltonian path) — the
    locality property the baseline relies on.
    """
    if ndim < 1 or bits < 1:
        raise ConfigError(f"need ndim >= 1 and bits >= 1, got {ndim}, {bits}")
    total_bits = ndim * bits
    if not (0 <= index < (1 << total_bits)):
        raise ConfigError(f"index {index} out of range for {total_bits} bits")
    # Bit-transpose the index into per-axis registers.
    x = [0] * ndim
    for b in range(total_bits):
        bit = (index >> (total_bits - 1 - b)) & 1
        x[b % ndim] = (x[b % ndim] << 1) | bit
    # Gray decode.
    t = x[ndim - 1] >> 1
    for i in range(ndim - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != (1 << bits):
        p = q - 1
        for i in range(ndim - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)


def _is_pow2(v: int) -> bool:
    return v >= 2 and (v & (v - 1)) == 0


class HilbertMapper(Mapper):
    """Hilbert traversal over the square sub-space, dim order elsewhere.

    Parameters
    ----------
    topology:
        Target network.
    curve_dims:
        Dimensions to thread the Hilbert curve through; default picks the
        largest group of dimensions sharing a power-of-two arity (ABCD on
        the paper's BG/Q partition).
    """

    name = "hilbert"

    def __init__(self, topology, curve_dims=None):
        super().__init__(topology)
        shape = self.topology.shape
        if curve_dims is None:
            groups: dict[int, list[int]] = {}
            for d, k in enumerate(shape):
                if _is_pow2(k):
                    groups.setdefault(k, []).append(d)
            if not groups:
                raise ConfigError(
                    f"no power-of-two dimension to curve through in {shape}"
                )
            curve_dims = max(groups.values(), key=len)
        curve_dims = tuple(int(d) for d in curve_dims)
        if len(set(curve_dims)) != len(curve_dims) or not curve_dims or any(
            d < 0 or d >= self.topology.ndim for d in curve_dims
        ):
            raise ConfigError(f"invalid curve dimensions {curve_dims}")
        arities = {shape[d] for d in curve_dims}
        if len(arities) != 1 or not _is_pow2(arities := arities.pop()):
            raise ConfigError(
                f"curve dimensions {curve_dims} must share a power-of-two arity"
            )
        self.curve_dims = curve_dims
        self.bits = int(arities).bit_length() - 1
        self.rest_dims = tuple(
            d for d in range(self.topology.ndim) if d not in curve_dims
        )

    def map(self, graph: CommGraph) -> Mapping:
        conc = self.concentration(graph)
        shape = self.topology.shape
        nd = len(self.curve_dims)
        curve_len = (1 << self.bits) ** nd
        rest_sizes = [shape[d] for d in self.rest_dims] + [conc]
        rest_len = int(np.prod(rest_sizes))
        if curve_len * rest_len != graph.num_tasks:
            raise ConfigError("task count does not match topology slots")
        # Precompute the curve.
        curve = np.array(
            [hilbert_index_to_coords(h, nd, self.bits) for h in range(curve_len)],
            dtype=np.int64,
        )
        ranks = np.arange(graph.num_tasks, dtype=np.int64)
        h = ranks // rest_len
        rem = ranks % rest_len
        node_coords = np.zeros((graph.num_tasks, self.topology.ndim),
                               dtype=np.int64)
        node_coords[:, list(self.curve_dims)] = curve[h]
        # Remaining dims + T vary fastest, in dimension order.
        tail = rem.copy()
        for pos in range(len(rest_sizes) - 1, -1, -1):
            coord = tail % rest_sizes[pos]
            tail //= rest_sizes[pos]
            if pos < len(self.rest_dims):
                node_coords[:, self.rest_dims[pos]] = coord
        nodes = self.topology.index(node_coords)
        return Mapping(self.topology, nodes, tasks_per_node=conc)
