"""Recursive-bisection topology-aware mapper.

Representative of the generic topology-aware mappers the paper cites in
Section II-C ([16, 17]: structured/irregular graphs onto meshes): recurse
by simultaneously bisecting the *communication graph* (Kernighan-Lin, via
networkx) and the *topology* (split the longest dimension), pairing graph
halves with topology halves. Routing-unaware by construction — it
minimizes edge cut across the topology bisections, a hop-locality proxy —
which makes it the strongest classical baseline to put against RAHTM.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Mapper
from repro.commgraph.graph import CommGraph
from repro.core.clustering import cluster_fixed_size
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping
from repro.utils.rng import as_rng

__all__ = ["RecursiveBisectionMapper"]


class RecursiveBisectionMapper(Mapper):
    """Graph-bisection / topology-bisection co-recursion.

    Parameters
    ----------
    topology:
        Target torus/mesh. Every dimension extent must be a power of two
        (each split halves the longest remaining dimension).
    max_kl_iterations:
        Kernighan-Lin refinement sweeps per bisection.
    seed:
        Seeds KL's initial partition.
    """

    name = "recursive-bisection"

    def __init__(self, topology, max_kl_iterations: int = 10, seed=0):
        super().__init__(topology)
        for k in self.topology.shape:
            if k & (k - 1):
                raise ConfigError(
                    "recursive bisection needs power-of-two extents, got "
                    f"{self.topology.shape}"
                )
        self.max_kl_iterations = int(max_kl_iterations)
        self.seed = seed

    def map(self, graph: CommGraph) -> Mapping:
        import networkx as nx

        conc = self.concentration(graph)
        level = cluster_fixed_size(graph, conc)
        node_graph = level.graph
        topo = self.topology
        rng = as_rng(self.seed)

        assignment = np.empty(node_graph.num_tasks, dtype=np.int64)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(node_graph.num_tasks))
        sym = node_graph.symmetrized().without_self_loops()
        for s, d, v in zip(sym.srcs, sym.dsts, sym.vols):
            if s < d:
                nxg.add_edge(int(s), int(d), weight=float(v))

        # Work queue: (cluster ids, topology box origin, box shape).
        stack = [(
            np.arange(node_graph.num_tasks),
            np.zeros(topo.ndim, dtype=np.int64),
            np.asarray(topo.shape, dtype=np.int64),
        )]
        while stack:
            members, origin, box = stack.pop()
            if len(members) == 1:
                assignment[members[0]] = int(origin @ topo.strides)
                continue
            # Split the longest dimension of the box.
            dim = int(np.argmax(box))
            half = box.copy()
            half[dim] //= 2
            sub = nxg.subgraph(members.tolist())
            part_a, part_b = nx.community.kernighan_lin_bisection(
                sub, max_iter=self.max_kl_iterations,
                weight="weight", seed=int(rng.integers(2**31)),
            )
            a = np.array(sorted(part_a), dtype=np.int64)
            b = np.array(sorted(part_b), dtype=np.int64)
            if len(a) != len(b):  # KL guarantees balance for even sizes
                raise ConfigError("bisection produced unbalanced halves")
            origin_b = origin.copy()
            origin_b[dim] += half[dim]
            stack.append((a, origin.copy(), half.copy()))
            stack.append((b, origin_b, half.copy()))
        return Mapping(topo, assignment[level.labels], tasks_per_node=conc)
