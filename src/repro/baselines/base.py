"""Common mapper interface.

Every mapper binds a topology at construction and produces a
:class:`repro.mapping.Mapping` from a :class:`repro.commgraph.CommGraph`;
:class:`repro.core.rahtm.RAHTMMapper` satisfies the same protocol.
"""

from __future__ import annotations

import abc

from repro.commgraph.graph import CommGraph
from repro.errors import ConfigError
from repro.mapping.mapping import Mapping
from repro.topology.bgq import BGQTopology
from repro.topology.cartesian import CartesianTopology

__all__ = ["Mapper", "resolve_network"]


def resolve_network(topology) -> CartesianTopology:
    """Accept a :class:`CartesianTopology` or :class:`BGQTopology`."""
    if isinstance(topology, BGQTopology):
        return topology.network
    if isinstance(topology, CartesianTopology):
        return topology
    raise ConfigError(f"unsupported topology type {type(topology).__name__}")


class Mapper(abc.ABC):
    """A task-to-node mapping strategy bound to one topology."""

    name: str = "mapper"

    def __init__(self, topology):
        self.topology = resolve_network(topology)

    def concentration(self, graph: CommGraph) -> int:
        """Tasks per node implied by the graph size (must be integral)."""
        V = self.topology.num_nodes
        if graph.num_tasks % V:
            raise ConfigError(
                f"{graph.num_tasks} tasks do not divide over {V} nodes"
            )
        return graph.num_tasks // V

    @abc.abstractmethod
    def map(self, graph: CommGraph) -> Mapping:
        """Produce a mapping for the application graph."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.topology!r})"
