"""Baseline mappers the paper evaluates against (Section IV).

- :class:`DimOrderMapper` — BG/Q dimension-permutation mappings (the
  ABCDET default, TABCDE, ACEBDT, ...).
- :class:`HilbertMapper` — space-filling-curve mapping over the square
  sub-space, dimension order for the rest.
- :class:`RubikTilingMapper` — Rubik-style hierarchical tiling (RHT).
- :class:`HopBytesMapper` — annealed hop-bytes minimization: the
  routing-*unaware* optimizer of the Figure 1 argument (also runs with an
  MCL objective as a routing-aware ablation).
- :class:`RandomMapper` — seeded random placement.
"""

from repro.baselines.base import Mapper
from repro.baselines.bisection import RecursiveBisectionMapper
from repro.baselines.dimorder import DimOrderMapper
from repro.baselines.hilbert import HilbertMapper, hilbert_index_to_coords
from repro.baselines.rubik import RubikTilingMapper
from repro.baselines.hopbytes import HopBytesMapper
from repro.baselines.random_map import RandomMapper

__all__ = [
    "Mapper",
    "RecursiveBisectionMapper",
    "DimOrderMapper",
    "HilbertMapper",
    "hilbert_index_to_coords",
    "RubikTilingMapper",
    "HopBytesMapper",
    "RandomMapper",
]
