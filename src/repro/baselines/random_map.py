"""Seeded random mapping — the sanity floor every real mapper must beat."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Mapper
from repro.commgraph.graph import CommGraph
from repro.mapping.mapping import Mapping
from repro.utils.rng import as_rng

__all__ = ["RandomMapper"]


class RandomMapper(Mapper):
    """Uniformly random assignment of tasks to node slots."""

    name = "random"

    def __init__(self, topology, seed=None):
        super().__init__(topology)
        self.seed = seed

    def map(self, graph: CommGraph) -> Mapping:
        conc = self.concentration(graph)
        rng = as_rng(self.seed)
        slots = rng.permutation(graph.num_tasks)
        return Mapping(self.topology, slots // conc, tasks_per_node=conc)
