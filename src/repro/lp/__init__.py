"""A small LP/MILP modeling layer lowered onto SciPy's HiGHS solvers.

The paper solves its Table II formulation with CPLEX; this package provides
the modeling convenience (named variables, operator-overloaded linear
expressions, ``<=``/``>=``/``==`` constraints) that a commercial modeling
API would, and lowers the model to :func:`scipy.optimize.milp` (or
:func:`scipy.optimize.linprog` for continuous models).

Example
-------
>>> from repro.lp import Model
>>> m = Model("toy")
>>> x = m.add_var("x", lb=0, ub=10)
>>> y = m.add_var("y", lb=0, ub=10, integer=True)
>>> _ = m.add_constraint(x + 2 * y <= 14)
>>> _ = m.add_constraint(3 * x - y >= 0)
>>> m.set_objective(x + y, sense="max")
>>> sol = m.solve()
>>> sol.is_optimal
True
"""

from repro.lp.expr import Variable, LinExpr, Constraint, lpsum
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStatus

__all__ = [
    "Variable",
    "LinExpr",
    "Constraint",
    "lpsum",
    "Model",
    "Solution",
    "SolveStatus",
]
