"""Model container and lowering to SciPy HiGHS.

A :class:`Model` collects variables, linear constraints, and one linear
objective, then lowers everything to a single call of
:func:`scipy.optimize.milp` (mixed-integer) or
:func:`scipy.optimize.linprog` (continuous). Minimization is canonical;
``sense="max"`` negates the objective on the way in and the objective value
on the way out.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.optimize as spo
import scipy.sparse as sp

from repro.errors import InfeasibleError, SolverError
from repro.lp.expr import Constraint, LinExpr, Variable
from repro.lp.result import Solution, SolveStatus
from repro.utils.logconf import get_logger

__all__ = ["Model"]

log = get_logger("lp.model")

_INF = float("inf")


class Model:
    """An LP/MILP model.

    Parameters
    ----------
    name:
        Label used in log messages only.
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._vars: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense: str = "min"

    # -- construction ---------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = _INF,
        integer: bool = False,
        binary: bool = False,
    ) -> Variable:
        """Create a variable.

        ``binary=True`` is shorthand for an integer variable in [0, 1].
        """
        if binary:
            integer, lb, ub = True, 0.0, 1.0
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(len(self._vars), name or f"x{len(self._vars)}", lb, ub, integer)
        self._vars.append(var)
        return var

    def add_vars(self, count: int, prefix: str = "x", **kwargs) -> list[Variable]:
        """Create ``count`` homogeneous variables named ``prefix[i]``."""
        return [self.add_var(f"{prefix}[{i}]", **kwargs) for i in range(count)]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (use <=, >=, == on expressions); "
                f"got {type(constraint).__name__}"
            )
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def set_objective(self, expr, sense: str = "min") -> None:
        """Set the objective; ``expr`` may be a Variable or LinExpr."""
        if sense not in ("min", "max"):
            raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
        if isinstance(expr, Variable):
            expr = expr.to_expr()
        if not isinstance(expr, LinExpr):
            raise TypeError("objective must be a Variable or LinExpr")
        self._objective = expr.copy()
        self._sense = sense

    # -- introspection ---------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(v.integer for v in self._vars)

    @property
    def is_mip(self) -> bool:
        return self.num_integer_vars > 0

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"(int={self.num_integer_vars}), cons={self.num_constraints})"
        )

    # -- lowering ---------------------------------------------------------------
    def _build_matrices(self):
        """Lower constraints to (A, lb, ub) with A sparse CSR."""
        n = self.num_vars
        rows, cols, data = [], [], []
        con_lb = np.empty(len(self._constraints))
        con_ub = np.empty(len(self._constraints))
        for r, con in enumerate(self._constraints):
            for idx, coeff in con.expr.coeffs.items():
                rows.append(r)
                cols.append(idx)
                data.append(coeff)
            rhs = con.rhs
            if con.sense == "<=":
                con_lb[r], con_ub[r] = -_INF, rhs
            elif con.sense == ">=":
                con_lb[r], con_ub[r] = rhs, _INF
            else:
                con_lb[r], con_ub[r] = rhs, rhs
        A = sp.csr_matrix(
            (data, (rows, cols)), shape=(len(self._constraints), n)
        )
        return A, con_lb, con_ub

    def _objective_vector(self) -> np.ndarray:
        c = np.zeros(self.num_vars)
        for idx, coeff in self._objective.coeffs.items():
            c[idx] = coeff
        if self._sense == "max":
            c = -c
        return c

    # -- solving ----------------------------------------------------------------
    def solve(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float | None = None,
        raise_on_infeasible: bool = False,
    ) -> Solution:
        """Solve the model with HiGHS.

        Parameters
        ----------
        time_limit:
            Wall-clock budget in seconds. MILPs interrupted at the limit
            return the incumbent with status :attr:`SolveStatus.FEASIBLE`.
        mip_rel_gap:
            Relative optimality gap at which the MILP may stop early
            (reported status is still OPTIMAL per solver convention).
        raise_on_infeasible:
            If true, raise :class:`repro.errors.InfeasibleError` instead of
            returning an INFEASIBLE solution object.
        """
        start = time.perf_counter()
        c = self._objective_vector()
        A, con_lb, con_ub = self._build_matrices()
        var_lb = np.array([v.lb for v in self._vars])
        var_ub = np.array([v.ub for v in self._vars])

        if self.is_mip:
            sol = self._solve_milp(c, A, con_lb, con_ub, var_lb, var_ub,
                                   time_limit, mip_rel_gap)
        else:
            sol = self._solve_lp(c, A, con_lb, con_ub, var_lb, var_ub, time_limit)
        sol.solve_seconds = time.perf_counter() - start

        if sol.status is SolveStatus.INFEASIBLE and raise_on_infeasible:
            raise InfeasibleError(f"model {self.name!r} is infeasible")
        if sol.status is SolveStatus.ERROR:
            raise SolverError(f"model {self.name!r} solve failed: {sol.message}")
        log.debug(
            "%s: status=%s obj=%.6g in %.3fs",
            self.name, sol.status.value, sol.objective, sol.solve_seconds,
        )
        return sol

    def _finish(self, status: SolveStatus, x, message: str, gap: float) -> Solution:
        if x is None:
            return Solution(status=status, message=message, gap=gap)
        x = np.asarray(x, dtype=float)
        obj = float(
            sum(c * x[i] for i, c in self._objective.coeffs.items())
            + self._objective.constant
        )
        return Solution(status=status, objective=obj, x=x, message=message, gap=gap)

    def _solve_milp(self, c, A, con_lb, con_ub, var_lb, var_ub,
                    time_limit, mip_rel_gap) -> Solution:
        integrality = np.array([1 if v.integer else 0 for v in self._vars])
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = float(mip_rel_gap)
        constraints = (
            spo.LinearConstraint(A, con_lb, con_ub) if A.shape[0] else ()
        )
        res = spo.milp(
            c,
            constraints=constraints,
            integrality=integrality,
            bounds=spo.Bounds(var_lb, var_ub),
            options=options,
        )
        gap = float(getattr(res, "mip_gap", float("nan")) or float("nan"))
        if res.status == 0:
            return self._finish(SolveStatus.OPTIMAL, res.x, res.message, gap)
        if res.status == 2:
            return self._finish(SolveStatus.INFEASIBLE, None, res.message, gap)
        if res.status == 3:
            return self._finish(SolveStatus.UNBOUNDED, None, res.message, gap)
        if res.x is not None:  # stopped at a limit with an incumbent
            return self._finish(SolveStatus.FEASIBLE, res.x, res.message, gap)
        if res.status == 1:  # limit reached before any incumbent was found
            return self._finish(SolveStatus.LIMIT, None, res.message, gap)
        return self._finish(SolveStatus.ERROR, None, res.message, gap)

    def _solve_lp(self, c, A, con_lb, con_ub, var_lb, var_ub,
                  time_limit) -> Solution:
        # linprog wants A_ub x <= b_ub and A_eq x == b_eq; split ranged rows.
        eq_mask = con_lb == con_ub
        ub_mask = np.isfinite(con_ub) & ~eq_mask
        lb_mask = np.isfinite(con_lb) & ~eq_mask
        A_ub_parts, b_ub_parts = [], []
        if ub_mask.any():
            A_ub_parts.append(A[ub_mask])
            b_ub_parts.append(con_ub[ub_mask])
        if lb_mask.any():
            A_ub_parts.append(-A[lb_mask])
            b_ub_parts.append(-con_lb[lb_mask])
        A_ub = sp.vstack(A_ub_parts) if A_ub_parts else None
        b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
        A_eq = A[eq_mask] if eq_mask.any() else None
        b_eq = con_ub[eq_mask] if eq_mask.any() else None
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        res = spo.linprog(
            c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=np.column_stack([var_lb, var_ub]),
            method="highs",
            options=options,
        )
        if res.status == 0:
            return self._finish(SolveStatus.OPTIMAL, res.x, res.message, float("nan"))
        if res.status == 2:
            return self._finish(SolveStatus.INFEASIBLE, None, res.message, float("nan"))
        if res.status == 3:
            return self._finish(SolveStatus.UNBOUNDED, None, res.message, float("nan"))
        return self._finish(SolveStatus.ERROR, None, res.message, float("nan"))
