"""Linear expressions over model variables.

A :class:`LinExpr` is a sparse mapping ``{variable index: coefficient}``
plus a constant. :class:`Variable` is a thin handle that builds expressions
through operator overloading; comparison operators build
:class:`Constraint` objects that :meth:`repro.lp.Model.add_constraint`
accepts.

These classes are plain Python (not numpy) because models in this library
are built once and solved many times; readability at the call site matters
more than construction speed, and lowering to sparse matrices happens in
:mod:`repro.lp.model`.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["Variable", "LinExpr", "Constraint", "lpsum"]

_NUMERIC = (int, float)


class LinExpr:
    """A linear expression ``sum(coeff * var) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------------
    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant)

    def _iadd_term(self, index: int, coeff: float) -> None:
        new = self.coeffs.get(index, 0.0) + coeff
        if new == 0.0:
            self.coeffs.pop(index, None)
        else:
            self.coeffs[index] = new

    def _combine(self, other, sign: float) -> "LinExpr":
        out = self.copy()
        if isinstance(other, _NUMERIC):
            out.constant += sign * other
        elif isinstance(other, Variable):
            out._iadd_term(other.index, sign)
        elif isinstance(other, LinExpr):
            out.constant += sign * other.constant
            for idx, c in other.coeffs.items():
                out._iadd_term(idx, sign * c)
        else:
            return NotImplemented
        return out

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other):
        return self._combine(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._combine(other, -1.0)

    def __rsub__(self, other):
        return (-self) + other

    def __neg__(self) -> "LinExpr":
        return LinExpr({i: -c for i, c in self.coeffs.items()}, -self.constant)

    def __mul__(self, scalar):
        if not isinstance(scalar, _NUMERIC):
            return NotImplemented
        s = float(scalar)
        return LinExpr({i: c * s for i, c in self.coeffs.items()}, self.constant * s)

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        if not isinstance(scalar, _NUMERIC):
            return NotImplemented
        return self * (1.0 / float(scalar))

    # -- comparisons build constraints ----------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, "==")

    __hash__ = None  # type: ignore[assignment]  # mutable; == builds constraints

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        const = f" + {self.constant:g}" if self.constant else ""
        return f"LinExpr({terms or '0'}{const})"


class Variable:
    """Handle to a model variable. Created via :meth:`repro.lp.Model.add_var`."""

    __slots__ = ("index", "name", "lb", "ub", "integer")

    def __init__(self, index: int, name: str, lb: float, ub: float, integer: bool):
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self.integer = integer

    def to_expr(self) -> LinExpr:
        return LinExpr({self.index: 1.0})

    # Arithmetic delegates to LinExpr.
    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-1.0) * self.to_expr() + other

    def __neg__(self):
        return (-1.0) * self.to_expr()

    def __mul__(self, scalar):
        return self.to_expr() * scalar

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self.to_expr() / scalar

    def __le__(self, other) -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self.to_expr() == other

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name!r}, {kind}, [{self.lb:g}, {self.ub:g}])"


class Constraint:
    """A linear constraint ``expr <sense> 0`` with the rhs folded into expr.

    Stored in normalized form: ``expr.coeffs · x`` compared against
    ``-expr.constant``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = ""):
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"invalid constraint sense {sense!r}")
        if not isinstance(expr, LinExpr):
            raise TypeError("Constraint expects a LinExpr")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant across the relation."""
        return -self.expr.constant

    def __repr__(self) -> str:
        return f"Constraint({self.expr!r} {self.sense} 0)"


def lpsum(terms: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one :class:`LinExpr`.

    Quadratic behaviour of repeated ``+`` is avoided by accumulating in
    place, which matters for the MILP's O(|flows|·|edges|) conservation
    constraints.
    """
    out = LinExpr()
    for term in terms:
        if isinstance(term, _NUMERIC):
            out.constant += term
        elif isinstance(term, Variable):
            out._iadd_term(term.index, 1.0)
        elif isinstance(term, LinExpr):
            out.constant += term.constant
            for idx, c in term.coeffs.items():
                out._iadd_term(idx, c)
        else:
            raise TypeError(f"cannot sum term of type {type(term).__name__}")
    return out
