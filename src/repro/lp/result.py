"""Solve results for :class:`repro.lp.Model`."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.lp.expr import LinExpr, Variable

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(enum.Enum):
    """Normalized solver status across HiGHS LP and MILP backends."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped at a limit with an incumbent
    LIMIT = "limit"  # stopped at a limit before finding any incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class Solution:
    """A solved (or failed) model.

    Attributes
    ----------
    status:
        Normalized :class:`SolveStatus`.
    objective:
        Objective value at the returned point (``nan`` if no point).
    x:
        Variable values indexed by variable index (empty if no point).
    gap:
        MIP gap reported by the solver when available, else ``nan``.
    message:
        Raw solver message for diagnostics.
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    gap: float = float("nan")
    message: str = ""
    solve_seconds: float = 0.0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        """True when a feasible point is available (optimal or incumbent)."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, item) -> float:
        """Evaluate a :class:`Variable` or :class:`LinExpr` at the solution."""
        if not self.has_solution:
            raise ValueError(f"no solution available (status={self.status.value})")
        if isinstance(item, Variable):
            return float(self.x[item.index])
        if isinstance(item, LinExpr):
            return float(
                sum(c * self.x[i] for i, c in item.coeffs.items()) + item.constant
            )
        raise TypeError(f"cannot evaluate {type(item).__name__}")
