"""Figure 7 — the merge walk-through.

Runs phase 3 on the paper's running example (16 tasks pseudo-pinned onto a
4x4 torus) and reports the MCL before merging (phase-2 pinning as-is),
after merging with a tiny beam, and with the full beam — showing the
beam's contribution and that a wider beam never hurts.
"""

from __future__ import annotations

from repro.core.clustering import build_cluster_hierarchy
from repro.core.merge import MergeConfig, hierarchical_merge
from repro.core.pseudo_pin import pseudo_pin
from repro.experiments.report import Table
from repro.mapping.mapping import Mapping
from repro.metrics.core import evaluate_mapping
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.topology.cartesian import torus
from repro.topology.hierarchy import CubeHierarchy
from repro.workloads.synthetic import random_uniform

__all__ = ["run", "main"]


def run(seed: int = 7) -> Table:
    topo = torus(4, 4)
    cube_h = CubeHierarchy(topo)
    graph = random_uniform(16, 64, max_volume=50.0, seed=seed)
    hierarchy = build_cluster_hierarchy(graph, topo.num_nodes,
                                        2**cube_h.n, cube_h.num_levels)
    pin = pseudo_pin(hierarchy, cube_h, time_limit=20.0)
    router = MinimalAdaptiveRouter(topo)
    node_graph = hierarchy.node_graph

    table = Table("Figure 7: beam merge on the 4x4 walk-through")
    base = Mapping(topo, pin.cluster_to_node)
    table.set("phase2-only", "MCL", evaluate_mapping(router, base, node_graph).mcl)
    for label, beam in [("beam-1", 1), ("beam-8", 8), ("beam-64", 64)]:
        merged, stats = hierarchical_merge(
            topo, router, cube_h, node_graph, pin.cluster_to_node,
            MergeConfig(beam_width=beam, order_mode="identity", seed=seed),
        )
        mapping = Mapping(topo, merged)
        table.set(label, "MCL", evaluate_mapping(router, mapping, node_graph).mcl)
        table.set(label, "evaluations", stats["evaluations"])
    return table


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
