"""The paper's headline claims, as executable checks.

`EXPERIMENTS.md` argues shape-level agreement with the paper; this module
encodes each claim as a predicate over a :class:`ComparisonResult`, so a
reproduction run can assert them mechanically::

    result = run_comparison("small")
    for claim in check_claims(result):
        print(claim)

Claims follow Section V:

1. RAHTM improves *mean* execution time (paper: -9%).
2. RAHTM improves *mean* communication time substantially (paper: -20%).
3. RAHTM improves communication on **every** benchmark.
4. The alternate dimension permutations are **not uniformly helpful** —
   at least one benchmark regresses under each.
5. On average the dimension permutations are no better than the default.
6. CG is the benchmark most sensitive to bad permutations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import geomean
from repro.experiments.runner import ComparisonResult

__all__ = ["ClaimResult", "check_claims"]


@dataclass(frozen=True)
class ClaimResult:
    """One verified (or refuted) paper claim."""

    claim: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.claim} — {self.detail}"


def check_claims(result: ComparisonResult) -> list[ClaimResult]:
    """Evaluate every Section V shape claim against a comparison run."""
    exec_n = result.normalized(result.exec_seconds, "exec")
    comm_n = result.normalized(result.comm_seconds, "comm")
    benches = [r for r in exec_n.row_labels if r != "geomean"]
    cols = exec_n.col_labels
    default, perms = cols[0], cols[1:3]
    rahtm = "RAHTM"
    out = []

    g_exec = exec_n.get("geomean", rahtm)
    out.append(ClaimResult(
        "RAHTM improves mean execution time (paper -9%)",
        g_exec < 1.0,
        f"geomean {g_exec:.3f} (change {100 * (g_exec - 1):+.1f}%)",
    ))

    g_comm = comm_n.get("geomean", rahtm)
    out.append(ClaimResult(
        "RAHTM improves mean communication time substantially (paper -20%)",
        g_comm < 0.95,
        f"geomean {g_comm:.3f} (change {100 * (g_comm - 1):+.1f}%)",
    ))

    per_bench = {b: comm_n.get(b, rahtm) for b in benches}
    out.append(ClaimResult(
        "RAHTM improves communication on every benchmark",
        all(v <= 1.0 + 1e-9 for v in per_bench.values()),
        ", ".join(f"{b} {v:.3f}" for b, v in per_bench.items()),
    ))

    # A permutation that ties the default *everywhere* is degenerate at
    # this scale (e.g. the transpose of the default on a square 2-D torus
    # with a symmetric workload) and says nothing about uniformity.
    nonuniform = []
    for p in perms:
        vals = [exec_n.get(b, p) for b in benches]
        degenerate = all(abs(v - 1.0) < 1e-6 for v in vals)
        nonuniform.append(degenerate or max(vals) > 1.0)
    out.append(ClaimResult(
        "alternate dimension permutations are non-uniform "
        "(each effective permutation hurts some benchmark)",
        all(nonuniform),
        ", ".join(
            f"{p}: worst {max(exec_n.get(b, p) for b in benches):.3f}"
            for p in perms
        ),
    ))

    perm_means = [exec_n.get("geomean", p) for p in perms]
    out.append(ClaimResult(
        "dimension permutations no better than the default on average",
        geomean(perm_means) >= 1.0 - 1e-9,
        f"permutation geomeans {', '.join(f'{v:.3f}' for v in perm_means)}",
    ))

    worst_perm_by_bench = {
        b: max(comm_n.get(b, p) for p in perms) for b in benches
    }
    cg_worst = worst_perm_by_bench.get("CG", 0.0)
    out.append(ClaimResult(
        "CG is the benchmark most hurt by bad permutations",
        cg_worst >= max(worst_perm_by_bench.values()) - 1e-9,
        ", ".join(f"{b} {v:.3f}" for b, v in worst_perm_by_bench.items()),
    ))
    return out
