"""Table I — the benchmark suite, profiled through the virtual-MPI/IPM path.

Generates each benchmark's communication, replays it through the
:class:`VirtualMPI` recorder, and reports the IPM-style statistics that
justify calling them communication-heavy (plus the all-point-to-point
property the paper leans on).
"""

from __future__ import annotations

from repro.experiments.config import get_scale
from repro.experiments.report import Table
from repro.experiments.runner import benchmark_apps
from repro.profile.ipm import IPMReport
from repro.profile.vmpi import VirtualMPI

__all__ = ["run", "main", "DESCRIPTIONS"]

DESCRIPTIONS = {
    "BT": ("NAS", "Block Tri-diagonal solver"),
    "SP": ("NAS", "Scalar Penta-diagonal solver"),
    "CG": ("NAS", "Conjugate Gradient"),
}


def run(scale="small") -> Table:
    scale = get_scale(scale)
    table = Table(
        f"Table I: benchmarks at {scale.num_tasks} tasks "
        f"(class {scale.problem_class})"
    )
    for name, app in benchmark_apps(scale).items():
        vm = VirtualMPI(app.num_tasks)
        for phase in app.phases:
            for s, d, v in zip(phase.srcs, phase.dsts, phase.vols):
                vm.send(int(s), int(d), float(v))
        report = IPMReport.from_vmpi(vm)
        graph = app.comm_graph()
        table.set(name, "tasks", app.num_tasks)
        table.set(name, "edges", graph.num_edges)
        table.set(name, "GB/iter", report.total_bytes / 1e9)
        table.set(name, "p2p_share", report.point_to_point_fraction)
        table.set(name, "avg_degree", graph.num_edges / app.num_tasks)
    return table


def main() -> None:
    print(run().to_text())
    for name, (suite, desc) in DESCRIPTIONS.items():
        print(f"{name:<4} {suite:<5} {desc}")


if __name__ == "__main__":
    main()
