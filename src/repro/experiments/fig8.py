"""Figure 8 — overall execution time, normalized to the default mapping.

Rows: BT, SP, CG (+ geomean). Columns: the default dimension order, two
alternate permutations, Hilbert, RHT, RAHTM. Values < 1 are speedups; the
paper reports RAHTM at ~0.91 geomean (9% improvement) with the alternate
permutations non-uniform (CG badly hurt).
"""

from __future__ import annotations

from repro.experiments.runner import ComparisonResult, run_comparison

__all__ = ["run", "from_comparison", "main"]


def from_comparison(result: ComparisonResult):
    return result.normalized(
        result.exec_seconds,
        "Figure 8: execution time relative to the default mapping",
    )


def run(scale="small", **kwargs):
    return from_comparison(run_comparison(scale, **kwargs))


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
