"""Scaling study — mapping cost and quality vs problem size.

Section VI acknowledges mapping time "must be further reduced" and that
"further scaling beyond 16K processes is desirable". This experiment
quantifies the cost curve: RAHTM's offline time and achieved MCL
(relative to the default mapping) across the implemented scales.
"""

from __future__ import annotations

import time

from repro.baselines.dimorder import DimOrderMapper
from repro.core.rahtm import RAHTMMapper
from repro.experiments.config import SCALES, get_scale
from repro.experiments.report import Table
from repro.metrics.core import evaluate_mapping
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.workloads.nas import nas_cg

__all__ = ["run", "main"]


def run(scales=("tiny", "small")) -> Table:
    """RAHTM cost/quality on CG at each scale.

    CG is the paper's hardest case (35 hours of CPLEX at 16K tasks);
    passing ``scales=("tiny", "small", "medium")`` extends the curve.
    """
    table = Table("Scaling: RAHTM cost and MCL ratio vs problem size (CG)")
    for name in scales:
        scale = get_scale(name)
        topo = scale.topology()
        graph = nas_cg(scale.num_tasks, scale.problem_class)
        router = MinimalAdaptiveRouter(topo)
        default = DimOrderMapper(topo).map(graph)
        default_mcl = evaluate_mapping(router, default, graph).mcl
        mapper = RAHTMMapper(topo, scale.rahtm)
        t0 = time.perf_counter()
        mapping = mapper.map(graph)
        seconds = time.perf_counter() - t0
        mcl = evaluate_mapping(router, mapping, graph).mcl
        table.set(name, "tasks", scale.num_tasks)
        table.set(name, "nodes", scale.num_nodes)
        table.set(name, "mapping_s", seconds)
        table.set(name, "mcl_ratio", mcl / default_mcl if default_mcl else 1.0)
        table.set(name, "milp_s", mapper.timer.totals.get("phase2-milp", 0.0))
        table.set(name, "merge_s", mapper.timer.totals.get("phase3-merge", 0.0))
    return table


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
