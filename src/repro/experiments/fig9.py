"""Figure 9 — communication vs computation fraction per benchmark.

The simulator is calibrated so the default mapping reproduces the paper's
measured fractions (CG > 70%, BT/SP ~35-40%); this module reports them,
confirming the calibration and quantifying each benchmark's optimization
opportunity (Amdahl headroom).
"""

from __future__ import annotations

from repro.experiments.report import Table
from repro.experiments.runner import ComparisonResult, run_comparison

__all__ = ["run", "from_comparison", "main"]


def from_comparison(result: ComparisonResult) -> Table:
    table = Table("Figure 9: communication / computation split (default mapping)")
    for bench, frac in result.comm_fraction.items():
        table.set(bench, "communication", frac)
        table.set(bench, "computation", 1.0 - frac)
    return table


def run(scale="small", **kwargs) -> Table:
    return from_comparison(run_comparison(scale, **kwargs))


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
