"""Table II — the MILP formulation, exercised and cross-checked.

Solves the fission MILP on 2-ary n-cubes for n = 2, 3 over representative
cluster graphs, reporting model size, optimal MCL and solve time, and (for
n = 2) cross-checking against exhaustive placement enumeration.
"""

from __future__ import annotations

from repro.commgraph.graph import CommGraph
from repro.core.milp import brute_force_mapping, solve_cluster_milp
from repro.experiments.report import Table
from repro.topology.cartesian import hypercube
from repro.utils.rng import as_rng
from repro.workloads.stencil import halo_nd

__all__ = ["run", "main"]


def _random_cluster_graph(n_tasks: int, seed: int) -> CommGraph:
    rng = as_rng(seed)
    edges = []
    for s in range(n_tasks):
        for d in range(n_tasks):
            if s != d and rng.random() < 0.6:
                edges.append((s, d, float(rng.integers(1, 100))))
    return CommGraph.from_edges(n_tasks, edges)


def run(time_limit: float = 60.0, seed: int = 0) -> Table:
    table = Table("Table II MILP: size, optimum, and enumeration cross-check")
    cases = [
        ("halo-n2", hypercube(2), halo_nd((2, 2), 10.0, wrap=False)),
        ("rand-n2", hypercube(2), _random_cluster_graph(4, seed)),
        ("halo-n3", hypercube(3), halo_nd((2, 2, 2), 10.0, wrap=False)),
        ("rand-n3", hypercube(3), _random_cluster_graph(8, seed + 1)),
        ("torus-root-n2", hypercube(2, wrap=True), _random_cluster_graph(4, seed + 2)),
    ]
    for label, cube, graph in cases:
        res = solve_cluster_milp(cube, graph, time_limit=time_limit)
        table.set(label, "milp_mcl", res.mcl)
        table.set(label, "vars", res.num_vars)
        table.set(label, "constraints", res.num_constraints)
        table.set(label, "seconds", res.solve_seconds)
        if cube.num_nodes <= 4:
            bf = brute_force_mapping(cube, graph, evaluator="lp")
            table.set(label, "bruteforce_mcl", bf.mcl)
    return table


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
