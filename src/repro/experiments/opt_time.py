"""Section V-B — offline mapping (optimization) time.

The paper reports RAHTM's offline cost of 33 minutes (BT) to ~35 hours
(CG) on a single workstation, arguing it amortizes across runs. This
module times each RAHTM phase per benchmark at the chosen scale.
"""

from __future__ import annotations

from repro.core.rahtm import RAHTMMapper
from repro.experiments.config import get_scale
from repro.experiments.report import Table
from repro.experiments.runner import benchmark_apps

__all__ = ["run", "main"]


def run(scale="tiny") -> Table:
    scale = get_scale(scale)
    topo = scale.topology()
    table = Table(f"Section V-B: RAHTM offline mapping time at scale {scale.name!r}")
    for name, app in benchmark_apps(scale).items():
        mapper = RAHTMMapper(topo, scale.rahtm)
        mapper.map(app.comm_graph())
        for phase, seconds in mapper.timer.totals.items():
            table.set(name, phase, seconds)
        table.set(name, "total", mapper.timer.total)
    return table


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
