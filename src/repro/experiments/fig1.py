"""Figure 1 — why routing awareness matters.

A four-process graph with one heavy pair is mapped onto a 2x2 mesh two
ways: minimizing hop-bytes (heavy pair adjacent, one path) and minimizing
MCL under all-minimal-paths routing (heavy pair diagonal, two paths). The
MCL mapping halves the hottest link, exactly the paper's argument.
"""

from __future__ import annotations

from repro.commgraph.graph import CommGraph
from repro.core.milp import brute_force_mapping
from repro.experiments.report import Table
from repro.mapping.mapping import Mapping
from repro.metrics.core import evaluate_mapping
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.topology.cartesian import mesh

__all__ = ["figure1_graph", "run", "main"]


def figure1_graph(heavy: float = 100.0, light: float = 1.0) -> CommGraph:
    """The paper's 4-process example: one heavy pair in a light ring."""
    edges = []
    for a, b, v in [(0, 1, heavy), (0, 2, light), (1, 3, light), (2, 3, light)]:
        edges.append((a, b, float(v)))
        edges.append((b, a, float(v)))
    return CommGraph.from_edges(4, edges)


def run(heavy: float = 100.0, light: float = 1.0) -> Table:
    graph = figure1_graph(heavy, light)
    topo = mesh(2, 2)
    router = MinimalAdaptiveRouter(topo)

    # (b) hop-bytes-optimal placement: exhaustive search on hop-bytes.
    import itertools

    import numpy as np

    best_hb, hb_assign = float("inf"), None
    for perm in itertools.permutations(range(4)):
        mapping = Mapping(topo, np.asarray(perm, dtype=np.int64))
        rep = evaluate_mapping(router, mapping, graph)
        if rep.hop_bytes < best_hb - 1e-9:
            best_hb, hb_assign = rep.hop_bytes, mapping

    # (c) MCL-optimal placement under MAR: the Table II MILP's answer.
    res = brute_force_mapping(topo, graph, evaluator="uniform")
    mcl_mapping = Mapping(topo, res.assignment)

    table = Table("Figure 1: hop-bytes vs routing-aware (MCL) mapping on 2x2")
    for label, mapping in [("hop-bytes", hb_assign), ("MCL/MAR", mcl_mapping)]:
        rep = evaluate_mapping(router, mapping, graph)
        table.set(label, "MCL", rep.mcl)
        table.set(label, "hop_bytes", rep.hop_bytes)
    return table


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
