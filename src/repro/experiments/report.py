"""Plain-text result tables mirroring the paper's figures."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Table", "geomean"]


def geomean(values) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    values = [float(v) for v in values]
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Table:
    """A labelled 2-D table of floats with pretty printing."""

    title: str
    row_labels: list[str] = field(default_factory=list)
    col_labels: list[str] = field(default_factory=list)
    cells: dict[tuple[str, str], float] = field(default_factory=dict)

    def set(self, row: str, col: str, value: float) -> None:
        if row not in self.row_labels:
            self.row_labels.append(row)
        if col not in self.col_labels:
            self.col_labels.append(col)
        self.cells[(row, col)] = float(value)

    def get(self, row: str, col: str) -> float:
        return self.cells[(row, col)]

    def row(self, row: str) -> list[float]:
        return [self.cells[(row, c)] for c in self.col_labels]

    def col(self, col: str) -> list[float]:
        return [self.cells[(r, col)] for r in self.row_labels]

    def add_geomean_row(self, label: str = "geomean") -> None:
        for c in self.col_labels:
            vals = [
                self.cells[(r, c)]
                for r in self.row_labels
                if r != label and (r, c) in self.cells
            ]
            self.set(label, c, geomean(vals))

    def to_text(self, fmt: str = "{:>10.3f}") -> str:
        width = max((len(r) for r in self.row_labels), default=8) + 2
        colw = max(10, max((len(c) for c in self.col_labels), default=8) + 1)
        lines = [self.title]
        header = " " * width + "".join(f"{c:>{colw}}" for c in self.col_labels)
        lines.append(header)
        for r in self.row_labels:
            cells = []
            for c in self.col_labels:
                v = self.cells.get((r, c))
                cells.append(
                    " " * colw if v is None else f"{v:>{colw}.3f}"
                )
            lines.append(f"{r:<{width}}" + "".join(cells))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
