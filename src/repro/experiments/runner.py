"""Shared experiment runner: benchmarks x mappers -> timed comparison.

The mapper x benchmark grid is embarrassingly parallel and highly
cacheable, so the default path submits every cell as a
:class:`~repro.service.jobs.MappingJob` through a
:class:`~repro.service.engine.MappingEngine` (``jobs``/``cache_dir``/
``job_timeout`` control parallelism and the content-addressed warm
cache). Callers that pass live mapper/app objects (``mappers=``/
``apps=``) take the in-process serial path instead — those objects are
not expressible as job specs.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.baselines.dimorder import DimOrderMapper
from repro.baselines.hilbert import HilbertMapper
from repro.baselines.rubik import RubikTilingMapper
from repro.core.rahtm import RAHTMMapper
from repro.errors import ServiceError
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.report import Table
from repro.metrics.core import evaluate_mapping
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.simulator.app import ApplicationModel, calibrate_compute
from repro.simulator.apps import (
    PAPER_COMM_FRACTIONS,
    bt_application,
    cg_application,
    sp_application,
)
from repro.simulator.network import NetworkModel, NetworkParams
from repro.utils.logconf import get_logger

__all__ = ["MapperSpec", "ComparisonResult", "default_mappers",
           "default_mapper_configs", "benchmark_apps",
           "benchmark_workload_specs", "run_comparison"]

log = get_logger("experiments.runner")


@dataclass(frozen=True)
class MapperSpec:
    """A labelled mapper factory (topology -> mapper)."""

    label: str
    factory: Callable

    def build(self, topology):
        return self.factory(topology)


def default_mappers(scale: ExperimentScale) -> list[MapperSpec]:
    """The paper's Figure 8/10 line-up at this scale.

    Order: platform default first (everything is normalized to it), the
    two alternate dimension permutations, Hilbert, RHT, then RAHTM.
    """
    specs = [
        MapperSpec(order, lambda t, o=order: DimOrderMapper(t, o))
        for order in scale.dim_orders
    ]
    specs.append(MapperSpec("Hilbert", lambda t: HilbertMapper(t)))
    specs.append(MapperSpec("RHT", lambda t: RubikTilingMapper(t)))
    specs.append(
        MapperSpec("RAHTM", lambda t: RAHTMMapper(t, scale.rahtm))
    )
    return specs


def default_mapper_configs(scale: ExperimentScale):
    """The same Figure 8/10 line-up as declarative (label, config) pairs."""
    from repro.service.jobs import MapperConfig

    configs = [
        (order, MapperConfig.make("dimorder", order=order))
        for order in scale.dim_orders
    ]
    configs.append(("Hilbert", MapperConfig.make("hilbert")))
    configs.append(("RHT", MapperConfig.make("rubik")))
    configs.append(("RAHTM", MapperConfig.from_rahtm(scale.rahtm)))
    return configs


def benchmark_apps(scale: ExperimentScale) -> dict[str, ApplicationModel]:
    """The paper's three communication-heavy benchmarks (Table I)."""
    n = scale.num_tasks
    cls = scale.problem_class
    return {
        "BT": bt_application(n, cls),
        "SP": sp_application(n, cls),
        "CG": cg_application(n, cls),
    }


def benchmark_workload_specs(scale: ExperimentScale) -> dict[str, str]:
    """The Table I benchmarks as workload spec strings (job currency)."""
    n, cls = scale.num_tasks, scale.problem_class
    return {"BT": f"bt:{n}:{cls}", "SP": f"sp:{n}:{cls}", "CG": f"cg:{n}:{cls}"}


@dataclass
class ComparisonResult:
    """All raw numbers behind Figures 8, 9, 10 and the V-B discussion."""

    scale: ExperimentScale
    exec_seconds: Table
    comm_seconds: Table
    mcl: Table
    hop_bytes: Table
    mapping_seconds: Table
    comm_fraction: dict[str, float] = field(default_factory=dict)
    #: Compact per-cell netview summaries keyed by ``(benchmark, mapper)``,
    #: populated only on the engine path with ``netview=True``.
    netviews: dict[tuple[str, str], dict] = field(default_factory=dict)

    @property
    def default_label(self) -> str:
        return self.exec_seconds.col_labels[0]

    def normalized(self, table: Table, title: str) -> Table:
        """Each cell divided by the default mapper's cell (paper's Y axis)."""
        out = Table(title)
        base_col = table.col_labels[0]
        for r in table.row_labels:
            base = table.get(r, base_col)
            for c in table.col_labels:
                out.set(r, c, table.get(r, c) / base if base else float("nan"))
        out.add_geomean_row()
        return out


def _empty_result(scale: ExperimentScale) -> ComparisonResult:
    return ComparisonResult(
        scale=scale,
        exec_seconds=Table("execution time (s)"),
        comm_seconds=Table("communication time (s)"),
        mcl=Table("max channel load (bytes)"),
        hop_bytes=Table("hop-bytes"),
        mapping_seconds=Table("offline mapping time (s)"),
    )


def run_comparison(
    scale="small",
    mappers: list[MapperSpec] | None = None,
    apps: dict[str, ApplicationModel] | None = None,
    network_params: NetworkParams | None = None,
    *,
    mapper_configs=None,
    engine=None,
    jobs: int = 1,
    cache_dir=None,
    job_timeout: float | None = None,
    runtime=None,
    netview: bool = False,
) -> ComparisonResult:
    """Run every benchmark under every mapper and collect all metrics.

    The first mapper is the platform default: applications are calibrated
    so its communication fraction matches the paper's Figure 9 values.

    With the default declarative line-up (no ``mappers``/``apps``
    objects), each cell is submitted as a job through a mapping engine;
    ``jobs > 1`` computes cells in parallel and ``cache_dir`` makes
    reruns warm-cache no-ops. ``runtime`` (a
    :class:`~repro.service.jobs.JobRuntime`) adds per-cell deadlines and
    checkpoint/resume. ``netview=True`` additionally collects a compact
    per-cell network-introspection summary into
    :attr:`ComparisonResult.netviews` (cache keys are unaffected).
    Passing live ``mappers``/``apps`` objects keeps the legacy in-process
    serial path.
    """
    scale = get_scale(scale)
    if mappers is None and apps is None:
        if engine is None:
            from repro.service.engine import MappingEngine

            if netview:
                from dataclasses import replace

                from repro.service.jobs import JobRuntime

                runtime = (replace(runtime, netview=True) if runtime
                           is not None else JobRuntime(netview=True))
            engine = MappingEngine(cache_dir=cache_dir, jobs=jobs,
                                   job_timeout=job_timeout, runtime=runtime)
        return _run_comparison_engine(
            scale, network_params, engine,
            mapper_configs or default_mapper_configs(scale),
        )
    return _run_comparison_serial(scale, mappers, apps, network_params)


# -- engine path -----------------------------------------------------------------------
def _run_comparison_engine(
    scale: ExperimentScale, network_params, engine, mapper_configs,
) -> ComparisonResult:
    from repro.service.jobs import (
        MappingJob,
        NetworkSpec,
        TopologySpec,
        WorkloadSpec,
    )

    topo_spec = TopologySpec.from_topology(scale.topology())
    net_spec = NetworkSpec.from_params(network_params)
    app_specs = benchmark_workload_specs(scale)
    grid, job_list = [], []
    for bench_name, workload in app_specs.items():
        for label, config in mapper_configs:
            grid.append((bench_name, label))
            job_list.append(MappingJob(
                topology=topo_spec, workload=WorkloadSpec(workload),
                mapper=config, router="mar", network=net_spec,
            ))
    outcomes = engine.run(job_list)
    failures = [
        f"{bench}/{label}: {outcome.error}"
        for (bench, label), outcome in zip(grid, outcomes)
        if not outcome.ok
    ]
    if failures:
        raise ServiceError(
            "comparison cells failed: " + "; ".join(failures)
        )
    cells = {
        cell: outcome.result for cell, outcome in zip(grid, outcomes)
    }

    result = _empty_result(scale)
    labels = [label for label, _ in mapper_configs]
    default_label = labels[0]
    for bench_name in app_specs:
        default_cell = cells[(bench_name, default_label)]
        target = PAPER_COMM_FRACTIONS.get(bench_name, 0.5)
        # Same arithmetic as calibrate_compute + ApplicationModel.simulate,
        # factored over per-cell iteration communication times.
        compute_per_iter = (
            default_cell.iter_comm_seconds * (1.0 - target) / target
        )
        log.info("%s calibrated: comm fraction %.0f%% under %s",
                 bench_name, 100 * target, default_label)
        for label in labels:
            cell = cells[(bench_name, label)]
            comm = cell.iterations * cell.iter_comm_seconds
            compute = cell.iterations * compute_per_iter
            total = comm + compute
            result.exec_seconds.set(bench_name, label, total)
            result.comm_seconds.set(bench_name, label, comm)
            result.mcl.set(bench_name, label, cell.report.mcl)
            result.hop_bytes.set(bench_name, label, cell.report.hop_bytes)
            result.mapping_seconds.set(bench_name, label, cell.map_seconds)
            if cell.netview is not None:
                result.netviews[(bench_name, label)] = cell.netview
            if label == default_label:
                result.comm_fraction[bench_name] = (
                    comm / total if total else 0.0
                )
            log.info(
                "%s/%s: exec %.3fs comm %.3fs mcl %.3g "
                "(mapped in %.1fs%s)",
                bench_name, label, total, comm, cell.report.mcl,
                cell.map_seconds, ", cached" if cell.from_cache else "",
            )
    return result


# -- legacy in-process path ------------------------------------------------------------
def _run_comparison_serial(
    scale: ExperimentScale, mappers, apps, network_params,
) -> ComparisonResult:
    topo = scale.topology()
    router = MinimalAdaptiveRouter(topo)
    network = NetworkModel(router, network_params)
    mappers = mappers or default_mappers(scale)
    apps = apps or benchmark_apps(scale)
    # One mapper instance per (mapper, topology), reused across benchmarks
    # (every mapper resets its per-call state inside map()).
    built = [spec.build(topo) for spec in mappers]

    result = _empty_result(scale)
    for bench_name, app in apps.items():
        graph = app.comm_graph()
        t0 = time.perf_counter()
        default_mapping = built[0].map(graph)
        default_map_secs = time.perf_counter() - t0
        target = PAPER_COMM_FRACTIONS.get(app.name, 0.5)
        app = calibrate_compute(app, default_mapping, network, target)
        log.info("%s calibrated: comm fraction %.0f%% under %s",
                 bench_name, 100 * target, mappers[0].label)
        for i, spec in enumerate(mappers):
            if i == 0:
                mapping, map_secs = default_mapping, default_map_secs
            else:
                t0 = time.perf_counter()
                mapping = built[i].map(graph)
                map_secs = time.perf_counter() - t0
            sim = app.simulate(mapping, network)
            rep = evaluate_mapping(router, mapping, graph)
            result.exec_seconds.set(bench_name, spec.label, sim.total_seconds)
            result.comm_seconds.set(bench_name, spec.label, sim.comm_seconds)
            result.mcl.set(bench_name, spec.label, rep.mcl)
            result.hop_bytes.set(bench_name, spec.label, rep.hop_bytes)
            result.mapping_seconds.set(bench_name, spec.label, map_secs)
            if i == 0:
                result.comm_fraction[bench_name] = sim.comm_fraction
            log.info(
                "%s/%s: exec %.3fs comm %.3fs mcl %.3g (mapped in %.1fs)",
                bench_name, spec.label, sim.total_seconds, sim.comm_seconds,
                rep.mcl, map_secs,
            )
    return result
