"""Shared experiment runner: benchmarks x mappers -> timed comparison."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.baselines.dimorder import DimOrderMapper
from repro.baselines.hilbert import HilbertMapper
from repro.baselines.rubik import RubikTilingMapper
from repro.core.rahtm import RAHTMConfig, RAHTMMapper
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.report import Table
from repro.metrics.core import evaluate_mapping
from repro.routing.minimal_adaptive import MinimalAdaptiveRouter
from repro.simulator.app import ApplicationModel, calibrate_compute
from repro.simulator.apps import (
    PAPER_COMM_FRACTIONS,
    bt_application,
    cg_application,
    sp_application,
)
from repro.simulator.network import NetworkModel, NetworkParams
from repro.utils.logconf import get_logger

__all__ = ["MapperSpec", "ComparisonResult", "default_mappers",
           "benchmark_apps", "run_comparison"]

log = get_logger("experiments.runner")


@dataclass(frozen=True)
class MapperSpec:
    """A labelled mapper factory (topology -> mapper)."""

    label: str
    factory: Callable

    def build(self, topology):
        return self.factory(topology)


def default_mappers(scale: ExperimentScale) -> list[MapperSpec]:
    """The paper's Figure 8/10 line-up at this scale.

    Order: platform default first (everything is normalized to it), the
    two alternate dimension permutations, Hilbert, RHT, then RAHTM.
    """
    specs = [
        MapperSpec(order, lambda t, o=order: DimOrderMapper(t, o))
        for order in scale.dim_orders
    ]
    specs.append(MapperSpec("Hilbert", lambda t: HilbertMapper(t)))
    specs.append(MapperSpec("RHT", lambda t: RubikTilingMapper(t)))
    specs.append(
        MapperSpec("RAHTM", lambda t: RAHTMMapper(t, scale.rahtm))
    )
    return specs


def benchmark_apps(scale: ExperimentScale) -> dict[str, ApplicationModel]:
    """The paper's three communication-heavy benchmarks (Table I)."""
    n = scale.num_tasks
    cls = scale.problem_class
    return {
        "BT": bt_application(n, cls),
        "SP": sp_application(n, cls),
        "CG": cg_application(n, cls),
    }


@dataclass
class ComparisonResult:
    """All raw numbers behind Figures 8, 9, 10 and the V-B discussion."""

    scale: ExperimentScale
    exec_seconds: Table
    comm_seconds: Table
    mcl: Table
    hop_bytes: Table
    mapping_seconds: Table
    comm_fraction: dict[str, float] = field(default_factory=dict)

    @property
    def default_label(self) -> str:
        return self.exec_seconds.col_labels[0]

    def normalized(self, table: Table, title: str) -> Table:
        """Each cell divided by the default mapper's cell (paper's Y axis)."""
        out = Table(title)
        base_col = table.col_labels[0]
        for r in table.row_labels:
            base = table.get(r, base_col)
            for c in table.col_labels:
                out.set(r, c, table.get(r, c) / base if base else float("nan"))
        out.add_geomean_row()
        return out


def run_comparison(
    scale="small",
    mappers: list[MapperSpec] | None = None,
    apps: dict[str, ApplicationModel] | None = None,
    network_params: NetworkParams | None = None,
) -> ComparisonResult:
    """Run every benchmark under every mapper and collect all metrics.

    The first mapper is the platform default: applications are calibrated
    so its communication fraction matches the paper's Figure 9 values.
    """
    scale = get_scale(scale)
    topo = scale.topology()
    router = MinimalAdaptiveRouter(topo)
    network = NetworkModel(router, network_params)
    mappers = mappers or default_mappers(scale)
    apps = apps or benchmark_apps(scale)

    result = ComparisonResult(
        scale=scale,
        exec_seconds=Table("execution time (s)"),
        comm_seconds=Table("communication time (s)"),
        mcl=Table("max channel load (bytes)"),
        hop_bytes=Table("hop-bytes"),
        mapping_seconds=Table("offline mapping time (s)"),
    )
    for bench_name, app in apps.items():
        graph = app.comm_graph()
        default_mapper = mappers[0].build(topo)
        t0 = time.perf_counter()
        default_mapping = default_mapper.map(graph)
        default_map_secs = time.perf_counter() - t0
        target = PAPER_COMM_FRACTIONS.get(app.name, 0.5)
        app = calibrate_compute(app, default_mapping, network, target)
        log.info("%s calibrated: comm fraction %.0f%% under %s",
                 bench_name, 100 * target, mappers[0].label)
        for i, spec in enumerate(mappers):
            if i == 0:
                mapping, map_secs = default_mapping, default_map_secs
            else:
                mapper = spec.build(topo)
                t0 = time.perf_counter()
                mapping = mapper.map(graph)
                map_secs = time.perf_counter() - t0
            sim = app.simulate(mapping, network)
            rep = evaluate_mapping(router, mapping, graph)
            result.exec_seconds.set(bench_name, spec.label, sim.total_seconds)
            result.comm_seconds.set(bench_name, spec.label, sim.comm_seconds)
            result.mcl.set(bench_name, spec.label, rep.mcl)
            result.hop_bytes.set(bench_name, spec.label, rep.hop_bytes)
            result.mapping_seconds.set(bench_name, spec.label, map_secs)
            if i == 0:
                result.comm_fraction[bench_name] = sim.comm_fraction
            log.info(
                "%s/%s: exec %.3fs comm %.3fs mcl %.3g (mapped in %.1fs)",
                bench_name, spec.label, sim.total_seconds, sim.comm_seconds,
                rep.mcl, map_secs,
            )
    return result
