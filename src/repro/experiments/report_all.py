"""One-shot reproduction report generator.

Runs every experiment at a chosen scale and emits a single markdown
report (the machinery behind ``EXPERIMENTS.md``), so a reproduction run
is one command::

    python -m repro.experiments.report_all --scale tiny --out report.md
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import (
    fig1,
    fig7,
    fig8,
    fig9,
    fig10,
    fig234,
    run_comparison,
    scaling,
    table1,
    table2,
)
from repro.experiments.config import get_scale

__all__ = ["generate_report", "main"]

_SECTIONS = ("fig1", "fig234", "table2", "fig7", "table1", "comparison",
             "scaling")


def _code_block(table) -> str:
    return "```\n" + table.to_text() + "\n```\n"


def _hotspot_block(netviews) -> str:
    """Render the per-cell hotspot summaries as a fixed-width table.

    One row per (benchmark, mapper) cell: the MCL, the hottest link and
    its share of total traffic, plus the Gini coefficient of the channel
    load distribution — the "where and why" behind Figure 10's MCLs.
    """
    header = (f"{'benchmark':<10} {'mapper':<10} {'MCL':>12} "
              f"{'hotspot link':<24} {'share':>6} {'gini':>6}")
    lines = [header, "-" * len(header)]
    for (bench, mapper), nv in sorted(netviews.items()):
        top = nv["top"][0] if nv["top"] else None
        label = top["label"] if top else "(idle)"
        share = f"{top['share_of_total'] * 100:.1f}%" if top else "-"
        lines.append(
            f"{bench:<10} {mapper:<10} {nv['mcl']:>12.5g} "
            f"{label:<24} {share:>6} {nv['gini']:>6.3f}"
        )
    return "```\n" + "\n".join(lines) + "\n```\n"


def generate_report(
    scale="tiny",
    include=_SECTIONS,
    *,
    jobs: int = 1,
    cache_dir=None,
    job_timeout: float | None = None,
) -> str:
    """Run the selected experiments and return a markdown report.

    ``jobs``/``cache_dir``/``job_timeout`` are forwarded to the mapping
    engine behind the comparison sweep: ``jobs > 1`` computes the
    mapper x benchmark grid in parallel, and a ``cache_dir`` makes
    repeated report generation a warm-cache no-op.
    """
    scale = get_scale(scale)
    parts = [
        "# RAHTM reproduction report",
        f"scale: `{scale.name}` — {scale.num_tasks} tasks on "
        f"{'x'.join(map(str, scale.shape))} (concentration "
        f"{scale.concentration}, class {scale.problem_class})",
        "",
    ]
    t0 = time.perf_counter()
    if "fig1" in include:
        parts += ["## Figure 1 — routing awareness", _code_block(fig1.run())]
    if "fig234" in include:
        parts += ["## Figures 2-4 — clustering", _code_block(fig234.run())]
    if "table2" in include:
        parts += ["## Table II — fission MILP", _code_block(table2.run())]
    if "fig7" in include:
        parts += ["## Figure 7 — beam merge", _code_block(fig7.run())]
    if "table1" in include:
        parts += ["## Table I — benchmarks", _code_block(table1.run(scale))]
    if "comparison" in include:
        result = run_comparison(scale, jobs=jobs, cache_dir=cache_dir,
                                job_timeout=job_timeout, netview=True)
        parts += [
            "## Figure 8 — overall execution time",
            _code_block(fig8.from_comparison(result)),
            "## Figure 9 — communication fraction",
            _code_block(fig9.from_comparison(result)),
            "## Figure 10 — communication time",
            _code_block(fig10.from_comparison(result)),
            "## Section V-B — offline mapping time",
            _code_block(result.mapping_seconds),
        ]
        if result.netviews:
            parts += [
                "## Network hotspots — which link carries each MCL",
                _hotspot_block(result.netviews),
            ]
    if "scaling" in include:
        parts += ["## Scaling", _code_block(scaling.run(scales=("tiny",)))]
    parts.append(
        f"\n_report generated in {time.perf_counter() - t0:.1f}s_\n"
    )
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--out", help="write markdown here (default: stdout)")
    parser.add_argument(
        "--sections", default=",".join(_SECTIONS),
        help=f"comma list from {_SECTIONS}",
    )
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the comparison sweep")
    parser.add_argument("--cache-dir",
                        help="content-addressed mapping result cache")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-job wall-clock budget in seconds")
    args = parser.parse_args(argv)
    report = generate_report(
        args.scale, tuple(args.sections.split(",")),
        jobs=args.jobs, cache_dir=args.cache_dir,
        job_timeout=args.job_timeout,
    )
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
