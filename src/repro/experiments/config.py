"""Experiment scales.

The paper runs 16,384 processes on a 4x4x4x4x2 BG/Q partition with a
concentration factor of 32 (Section IV). Pure-Python MILP + merge at that
scale costs hours (as the paper's own offline mapping did on CPLEX), so
the default scales are reduced while keeping every structural property:
power-of-two tori, concentration > number-of-"cores", and the same
benchmark set. ``paper`` is the full configuration for those who want to
burn the CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rahtm import RAHTMConfig
from repro.errors import ConfigError
from repro.topology.cartesian import CartesianTopology

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """One evaluation scale.

    Attributes
    ----------
    name:
        Scale label.
    shape:
        Torus shape.
    concentration:
        Tasks per node.
    problem_class:
        NAS class fed to the workload generators.
    dim_orders:
        The dimension-permutation mappings compared (first = the
        platform default the paper normalizes to).
    rahtm:
        RAHTM configuration tuned to finish in reasonable time at this
        scale.
    """

    name: str
    shape: tuple[int, ...]
    concentration: int
    problem_class: str
    dim_orders: tuple[str, ...]
    rahtm: RAHTMConfig = field(default_factory=RAHTMConfig)

    @property
    def num_nodes(self) -> int:
        n = 1
        for k in self.shape:
            n *= k
        return n

    @property
    def num_tasks(self) -> int:
        return self.num_nodes * self.concentration

    def topology(self) -> CartesianTopology:
        return CartesianTopology(self.shape, wrap=True)


SCALES: dict[str, ExperimentScale] = {
    # Fast enough for unit tests and quick looks (64 tasks).
    "tiny": ExperimentScale(
        name="tiny", shape=(4, 4), concentration=4, problem_class="W",
        dim_orders=("ABT", "TAB", "BAT"),
        rahtm=RAHTMConfig(beam_width=8, max_orientations=8,
                          milp_time_limit=10.0, order_mode="identity",
                          refine_iterations=1000, seed=0),
    ),
    # Default for the figure benches (256 tasks on a 4x4x4 torus).
    "small": ExperimentScale(
        name="small", shape=(4, 4, 4), concentration=4, problem_class="C",
        dim_orders=("ABCT", "TABC", "ACBT"),
        rahtm=RAHTMConfig(beam_width=16, max_orientations=24,
                          milp_time_limit=30.0, milp_rel_gap=0.02,
                          refine_iterations=2000, seed=0),
    ),
    # The headline run (1,024 tasks on a 4^4 torus, concentration 4).
    "medium": ExperimentScale(
        name="medium", shape=(4, 4, 4, 4), concentration=4,
        problem_class="C",
        dim_orders=("ABCDT", "TABCD", "ACDBT"),
        rahtm=RAHTMConfig(beam_width=16, max_orientations=32,
                          milp_time_limit=60.0, milp_rel_gap=0.05,
                          refine_iterations=5000, seed=0),
    ),
    # The paper's topology and process count (512 nodes, 16,384 tasks)
    # tuned to finish inside a CI timeout: the MILP rung is swapped for
    # the deterministic greedy placer (a time-limited solver is
    # machine-dependent, and the paper-scale gate checks bitwise MCLs),
    # and beam/orientation/refine budgets are trimmed. The vectorized hot
    # path is what makes this runnable in CI at all.
    "paper-ci": ExperimentScale(
        name="paper-ci", shape=(4, 4, 4, 4, 2), concentration=32,
        problem_class="D",
        dim_orders=("ABCDET", "TABCDE", "ACEBDT"),
        rahtm=RAHTMConfig(beam_width=8, max_orientations=16,
                          use_milp=False, order_mode="identity",
                          refine_iterations=2000, seed=0),
    ),
    # The paper's configuration: 512 nodes, 16,384 tasks. Runs, but takes
    # hours — mirroring the paper's own 33-minute-to-35-hour mapping cost.
    "paper": ExperimentScale(
        name="paper", shape=(4, 4, 4, 4, 2), concentration=32,
        problem_class="D",
        dim_orders=("ABCDET", "TABCDE", "ACEBDT"),
        rahtm=RAHTMConfig(beam_width=64, max_orientations=64,
                          milp_time_limit=600.0, milp_rel_gap=0.05,
                          refine_iterations=20000, seed=0),
    ),
}


def get_scale(scale) -> ExperimentScale:
    """Resolve a scale by name or pass an :class:`ExperimentScale` through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[str(scale)]
    except KeyError:
        raise ConfigError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None
