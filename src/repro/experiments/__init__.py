"""Experiment harness: everything needed to regenerate the paper's
figures and tables at configurable scale.

Each ``figN``/``tableN`` module exposes ``run(scale=...)`` returning a
:class:`repro.experiments.report.Table` whose rows mirror the paper's
plot, plus a ``main()`` that prints it. ``benchmarks/`` wraps these in
pytest-benchmark targets.
"""

from repro.experiments.config import ExperimentScale, SCALES, get_scale
from repro.experiments.report import Table
from repro.experiments.runner import (
    MapperSpec,
    default_mapper_configs,
    default_mappers,
    run_comparison,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "Table",
    "MapperSpec",
    "run_comparison",
    "default_mappers",
    "default_mapper_configs",
]
