"""Figure 10 — communication time, normalized to the default mapping.

The paper's headline: RAHTM reduces communication time ~20% consistently
across all three benchmarks, while TABCDE/ACEBDT blow up CG (by 48%/19%)
and RHT is non-uniform too.
"""

from __future__ import annotations

from repro.experiments.runner import ComparisonResult, run_comparison

__all__ = ["run", "from_comparison", "main"]


def from_comparison(result: ComparisonResult):
    return result.normalized(
        result.comm_seconds,
        "Figure 10: communication time relative to the default mapping",
    )


def run(scale="small", **kwargs):
    return from_comparison(run_comparison(scale, **kwargs))


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
