"""Figures 2-4 — the clustering walk-through.

Reproduces the paper's running example: a 16-task communication graph
clustered with a 2x2 tile onto a 4x4 network's 2x2 block hierarchy,
reporting every candidate tiling's inter-tile cut (Figure 2) and the
contracted cluster graph (Figures 3/4).
"""

from __future__ import annotations

from repro.core.clustering import build_cluster_hierarchy
from repro.core.tiling import enumerate_tilings, inter_tile_volume
from repro.experiments.report import Table
from repro.topology.cartesian import torus
from repro.topology.hierarchy import CubeHierarchy
from repro.workloads.stencil import halo2d

__all__ = ["run", "main"]


def run(volume: float = 10.0) -> Table:
    graph = halo2d(4, 4, volume=volume, wrap=False)
    table = Table("Figure 2: inter-tile volume per candidate 4-cell tiling")
    for tile in enumerate_tilings(graph.grid_shape, 4):
        cut = inter_tile_volume(graph, tile)
        table.set("x".join(map(str, tile)), "inter_tile_volume", cut)

    topo = torus(4, 4)
    cube_h = CubeHierarchy(topo)
    hierarchy = build_cluster_hierarchy(graph, topo.num_nodes,
                                        2**cube_h.n, cube_h.num_levels)
    top = hierarchy.graph_at(cube_h.num_levels - 1)
    table2 = Table("Figure 3/4: contracted cluster graph (4 clusters)")
    for s, d, v in zip(top.srcs, top.dsts, top.vols):
        if s != d:
            table2.set(f"C{int(s)}->C{int(d)}", "volume", float(v))
    # Concatenate by returning the tiling table annotated with the summary.
    for row in table2.row_labels:
        table.set(row, "inter_tile_volume", table2.get(row, "volume"))
    return table


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
