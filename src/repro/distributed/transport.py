"""Command transports: how a spawner's command reaches a host.

The spawners in :mod:`repro.distributed.spawn` decide *what* to run (the
``repro worker`` command line, the log file, the worker identity); a
:class:`Transport` decides *where and how* that command executes. The
seam is deliberately tiny — two methods, both mapping a POSIX shell
command string onto a local ``argv`` — so the full remote lifecycle
(launch, log teeing, liveness, signal escalation against a remote pid)
is testable without a second machine:

- :class:`LocalTransport` runs the shell command on this host
  (``/bin/sh -c ...``). It is also what a fake-``ssh`` shim reduces to,
  which is how CI drives :class:`~repro.distributed.spawn.SshSpawner`
  end to end (``scripts/fake_ssh.py``).
- :class:`SshTransport` wraps the command for a remote host
  (``ssh -o BatchMode=yes HOST '<command>'``). The ssh client process
  is the local proxy: its stdout/stderr carry the worker's log home,
  its exit mirrors the remote command's exit, and *control* commands
  (``kill -TERM <remote pid>``) ride separate short-lived invocations
  of the same wrapper.

The ``ssh`` binary is replaceable per transport (``ssh_command=``) or
process-wide via ``$REPRO_SSH`` — a multi-token value is split with
shell rules, so ``REPRO_SSH="python3 scripts/fake_ssh.py"`` works.
Everything here builds argv lists only; the spawners own process
creation and supervision.
"""

from __future__ import annotations

import os
import shlex
import subprocess

from repro.utils.logconf import get_logger

__all__ = ["ENV_SSH", "Transport", "LocalTransport", "SshTransport"]

log = get_logger("distributed.transport")

#: Environment override for the ssh client command (tests, CI shims).
ENV_SSH = "REPRO_SSH"


class Transport:
    """Maps a shell command string onto a locally-executable argv."""

    #: Host label this transport dispatches to ("local" = this machine).
    host = "local"

    def launch_argv(self, shell_command: str) -> list[str]:
        """Argv for the long-running launch (the worker process)."""
        raise NotImplementedError

    def control_argv(self, shell_command: str) -> list[str]:
        """Argv for a short control command (kill, liveness probe)."""
        raise NotImplementedError

    def run(self, shell_command: str, timeout: float = 10.0) -> bool:
        """Run a control command; True when it exited 0.

        Control failures are expected operating conditions (the remote
        pid already exited, the host dropped off the network) — they
        are logged and reported, never raised.
        """
        argv = self.control_argv(shell_command)
        try:
            proc = subprocess.run(
                argv, timeout=timeout, check=False,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            log.warning("control command %r via %s failed: %s",
                        shell_command, self.host, exc)
            return False
        return proc.returncode == 0


class LocalTransport(Transport):
    """Execute on this host through ``/bin/sh`` (no remoting)."""

    def launch_argv(self, shell_command: str) -> list[str]:
        return ["/bin/sh", "-c", shell_command]

    control_argv = launch_argv


class SshTransport(Transport):
    """Execute on a remote host through an ``ssh``-shaped client.

    ``ssh_command`` replaces the client binary (a string is split with
    shell rules; a sequence is taken verbatim); when omitted,
    ``$REPRO_SSH`` applies, then plain ``ssh``. ``options`` ride between
    the client and the host on every invocation — ``BatchMode=yes`` by
    default, because an interactive password prompt inside a fleet
    coordinator is a hang, not a login.
    """

    def __init__(self, host: str, ssh_command=None,
                 options: tuple = ("-o", "BatchMode=yes")):
        self.host = str(host)
        if ssh_command is None:
            raw = os.environ.get(ENV_SSH, "").strip()
            ssh_command = shlex.split(raw) if raw else ["ssh"]
        elif isinstance(ssh_command, str):
            ssh_command = shlex.split(ssh_command)
        self.ssh_command = [str(part) for part in ssh_command]
        self.options = tuple(options)

    def _argv(self, shell_command: str) -> list[str]:
        # One pre-joined command string, exactly what a real ssh client
        # hands the remote login shell — the fake-ssh shim must honour
        # the same contract (`sh -c <string>`) or it is not a test of
        # the real lifecycle.
        return [*self.ssh_command, *self.options, self.host, shell_command]

    launch_argv = _argv
    control_argv = _argv
