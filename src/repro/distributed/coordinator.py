"""The fleet coordinator: a `BatchExecutor`-shaped distributed backend.

:class:`DistributedExecutor` implements the same surface the engine
already speaks — ``run(fn, items)`` returning positional
:class:`~repro.service.executor.JobOutcome`\\ s, ``request_drain`` /
``draining``, ``on_event`` telemetry — but instead of a process pool it
posts each :class:`~repro.service.jobs.MappingJob` to the shared board
and lets fleet workers (this host or any host mounting the cache
directory) claim and execute them.

The coordinator's poll loop is the **reaper**: per posted job it watches
for a receipt (done), a store hit (done elsewhere), or a claim whose
heartbeat mtime has gone quiet past its lease — in which case the claim
is reclaimed with the DirectoryLock rename-aside discipline and the
entry requeued with jittered backoff and a bounded reclaim count.
``poison_threshold`` consecutive lease deaths quarantine the spec as a
poison job (the engine's existing ``"poisoned"`` event handler writes
the quarantine report), mirroring the process-pool supervision ladder.

Stragglers past ``speculation_seconds`` (or a fraction of the job
timeout) get one speculative re-execution slot; the receipt's O_EXCL
publish is the first-commit-wins arbiter, and because results land in
the content-addressed store first, losing the race costs a duplicate
*solve* only when the original never committed.

``fn`` is accepted for interface compatibility and ignored: the fleet
always runs :func:`~repro.service.jobs.execute_mapping_job` worker-side
with the runtime the engine assigned to :attr:`runtime` — this backend
is mapping-job specific by design.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import asdict, dataclass

from repro.errors import ConfigError
from repro.distributed.board import BOARD_SCHEMA_VERSION, JobBoard
from repro.observability.metrics import get_registry
from repro.resilience import faultinject
from repro.service.executor import JobOutcome
from repro.service.jobs import JobRuntime, MappingJob
from repro.service.store import ResultStore
from repro.service.supervision import full_jitter_delay
from repro.utils.logconf import get_logger

__all__ = ["DistributedConfig", "DistributedExecutor"]

log = get_logger("distributed.coordinator")


@dataclass(frozen=True)
class DistributedConfig:
    """Fleet-execution knobs.

    Attributes
    ----------
    lease_seconds:
        A claim whose heartbeat is older than this is a dead or wedged
        worker; the reaper reclaims it. Workers refresh every quarter
        lease, so the value trades failover latency against tolerance
        for scheduling hiccups (and NFS mtime granularity).
    poll:
        Coordinator reaper poll interval.
    timeout:
        Per-attempt wall-clock budget enforced worker-side (None =
        unlimited); also the default base for the speculation horizon.
    poison_threshold:
        Lease deaths attributable to one job before it is quarantined
        as poison instead of requeued (mirrors the process-pool ladder).
    reclaim_backoff:
        Full-jitter backoff cap base applied to a reclaimed job's
        ``not_before`` requeue window.
    max_reposts:
        Times a vanished queue entry is reposted before the job fails.
    spawn_workers:
        Local worker subprocesses the coordinator launches and
        supervises (0 = external workers only, e.g. ``repro worker``
        on other hosts). Ignored when ``hosts`` is set.
    hosts:
        Multi-host fleet registry: ``HostSpec``\\ s or
        ``"[kind:]name[*slots]"`` strings (``"local*2"``,
        ``"ssh:node7*4"``, ``"slurm:gpu*8"``). Each host gets its own
        spawner (subprocess / SSH transport / ``srun``), its own respawn
        budget of ``max_worker_respawns``, and its label threaded into
        worker registrations, claims, stats, and poison reports. The
        coordinator publishes the host list to ``board/hosts.json`` so
        the doctor can flag registrations from unknown hosts.
    worker_poll / worker_idle_exit:
        Passed to spawned workers; idle-exit keeps abandoned fleets
        from running forever.
    worker_python:
        Interpreter used on remote (ssh/slurm) hosts.
    max_worker_respawns:
        Dead spawned workers revived while work is pending, **per
        host** (a backstop, not a health policy — the reaper already
        recovers their jobs). A single-host fleet keeps the old
        whole-batch semantics.
    speculation_seconds:
        Age of a healthy claim before a speculative re-execution slot
        opens (None = derive from ``timeout`` x ``speculation_fraction``;
        both None disables speculation).
    cleanup:
        Remove queue entries and receipts for completed jobs whose
        results are in the store (the durable substrate); disable to
        inspect receipts post-run.
    worker_env:
        Extra environment for spawned workers, as ``(name, value)``
        pairs (a dict is accepted and normalized) — how the chaos suite
        arms ``REPRO_FAULTS`` in workers only.
    """

    lease_seconds: float = 10.0
    poll: float = 0.05
    timeout: float | None = None
    poison_threshold: int = 2
    reclaim_backoff: float = 0.25
    max_reposts: int = 3
    spawn_workers: int = 0
    hosts: tuple = ()
    worker_poll: float = 0.05
    worker_idle_exit: float | None = 300.0
    worker_python: str = "python3"
    max_worker_respawns: int = 8
    speculation_seconds: float | None = None
    speculation_fraction: float = 0.75
    cleanup: bool = True
    worker_env: tuple = ()

    def __post_init__(self):
        if self.lease_seconds <= 0:
            raise ConfigError("lease_seconds must be > 0")
        if self.poll <= 0:
            raise ConfigError("poll must be > 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be > 0 (or None)")
        if self.poison_threshold < 1:
            raise ConfigError("poison_threshold must be >= 1")
        if self.reclaim_backoff < 0:
            raise ConfigError("reclaim_backoff must be >= 0")
        if self.max_reposts < 0:
            raise ConfigError("max_reposts must be >= 0")
        if self.spawn_workers < 0:
            raise ConfigError("spawn_workers must be >= 0")
        if self.max_worker_respawns < 0:
            raise ConfigError("max_worker_respawns must be >= 0")
        if (self.speculation_seconds is not None
                and self.speculation_seconds <= 0):
            raise ConfigError("speculation_seconds must be > 0 (or None)")
        if not (0.0 < self.speculation_fraction):
            raise ConfigError("speculation_fraction must be > 0")
        object.__setattr__(
            self, "worker_env",
            tuple(sorted((str(k), str(v))
                         for k, v in dict(self.worker_env).items())),
        )
        if self.hosts:
            from repro.distributed.spawn import HostSpec

            object.__setattr__(
                self, "hosts",
                tuple(HostSpec.parse(spec) for spec in self.hosts),
            )

    @property
    def speculation_after(self) -> float | None:
        if self.speculation_seconds is not None:
            return self.speculation_seconds
        if self.timeout is not None:
            return self.timeout * self.speculation_fraction
        return None


class _KeyState:
    """Reaper bookkeeping for one distinct job key in a batch."""

    __slots__ = ("indices", "entry", "posted", "reclaims", "reposts",
                 "started", "speculated", "t0", "lease_seq")

    def __init__(self, indices: list[int], entry: dict, posted: bool):
        self.indices = indices
        self.entry = entry
        self.posted = posted
        self.reclaims = 0
        self.reposts = 0
        self.started = False
        self.speculated = False
        self.t0 = time.perf_counter()
        #: Per claim slot (speculative flag -> (last seen heartbeat seq,
        #: coordinator-monotonic time it was first seen)). The reaper's
        #: skew defence: a stale-mtime claim is only dead once its seq
        #: also stops advancing on *our* clock.
        self.lease_seq: dict[bool, tuple[int, float]] = {}


class _HostState:
    """Supervision bookkeeping for one fleet host's spawned workers."""

    __slots__ = ("spec", "spawner", "handles", "respawns")

    def __init__(self, spec, spawner):
        self.spec = spec
        self.spawner = spawner
        self.handles: list = []
        self.respawns = 0


class DistributedExecutor:
    """Shard mapping batches across fleet workers via the shared board.

    Drop-in for :class:`~repro.service.executor.BatchExecutor` from the
    engine's point of view; additionally exposes :attr:`runtime` (the
    engine assigns the batch's :class:`JobRuntime` before ``run``) and
    :meth:`snapshot` for health endpoints.
    """

    def __init__(self, store: ResultStore,
                 config: DistributedConfig | None = None, on_event=None):
        if store is None:
            raise ConfigError(
                "the distributed backend requires a result store (a cache "
                "directory): the store is the coordination substrate"
            )
        self.store = store
        self.config = config or DistributedConfig()
        self.on_event = on_event
        self.board = JobBoard.under_cache(store.root)
        #: Batch runtime, assigned by the engine before each ``run``.
        self.runtime: JobRuntime | None = None
        self._drain = threading.Event()
        self._host_states: list[_HostState] | None = None

    # -- drain / events ------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def request_drain(self, reason: str = "drain requested") -> None:
        if self._drain.is_set():
            return
        log.warning("draining fleet coordinator: %s", reason)
        get_registry().counter("fleet.drains").inc()
        self._drain.set()
        self._emit("drain_requested", reason=reason)
        for handle in self._handles:
            handle.terminate()

    def _emit(self, event: str, **info) -> None:
        if self.on_event is not None:
            self.on_event(event, info)

    # -- spawned-worker supervision --------------------------------------------------
    @property
    def _handles(self) -> list:
        """Every live-or-dead spawned worker handle, across all hosts."""
        if self._host_states is None:
            return []
        return [h for hs in self._host_states for h in hs.handles]

    @property
    def _respawns(self) -> int:
        if self._host_states is None:
            return 0
        return sum(hs.respawns for hs in self._host_states)

    def _ensure_hosts(self) -> list[_HostState]:
        """Build one supervised spawner per configured fleet host.

        ``hosts`` wins; otherwise ``spawn_workers > 0`` becomes one
        implicit local host with that many slots (the PR 7 semantics);
        otherwise the fleet is fully external and the list is empty.
        """
        if self._host_states is not None:
            return self._host_states
        from repro.distributed.spawn import HostSpec, build_spawner

        cfg = self.config
        specs = list(cfg.hosts)
        if not specs and cfg.spawn_workers > 0:
            specs = [HostSpec("local", slots=cfg.spawn_workers,
                              kind="local")]
        self._host_states = [
            _HostState(spec, build_spawner(
                spec, self.store.root,
                poll=cfg.worker_poll,
                idle_exit=cfg.worker_idle_exit,
                env=dict(cfg.worker_env),
                python=cfg.worker_python,
            ))
            for spec in specs
        ]
        return self._host_states

    def _maintain_workers(self, initial: bool = False) -> None:
        """Top each fleet host back up to its configured slot count."""
        cfg = self.config
        if self._drain.is_set():
            return
        registry = get_registry()
        alive_total = 0
        for hs in self._ensure_hosts():
            alive = [h for h in hs.handles if h.alive()]
            dead = len(hs.handles) - len(alive)
            hs.handles = alive
            while len(hs.handles) < hs.spec.slots:
                if not initial:
                    if hs.respawns >= cfg.max_worker_respawns:
                        log.error(
                            "host %s: respawn budget (%d) exhausted; "
                            "relying on other hosts, external workers, "
                            "and the reaper", hs.spec.name,
                            cfg.max_worker_respawns)
                        break
                    hs.respawns += 1
                    registry.counter("fleet.worker_respawns").inc()
                    log.warning("host %s: respawning dead fleet worker "
                                "(%d dead, respawn %d/%d)", hs.spec.name,
                                dead, hs.respawns, cfg.max_worker_respawns)
                hs.handles.append(hs.spawner.spawn())
            alive_total += len(hs.handles)
        registry.gauge("fleet.spawned_workers").set(alive_total)

    def stop_workers(self, timeout: float = 5.0) -> None:
        """Terminate every spawned worker (drain hooks, tests, benches)."""
        if self._host_states is not None:
            for hs in self._host_states:
                for handle in hs.handles:
                    handle.stop(timeout=timeout)
                hs.handles = []
        get_registry().gauge("fleet.spawned_workers").set(0)

    # -- the batch -----------------------------------------------------------------
    def run(self, fn, items) -> list[JobOutcome]:
        """Post ``items`` to the board and reap until all are decided.

        ``fn`` is ignored (see module docstring); items must be
        :class:`MappingJob`\\ s.
        """
        del fn
        items = list(items)
        cfg = self.config
        registry = get_registry()
        outcomes: list[JobOutcome | None] = [None] * len(items)
        for i, item in enumerate(items):
            self._emit("queued", index=i, item=item)

        runtime_doc = None
        if self.runtime is not None and self.runtime.active:
            runtime_doc = asdict(self.runtime)

        key_indices: dict[str, list[int]] = {}
        for i, job in enumerate(items):
            if not isinstance(job, MappingJob):
                raise ConfigError(
                    "the distributed backend executes MappingJobs only; "
                    f"got {type(job).__name__}"
                )
            payload = job.payload()
            if "digest" in payload.get("workload", {}):
                # Content-addressed file workloads cannot be rebuilt on
                # another host from the payload alone; fail fast rather
                # than posting a job no worker can run.
                error = ("file-backed workload specs cannot run on the "
                         "distributed backend (content digest only, not "
                         "reconstructible worker-side); use the local "
                         "backend")
                outcomes[i] = JobOutcome(i, job, None, error, 0, 0.0)
                self._emit("finished", index=i, item=job, attempts=0,
                           wall_seconds=0.0, error=error, timed_out=False)
                registry.counter("fleet.failed").inc()
                continue
            key_indices.setdefault(job.cache_key(), []).append(i)

        self.board.ensure_dirs()
        if cfg.hosts:
            # Publish the legitimate host list so the doctor can flag
            # registrations from hosts nobody configured. The
            # coordinator's own host is always legitimate (external
            # `repro worker` processes run here too).
            self.board.write_host_registry(
                [spec.name for spec in cfg.hosts]
                + [socket.gethostname(), "local"])
        state: dict[str, _KeyState] = {}
        for key, idxs in key_indices.items():
            job = items[idxs[0]]
            entry = {
                "kind": "fleet_job",
                "schema": BOARD_SCHEMA_VERSION,
                "key": key,
                "spec": job.payload(),
                "describe": job.describe(),
                "runtime": runtime_doc,
                "timeout": cfg.timeout,
                "lease_seconds": cfg.lease_seconds,
                "posted_unix": time.time(),
                "owner": {"host": socket.gethostname(), "pid": os.getpid()},
                "reclaims": 0,
                "not_before": 0.0,
                "speculate": False,
            }
            posted = self.board.post(key, entry)
            if posted:
                registry.counter("fleet.posted").inc()
            else:
                # Another coordinator sharing the cache posted this spec
                # first: join its run instead of competing.
                registry.counter("fleet.dedup_joins").inc()
                entry = self.board.read_entry(key) or entry
            state[key] = _KeyState(idxs, entry, posted)

        self._maintain_workers(initial=True)

        pending = set(state)
        while pending and not self._drain.is_set():
            for key in sorted(pending):
                outcome_info = self._poll_key(key, state[key], items)
                if outcome_info is not None:
                    self._settle(key, state[key], items, outcomes,
                                 outcome_info)
                    pending.discard(key)
            registry.gauge("fleet.board_depth").set(len(pending))
            registry.gauge("fleet.workers_alive").set(
                self.board.alive_workers())
            self._maintain_workers()
            if pending and self._fleet_dead(pending):
                error = ("fleet dead: every spawned worker exited, the "
                         "respawn budget is exhausted, and no external "
                         "worker is registered or holding a live claim; "
                         "failing the remaining jobs (worker logs under "
                         f"{self.board.workers_dir})")
                log.error("%s", error)
                for key in sorted(pending):
                    registry.counter("fleet.failed").inc()
                    self._settle(key, state[key], items, outcomes,
                                 {"payload": None, "error": error})
                pending.clear()
                break
            if pending and not self._drain.is_set():
                time.sleep(cfg.poll)

        if pending:
            self._drain_pending(pending, state, items, outcomes)
        registry.gauge("fleet.board_depth").set(0)
        return outcomes  # type: ignore[return-value]

    def _fleet_dead(self, pending: set) -> bool:
        """True when nobody is left who could ever run the pending work.

        Only meaningful for self-spawning coordinators: with
        ``spawn_workers=0`` the operator owns worker lifecycle and the
        coordinator waits indefinitely (workers may register any time).
        A busy worker blocked in a long solve stops refreshing its
        registration but keeps heartbeating its claim, so fresh claims
        also count as signs of life.
        """
        cfg = self.config
        if not cfg.hosts and cfg.spawn_workers <= 0:
            return False
        states = self._host_states or []
        for hs in states:
            if hs.handles and any(h.alive() for h in hs.handles):
                return False
            if hs.respawns < cfg.max_worker_respawns:
                return False
        if self.board.alive_workers() > 0:
            return False
        for key in pending:
            for speculative in (False, True):
                _, age = self.board.claim_info(key, speculative=speculative)
                # 2x lease matches the skew-tolerant reap horizon: a
                # claim can stay un-reaped that long while its seq is
                # checked, and it is a sign of life for just as long.
                if age is not None and age <= 2.0 * cfg.lease_seconds:
                    return False
        return True

    # -- per-key reaper step ---------------------------------------------------------
    def _poll_key(self, key: str, st: _KeyState, items: list) -> dict | None:
        """One reaper pass over a pending key; non-None = decided."""
        cfg = self.config
        registry = get_registry()
        receipt = self.board.read_receipt(key)
        if receipt is not None:
            return self._decide_from_receipt(key, st, receipt)
        if key in self.store:
            # No receipt (cleaned up by another coordinator, or the
            # worker died between store commit and receipt publish) but
            # the result is durable: that is all we need.
            payload = self.store.get(key)
            if payload is not None:
                registry.counter("fleet.completed").inc()
                return {"payload": payload, "error": None}

        now = time.time()
        claim_seen = False
        for speculative in (False, True):
            claim, age = self.board.claim_info(key, speculative=speculative)
            if age is None:
                continue
            claim_seen = True
            if not speculative and not st.started and claim is not None:
                st.started = True
                registry.counter("fleet.claims").inc()
                self._emit("started", index=st.indices[0],
                           item=items[st.indices[0]],
                           attempt=1 + st.reclaims,
                           worker=claim.get("worker"))
            lease = cfg.lease_seconds
            if claim is not None:
                try:
                    lease = float(claim.get("lease_seconds")
                                  or cfg.lease_seconds)
                except (TypeError, ValueError):
                    pass
            expired = (self._claim_expired(st, speculative, claim, age,
                                           lease)
                       or faultinject.fires("lease-expire"))
            if expired:
                if self.board.reclaim(key, speculative=speculative):
                    decided = self._on_reclaim(key, st, items, claim, age,
                                               speculative)
                    if decided is not None:
                        return decided
                continue
            if (not speculative and not st.speculated
                    and cfg.speculation_after is not None
                    and claim is not None):
                try:
                    claim_age = now - float(claim.get("claimed_unix") or now)
                except (TypeError, ValueError):
                    claim_age = 0.0
                if claim_age > cfg.speculation_after:
                    self._open_speculation(key, st, items, claim, claim_age)
        if claim_seen:
            return None

        # No receipt, no store hit, no claim: make sure the entry is
        # still on the board (another coordinator's cleanup or a manual
        # sweep may have removed it before any worker ran it).
        if self.board.read_entry(key) is None:
            st.reposts += 1
            if st.reposts > cfg.max_reposts:
                return {
                    "payload": None,
                    "error": (f"job board entry for {key[:12]} vanished "
                              f"{st.reposts} time(s) without a durable "
                              "result; giving up"),
                }
            registry.counter("fleet.reposts").inc()
            entry = dict(st.entry)
            entry["reclaims"] = st.reclaims
            entry["posted_unix"] = time.time()
            self.board.post(key, entry)
        return None

    def _claim_expired(self, st: _KeyState, speculative: bool,
                       claim: dict | None, age: float,
                       lease: float) -> bool:
        """Is this claim dead, or merely on a skewed/slow host?

        A fresh mtime is always alive (and resets the seq watch). A
        stale mtime alone is *not* death: the holder's clock may be
        skewed (mtimes stamped in the past) or its mount slow. The claim
        payload's monotonic heartbeat ``seq`` breaks the tie on the
        coordinator's **own** clock: reclaim only once the seq has also
        been static for a further full lease of our time. Worst-case
        failover doubles to ~2 leases; in exchange, renewal gaps and
        clock skew up to a lease cause zero spurious reclaims.
        (Continuous seq tracking without the mtime gate was considered
        and rejected: it reintroduces spurious reclaims the moment
        renewal latency exceeds the lease.) Legacy claims without a seq
        keep the original mtime-only rule.
        """
        if age <= lease:
            st.lease_seq.pop(speculative, None)
            return False
        seq = claim.get("seq") if isinstance(claim, dict) else None
        if not isinstance(seq, int):
            return True
        now = time.monotonic()
        prev = st.lease_seq.get(speculative)
        if prev is None or prev[0] != seq:
            if prev is not None and prev[0] != seq:
                # Stale mtime but the seq moved: a live worker on a
                # skewed clock or slow mount. Tolerated, observable.
                get_registry().counter("fleet.skew_tolerated").inc()
            st.lease_seq[speculative] = (seq, now)
            return False
        return now - prev[1] > lease

    def _on_reclaim(self, key: str, st: _KeyState, items: list,
                    claim: dict | None, age: float,
                    speculative: bool) -> dict | None:
        """This coordinator won the rename-aside race for a dead lease."""
        cfg = self.config
        registry = get_registry()
        st.reclaims += 1
        st.lease_seq.pop(speculative, None)
        registry.counter("fleet.reclaims").inc()
        worker = claim.get("worker") if claim else None
        host = claim.get("host") if claim else None
        log.warning("reclaimed %s lease on %s from %s@%s (heartbeat %.2fs "
                    "old, lease death %d/%d)",
                    "speculative" if speculative else "expired", key[:12],
                    worker or "<unparseable claim>", host or "?", age,
                    st.reclaims, cfg.poison_threshold)
        self._emit("reclaimed", index=st.indices[0],
                   item=items[st.indices[0]], reclaims=st.reclaims,
                   worker=worker, host=host, heartbeat_age=age,
                   speculative=speculative)
        if st.reclaims >= cfg.poison_threshold:
            registry.counter("fleet.poisoned").inc()
            self.board.remove_entry(key)
            # Clear the sibling claim slot too, so no third worker picks
            # up a spec we just declared poison.
            self.board.reclaim(key, speculative=not speculative)
            error = (f"poison job: worker lease expired {st.reclaims} "
                     "consecutive time(s) running it; quarantined")
            self._emit("poisoned", index=st.indices[0],
                       item=items[st.indices[0]], deaths=st.reclaims,
                       worker=worker, host=host, error=error)
            return {"payload": None, "error": error, "poisoned": True}
        entry = self.board.read_entry(key) or dict(st.entry)
        entry["reclaims"] = st.reclaims
        entry["not_before"] = time.time() + full_jitter_delay(
            cfg.reclaim_backoff, st.reclaims, key)
        entry["speculate"] = False
        self.board.rewrite_entry(key, entry)
        st.entry = entry
        st.speculated = False
        return None

    def _open_speculation(self, key: str, st: _KeyState, items: list,
                          claim: dict, claim_age: float) -> None:
        st.speculated = True
        get_registry().counter("fleet.speculations").inc()
        entry = self.board.read_entry(key) or dict(st.entry)
        entry["speculate"] = True
        self.board.rewrite_entry(key, entry)
        st.entry = entry
        log.warning("straggler %s: claim by %s is %.2fs old; opening a "
                    "speculative slot", key[:12], claim.get("worker"),
                    claim_age)
        self._emit("speculated", index=st.indices[0],
                   item=items[st.indices[0]], worker=claim.get("worker"),
                   claim_age=claim_age)

    def _decide_from_receipt(self, key: str, st: _KeyState,
                             receipt: dict) -> dict:
        registry = get_registry()
        error = receipt.get("error")
        if error:
            registry.counter("fleet.failed").inc()
            return {
                "payload": None,
                "error": f"fleet worker {receipt.get('worker')}: {error}",
                "timed_out": bool(receipt.get("timed_out")),
            }
        payload = receipt.get("payload")
        if payload is None:
            payload = self.store.get(key)
        if payload is None:
            registry.counter("fleet.failed").inc()
            return {
                "payload": None,
                "error": (f"worker {receipt.get('worker')} published an ok "
                          f"receipt for {key[:12]} but the result is in "
                          "neither the receipt nor the store"),
            }
        if receipt.get("trace"):
            payload["trace"] = receipt["trace"]
        if receipt.get("executed"):
            registry.counter("fleet.completed").inc()
        else:
            registry.counter("fleet.worker_cache_hits").inc()
        if receipt.get("speculative"):
            registry.counter("fleet.speculation_wins").inc()
        return {"payload": payload, "error": None,
                "worker": receipt.get("worker")}

    # -- settling outcomes -----------------------------------------------------------
    def _settle(self, key: str, st: _KeyState, items: list,
                outcomes: list, info: dict) -> None:
        attempts = 1 + st.reclaims
        wall = time.perf_counter() - st.t0
        error = info.get("error")
        for index in st.indices:
            outcomes[index] = JobOutcome(
                index, items[index],
                info.get("payload"), error, attempts, wall,
                timed_out=bool(info.get("timed_out")),
                poisoned=bool(info.get("poisoned")),
            )
            self._emit("finished", index=index, item=items[index],
                       attempts=attempts, wall_seconds=wall, error=error,
                       timed_out=bool(info.get("timed_out")),
                       poisoned=bool(info.get("poisoned")))
        if self.config.cleanup and error is None and key in self.store:
            # The store is the durable record; the entry and receipt are
            # scaffolding. Degraded results (never cached) keep their
            # receipt so a second coordinator can still read them.
            self.board.remove_entry(key)
            self.board.remove_receipt(key)

    def _drain_pending(self, pending: set, state: dict, items: list,
                       outcomes: list) -> None:
        for key in sorted(pending):
            st = state[key]
            claim, age = self.board.claim_info(key)
            if st.posted and age is None:
                # Never claimed: withdraw our own entry so the board
                # doesn't leak work nobody is waiting on. Claimed jobs
                # stay — their workers will still commit to the store.
                self.board.remove_entry(key)
            error = ("drained: fleet batch shut down before this job "
                     "completed")
            wall = time.perf_counter() - st.t0
            for index in st.indices:
                outcomes[index] = JobOutcome(
                    index, items[index], None, error, st.reclaims, wall,
                    drained=True,
                )
                self._emit("finished", index=index, item=items[index],
                           attempts=st.reclaims, wall_seconds=wall,
                           error=error, timed_out=False, drained=True)

    # -- introspection ---------------------------------------------------------------
    def snapshot(self) -> dict:
        """Fleet health for ``/healthz`` and the doctor."""
        board = self.board.snapshot()
        board["spawned_workers"] = len([h for h in self._handles
                                        if h.alive()])
        board["worker_respawns"] = self._respawns
        board["draining"] = self.draining
        if self._host_states:
            board["hosts"] = {
                hs.spec.name: {
                    "kind": hs.spec.kind,
                    "slots": hs.spec.slots,
                    "alive": len([h for h in hs.handles if h.alive()]),
                    "respawns": hs.respawns,
                    "respawn_budget": self.config.max_worker_respawns,
                }
                for hs in self._host_states
            }
        workers, totals = self._merge_worker_stats()
        board["worker_stats"] = workers
        board["fleet_totals"] = totals
        return board

    def _merge_worker_stats(self) -> tuple[dict, dict]:
        """Merge the board's published worker snapshots into a fleet view.

        Returns ``(per_worker, fleet_totals)``. A worker whose snapshot
        has gone stale (no publish within its own horizon) is reported
        ``alive: False`` but *kept* — the last snapshot of a SIGKILLed
        worker is exactly what explains where the fleet's counters came
        from — and its ``fleet.*`` counters still sum into the totals,
        which is why they survive worker death while the worker
        process's own registry does not.
        """
        workers: dict[str, dict] = {}
        totals: dict[str, float] = {}
        for worker_id, doc, age in self.board.list_worker_stats():
            if not isinstance(doc, dict):
                continue
            try:
                interval = float(doc.get("interval") or 1.0)
            except (TypeError, ValueError):
                interval = 1.0
            workers[worker_id] = {
                "alive": age <= max(10.0 * interval, 10.0),
                "age_seconds": age,
                "host": doc.get("host"),
                "pid": doc.get("pid"),
                "published": doc.get("published"),
                "executed": doc.get("executed"),
                "jobs_per_second": doc.get("jobs_per_second"),
            }
            for name, cell in (doc.get("metrics") or {}).items():
                if (isinstance(cell, dict) and cell.get("type") == "counter"
                        and name.startswith("fleet.")):
                    try:
                        totals[name] = (totals.get(name, 0.0)
                                        + float(cell.get("value") or 0.0))
                    except (TypeError, ValueError):
                        continue
        return workers, {name: totals[name] for name in sorted(totals)}
