"""The shared job board: filesystem primitives for the worker fleet.

The board lives under the cache directory (``<cache>/board/``) so that
the coordination substrate and the result substrate share one mount —
any host that can read the content-addressed store can also claim work::

    board/
      queue/<key>.json       job entries (posted O_EXCL; atomically
                             rewritten for reclaim bookkeeping)
      claims/<key>.claim     leases: created O_EXCL by exactly one
                             worker; heartbeat = the file's mtime,
                             refreshed by the holder
      claims/<key>.spec.claim  one optional speculative re-execution slot
      done/<key>.json        receipts (created O_EXCL: first commit wins)
      workers/<id>.json      worker registrations (mtime heartbeat)
      workers/<id>.stats.json  periodic worker telemetry snapshots
                             (atomic rewrite; deliberately NOT removed
                             on deregister so fleet counters survive
                             worker death)
      hosts.json             coordinator-published registry of
                             legitimate fleet host labels (doctor
                             flags registrations from unknown hosts)

Every multi-writer decision point is a single atomic filesystem
operation, mirroring :mod:`repro.service.locking`:

- **exclusive publish** (queue entries, claims, receipts) writes a
  complete temp file and ``os.link``\\ s it onto the final name — the
  link either creates the full document or fails ``FileExistsError``,
  so readers never observe a torn file and two writers cannot both win;
- **reclaim** renames an expired claim aside
  (``<name>.reclaimed-<pid>-<ns>``) before unlinking it, the
  DirectoryLock stale-takeover discipline: two reapers cannot both
  "win" an unlink race, the loser's ``os.replace`` raises
  ``FileNotFoundError`` and it backs off;
- **heartbeats** rewrite the claim document *in place* (``pwrite`` at
  offset 0 with a bumped ``seq`` counter, never creating the file) so a
  beat both refreshes the mtime and advances a monotonic sequence
  number the reaper can read. The sequence is what distinguishes a
  clock-skewed-but-alive host (mtime looks ancient, seq advances) from
  a dead worker (both frozen); opening without ``O_CREAT`` is what
  makes a beat *fencing-safe* — once a reaper renames the claim aside,
  the holder's next beat fails instead of resurrecting the lease.

The board itself holds no results: workers commit through the
checksummed :class:`~repro.service.store.ResultStore` and the receipt
only records *who* finished and whether the mapper actually ran —
which is how a reclaimed job whose original owner finished anyway
becomes a free cache hit instead of a duplicate solve.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from pathlib import Path

from repro.service.store import atomic_write_json
from repro.utils.logconf import get_logger

__all__ = [
    "BOARD_DIR",
    "QUEUE_DIR",
    "CLAIMS_DIR",
    "DONE_DIR",
    "WORKERS_DIR",
    "HOSTS_FILE",
    "ENV_HOST_LABEL",
    "BOARD_SCHEMA_VERSION",
    "exclusive_publish_json",
    "read_json",
    "node_host",
    "JobBoard",
]

log = get_logger("distributed.board")

#: Name of the board directory under a cache root.
BOARD_DIR = "board"
QUEUE_DIR = "queue"
CLAIMS_DIR = "claims"
DONE_DIR = "done"
WORKERS_DIR = "workers"
HOSTS_FILE = "hosts.json"

#: Environment override for this process's fleet host label. Spawners
#: set it (via ``repro worker --host-label``) so a worker's board
#: documents carry the *registry* name of its host, not whatever
#: ``gethostname()`` returns inside a container.
ENV_HOST_LABEL = "REPRO_HOST_LABEL"

#: Version stamped into every board document.
BOARD_SCHEMA_VERSION = 1


def node_host() -> str:
    """The host label this process stamps into board documents."""
    return os.environ.get(ENV_HOST_LABEL) or socket.gethostname()


def exclusive_publish_json(path: Path, doc: dict) -> bool:
    """Atomically publish ``doc`` at ``path`` iff nothing is there yet.

    The document is fully written to a sibling temp file first, then
    hard-linked onto the final name: the link is the atomic arbiter
    (``FileExistsError`` = somebody else won), and a reader can never
    see a partial document. Returns True when this caller won.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".bp-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(doc, handle)
            handle.flush()
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        return True
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass


def read_json(path: Path) -> dict | None:
    """Parse ``path`` as a JSON object, or None (missing/unreadable)."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def _mtime_age(path: Path, now: float | None = None) -> float | None:
    """Seconds since ``path`` was last touched, or None when gone."""
    try:
        mtime = Path(path).stat().st_mtime
    except OSError:
        return None
    return (time.time() if now is None else now) - mtime


class JobBoard:
    """Typed accessors over one board directory tree."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.queue_dir = self.root / QUEUE_DIR
        self.claims_dir = self.root / CLAIMS_DIR
        self.done_dir = self.root / DONE_DIR
        self.workers_dir = self.root / WORKERS_DIR

    @classmethod
    def under_cache(cls, cache_dir: Path | str) -> "JobBoard":
        return cls(Path(cache_dir) / BOARD_DIR)

    def ensure_dirs(self) -> None:
        for d in (self.queue_dir, self.claims_dir, self.done_dir,
                  self.workers_dir):
            d.mkdir(parents=True, exist_ok=True)

    # -- queue entries -------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        return self.queue_dir / f"{key}.json"

    def post(self, key: str, entry: dict) -> bool:
        """Publish a job entry; False when the key is already posted
        (a second coordinator sharing the board joins instead)."""
        return exclusive_publish_json(self.entry_path(key), entry)

    def read_entry(self, key: str) -> dict | None:
        return read_json(self.entry_path(key))

    def rewrite_entry(self, key: str, entry: dict) -> None:
        """Atomically replace a job entry (reclaim/speculation updates).

        Coordination state is rebuildable, so the fsync steps of the
        commit protocol are skipped — atomicity is what matters here.
        """
        atomic_write_json(self.entry_path(key), entry, fsync=False)

    def remove_entry(self, key: str) -> bool:
        try:
            self.entry_path(key).unlink()
        except FileNotFoundError:
            return False
        return True

    def list_queue(self) -> list[str]:
        """Posted job keys, oldest entry first (FIFO-ish fairness)."""
        try:
            paths = list(self.queue_dir.glob("*.json"))
        except OSError:
            return []
        paths.sort(key=lambda p: (_mtime_age(p) is None,
                                  -(_mtime_age(p) or 0.0), p.name))
        return [p.stem for p in paths]

    # -- claims / leases -----------------------------------------------------------
    def claim_path(self, key: str, speculative: bool = False) -> Path:
        suffix = ".spec.claim" if speculative else ".claim"
        return self.claims_dir / f"{key}{suffix}"

    def try_claim(self, key: str, worker_id: str, lease_seconds: float,
                  speculative: bool = False,
                  host: str | None = None) -> Path | None:
        """Take the claim for ``key`` with O_EXCL; None when already held."""
        path = self.claim_path(key, speculative=speculative)
        doc = {
            "kind": "fleet_claim",
            "schema": BOARD_SCHEMA_VERSION,
            "key": key,
            "worker": worker_id,
            "host": host or node_host(),
            "pid": os.getpid(),
            "claimed_unix": time.time(),
            "lease_seconds": float(lease_seconds),
            "speculative": bool(speculative),
            "seq": 0,
        }
        return path if exclusive_publish_json(path, doc) else None

    def heartbeat(self, claim_path: Path,
                  worker_id: str | None = None) -> bool:
        """Refresh a lease; False when the claim was reclaimed (fenced).

        A beat rewrites the claim document in place with an incremented
        ``seq`` and a fresh ``beat_unix`` — the write updates the mtime
        (the cheap liveness signal) *and* advances the sequence number
        (the skew-proof one). Two properties make this fencing-safe
        where an ``os.replace`` rewrite would not be:

        - the file is opened **without O_CREAT**: after a reaper's
          rename-aside, the open fails and the holder learns it lost
          the lease — it can never resurrect the claim file;
        - the document is padded with trailing whitespace (valid JSON)
          rather than truncated, and lands in a single ``pwrite`` at
          offset 0, so a concurrent reader sees either the old or the
          new document, at worst with a torn tail that falls into
          :meth:`claim_info`'s unparseable-claim grace for one beat.

        When ``worker_id`` is given, a claim now owned by someone else
        (speculation slot reassigned, requeue re-claimed) also returns
        False — the caller must treat that as a fence, not a beat.
        Unparseable claim files degrade to a bare ``os.utime`` so a
        legacy or half-written document still carries liveness.
        """
        doc = read_json(claim_path)
        if doc is None:
            # Missing file → fenced; present-but-unparseable → legacy
            # mtime-only beat (claim_info grants the same grace).
            try:
                os.utime(claim_path)
            except OSError:
                return False
            return True
        if worker_id is not None and doc.get("worker") != worker_id:
            return False
        try:
            doc["seq"] = int(doc.get("seq", 0)) + 1
        except (TypeError, ValueError):
            doc["seq"] = 1
        doc["beat_unix"] = time.time()
        data = json.dumps(doc).encode()
        try:
            fd = os.open(claim_path, os.O_WRONLY)
        except OSError:
            return False
        try:
            size = os.fstat(fd).st_size
            if len(data) < size:
                data += b" " * (size - len(data))
            os.pwrite(fd, data, 0)
        except OSError:  # pragma: no cover - mount dropped mid-beat
            return False
        finally:
            os.close(fd)
        return True

    def claim_info(self, key: str, speculative: bool = False,
                   now: float | None = None) -> tuple[dict | None, float | None]:
        """``(claim_doc, heartbeat_age_seconds)`` for a claim file.

        ``(None, None)`` = no claim. ``(None, age)`` = a claim file
        exists but is unparseable (treated as held until its lease-sized
        grace passes — mirroring DirectoryLock's ``stale_grace``).
        """
        path = self.claim_path(key, speculative=speculative)
        age = _mtime_age(path, now=now)
        if age is None:
            return None, None
        return read_json(path), age

    def reclaim(self, key: str, speculative: bool = False) -> bool:
        """Atomically remove an expired claim (rename-aside discipline).

        Returns True when *this* caller reclaimed it; False when the
        claim vanished first (the holder released it, or another reaper
        won the ``os.replace`` race).
        """
        path = self.claim_path(key, speculative=speculative)
        aside = path.with_name(
            f"{path.name}.reclaimed-{os.getpid()}-{time.monotonic_ns()}")
        try:
            os.replace(path, aside)
        except FileNotFoundError:
            return False
        try:
            os.unlink(aside)
        except OSError:  # pragma: no cover - debris is doctor-cleanable
            pass
        return True

    def release_claim(self, claim_path: Path, worker_id: str) -> bool:
        """Drop a claim we hold — unless a reaper already took it over."""
        doc = read_json(claim_path)
        if doc is not None and doc.get("worker") not in (None, worker_id):
            return False
        try:
            os.unlink(claim_path)
        except FileNotFoundError:
            return False
        return True

    # -- receipts ------------------------------------------------------------------
    def receipt_path(self, key: str) -> Path:
        return self.done_dir / f"{key}.json"

    def publish_receipt(self, key: str, receipt: dict) -> bool:
        """First-commit-wins completion record for ``key``."""
        return exclusive_publish_json(self.receipt_path(key), receipt)

    def read_receipt(self, key: str) -> dict | None:
        return read_json(self.receipt_path(key))

    def remove_receipt(self, key: str) -> bool:
        try:
            self.receipt_path(key).unlink()
        except FileNotFoundError:
            return False
        return True

    def record_duplicate(self, key: str, worker_id: str,
                         reason: str = "lost-receipt-race",
                         executed: bool = True,
                         host: str | None = None) -> None:
        """Mark a demoted completion: a receipt this worker did *not* publish.

        Written on a lost first-commit-wins race (``lost-receipt-race``)
        and by a self-fencing worker whose lease was reclaimed while it
        worked (``fenced``). The marker is what lets tests (and
        operators) prove how many duplicate mapper executions the fleet
        actually paid for; the doctor sweeps the files as board debris.
        """
        path = self.done_dir / f"{key}.dup-{worker_id}-{time.monotonic_ns()}"
        try:
            atomic_write_json(path, {
                "kind": "fleet_duplicate_execution",
                "schema": BOARD_SCHEMA_VERSION,
                "key": key,
                "worker": worker_id,
                "host": host or node_host(),
                "reason": reason,
                "executed": bool(executed),
                "time_unix": time.time(),
            }, fsync=False)
        except OSError:  # pragma: no cover - marker is best-effort
            pass

    # -- worker registrations ------------------------------------------------------
    def worker_path(self, worker_id: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "-"
                       for c in worker_id)
        return self.workers_dir / f"{safe}.json"

    def register_worker(self, worker_id: str, heartbeat_interval: float,
                        host: str | None = None, seq: int = 0,
                        started_unix: float | None = None) -> Path:
        path = self.worker_path(worker_id)
        atomic_write_json(path, {
            "kind": "fleet_worker",
            "schema": BOARD_SCHEMA_VERSION,
            "worker": worker_id,
            "host": host or node_host(),
            "pid": os.getpid(),
            "started_unix": time.time() if started_unix is None
            else float(started_unix),
            "heartbeat_interval": float(heartbeat_interval),
            # Monotonic refresh counter — paired against the stats
            # file's seq by the doctor to spot skew debris (a stats
            # snapshot "newer" by mtime but older by sequence).
            "seq": int(seq),
            # Recorded so a doctor on *any* host can age-test the
            # registration without knowing the worker's configuration.
            "stale_after": max(10.0 * float(heartbeat_interval), 10.0),
        }, fsync=False)
        return path

    def deregister_worker(self, worker_id: str) -> None:
        try:
            self.worker_path(worker_id).unlink()
        except FileNotFoundError:
            pass

    def list_workers(self) -> list[tuple[Path, dict | None, float]]:
        """``(path, registration_doc, heartbeat_age)`` per registration."""
        try:
            paths = sorted(
                p
                for p in self.workers_dir.glob("*.json")
                if not p.name.endswith(".stats.json")
            )
        except OSError:
            return []
        out = []
        now = time.time()
        for path in paths:
            age = _mtime_age(path, now=now)
            if age is None:
                continue
            out.append((path, read_json(path), age))
        return out

    # -- worker telemetry ----------------------------------------------------------
    def worker_stats_path(self, worker_id: str) -> Path:
        reg = self.worker_path(worker_id)
        return reg.with_name(f"{reg.stem}.stats.json")

    def publish_worker_stats(self, worker_id: str, stats: dict,
                             host: str | None = None) -> Path:
        """Atomically (re)write one worker's telemetry snapshot.

        Same discipline as registrations (full temp file + rename, no
        fsync — rebuildable diagnostics), but a *separate* file so a
        stats rewrite never perturbs the registration heartbeat, and the
        snapshot outlives :meth:`deregister_worker`: a SIGKILLed
        worker's last published counters stay mergeable into the fleet
        totals.
        """
        path = self.worker_stats_path(worker_id)
        doc = {
            "kind": "fleet_worker_stats",
            "schema": BOARD_SCHEMA_VERSION,
            "worker": worker_id,
            "host": host or node_host(),
            "pid": os.getpid(),
            "time_unix": time.time(),
            **stats,
        }
        try:
            atomic_write_json(path, doc, fsync=False)
        except OSError:  # pragma: no cover - telemetry is best-effort
            pass
        return path

    def read_worker_stats(self, worker_id: str) -> dict | None:
        return read_json(self.worker_stats_path(worker_id))

    def list_worker_stats(self) -> list[tuple[str, dict | None, float]]:
        """``(worker_id, stats_doc, age_seconds)`` per published snapshot."""
        try:
            paths = sorted(self.workers_dir.glob("*.stats.json"))
        except OSError:
            return []
        out = []
        now = time.time()
        for path in paths:
            age = _mtime_age(path, now=now)
            if age is None:
                continue
            doc = read_json(path)
            worker_id = path.name[: -len(".stats.json")]
            if isinstance(doc, dict) and doc.get("worker"):
                worker_id = str(doc["worker"])
            out.append((worker_id, doc, age))
        return out

    def alive_workers(self, now: float | None = None) -> int:
        """Registrations whose heartbeat is fresher than their own
        ``stale_after`` horizon."""
        count = 0
        for _, doc, age in self.list_workers():
            stale_after = 10.0
            if isinstance(doc, dict):
                try:
                    stale_after = float(doc.get("stale_after", 10.0))
                except (TypeError, ValueError):
                    pass
            if age <= stale_after:
                count += 1
        return count

    # -- host registry -------------------------------------------------------------
    @property
    def hosts_path(self) -> Path:
        return self.root / HOSTS_FILE

    def write_host_registry(self, hosts) -> Path:
        """Publish the coordinator's view of legitimate fleet hosts.

        The doctor flags worker registrations whose host label is not in
        this list — a split-brain symptom (a worker from another rig
        writing into this board) worth surfacing even though it cannot
        corrupt results (the store is still first-commit-wins).
        """
        path = self.hosts_path
        atomic_write_json(path, {
            "kind": "fleet_hosts",
            "schema": BOARD_SCHEMA_VERSION,
            "hosts": sorted({str(h) for h in hosts}),
            "written_by": node_host(),
            "time_unix": time.time(),
        }, fsync=False)
        return path

    def read_host_registry(self) -> list[str] | None:
        """Known host labels, or None when no registry was published."""
        doc = read_json(self.hosts_path)
        if not isinstance(doc, dict):
            return None
        hosts = doc.get("hosts")
        if not isinstance(hosts, list):
            return None
        return [str(h) for h in hosts]

    # -- introspection -------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cheap board depths for gauges and ``/healthz``."""
        def count(directory: Path, pattern: str) -> int:
            try:
                return sum(1 for _ in directory.glob(pattern))
            except OSError:
                return 0

        return {
            "queued": count(self.queue_dir, "*.json"),
            "claimed": count(self.claims_dir, "*.claim"),
            "receipts": count(self.done_dir, "*.json"),
            "workers_alive": self.alive_workers(),
        }
