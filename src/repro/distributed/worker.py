"""Fleet worker: claim jobs off the shared board, execute, commit.

``repro worker DIR`` runs one of these against a cache directory. The
loop is deliberately boring::

    scan queue -> claim one entry (O_EXCL) -> execute -> commit to the
    checksummed store -> publish receipt (first commit wins) -> release

While a job runs, a daemon thread refreshes the claim file's mtime
every quarter lease — the coordinator's reaper treats a heartbeat older
than the lease as a dead or wedged worker and reclaims the job. The
worker also keeps a registration file (``board/workers/<id>.json``)
heartbeating so operators and the doctor can tell live fleet members
from debris.

Results always flow through the :class:`~repro.service.store.ResultStore`
*before* the receipt is published. Ordering is the crash-safety
argument: a worker that dies after ``store.put`` but before the receipt
has still made the result durable, so the reclaimed re-execution is a
free cache hit — the re-claiming worker finds the key in the store and
publishes an ``executed=False`` receipt without touching the mapper.

**Self-fencing** closes the partitioned-worker window the store cannot:
before publishing a receipt, a worker whose heartbeat failed (the claim
was reclaimed from under it) — or whose heartbeats stalled so it cannot
*know* — verifies it still owns its lease. A fenced worker demotes its
completion to a duplicate marker (``done/<key>.dup-*`` with
``reason="fenced"``) instead of a receipt, so a live-but-unreachable
worker can never race the reclaiming coordinator into the fleet's
accounting. First-commit-wins in the store already protects the
*result*; fencing protects receipts and counters.

Fault hooks (armed via ``REPRO_FAULTS`` in the worker's environment):

- ``worker-kill-after-claim`` — SIGKILL immediately after a claim is
  taken, the worst-case death (lease held, zero work durable);
- ``heartbeat-stall`` — the heartbeat thread stops refreshing while the
  job keeps running, simulating a wedged-but-alive worker;
- ``worker-partition`` — heartbeat-stall plus the worker treating the
  board as unreachable: it must self-fence before publishing;
- ``clock-skew`` — each beat stamps the claim mtime an hour into the
  past while the sequence number keeps advancing (a host whose clock is
  wrong but whose worker is healthy);
- ``lease-renew-latency`` — every renewal write stalls ``delay``
  seconds first (slow shared mount).
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from pathlib import Path

from repro.errors import JobTimeoutError, ServiceError
from repro.distributed.board import (
    BOARD_SCHEMA_VERSION,
    ENV_HOST_LABEL,
    JobBoard,
    read_json,
)
from repro.observability.metrics import get_registry
from repro.resilience import faultinject
from repro.service.executor import _deadline
from repro.service.jobs import (
    JobRuntime,
    execute_mapping_job,
    mapping_job_from_payload,
)
from repro.service.store import ResultStore
from repro.utils.logconf import get_logger

__all__ = ["default_worker_id", "FleetWorker"]

log = get_logger("distributed.worker")


def default_worker_id() -> str:
    return f"w-{socket.gethostname()}-{os.getpid()}"


class _LeaseState:
    """What a job's heartbeat thread tells its publish path.

    ``fenced`` is set the moment a beat discovers the claim is gone or
    owned by someone else — the worker has *proof* it lost the lease.
    ``partitioned`` means the beats stopped without proof either way
    (injected partition): the publish path must go re-establish the
    truth before it may publish.
    """

    __slots__ = ("fenced", "partitioned")

    def __init__(self):
        self.fenced = threading.Event()
        self.partitioned = False


class FleetWorker:
    """One claim-execute-commit loop over a shared cache directory.

    Parameters
    ----------
    cache_dir:
        The shared cache root; the board lives at ``<cache_dir>/board``.
    worker_id:
        Stable identity written into claims/receipts/registration;
        defaults to ``w-<host>-<pid>``.
    poll:
        Sleep between empty queue scans.
    idle_exit:
        Exit after this many seconds without claiming any work
        (None = run until signalled). Spawned workers use this so an
        abandoned fleet drains itself.
    install_signals:
        Install SIGTERM/SIGINT handlers that finish the current job and
        exit cleanly (only possible from the main thread; in-thread test
        workers call :meth:`stop` instead).
    host_label:
        Fleet host name stamped into this worker's claims, receipts,
        registration, and stats. Spawners thread their registry name
        through ``repro worker --host-label``; defaults to
        ``$REPRO_HOST_LABEL`` then ``gethostname()``.
    once:
        Run a single board scan (claiming and processing at most one
        job) and exit — for debugging claim/fence behavior on a live
        board without a poll loop.
    """

    REGISTRATION_INTERVAL = 1.0

    def __init__(self, cache_dir, worker_id: str | None = None,
                 poll: float = 0.05, idle_exit: float | None = None,
                 install_signals: bool = True,
                 host_label: str | None = None, once: bool = False):
        self.store = ResultStore(cache_dir)
        self.board = JobBoard.under_cache(cache_dir)
        self.worker_id = worker_id or default_worker_id()
        self.poll = float(poll)
        self.idle_exit = idle_exit if idle_exit is None else float(idle_exit)
        self.install_signals = install_signals
        self.host = (host_label or os.environ.get(ENV_HOST_LABEL)
                     or socket.gethostname())
        self.once = bool(once)
        self._stop = threading.Event()
        #: Receipts this worker published (including free cache hits).
        self.published = 0
        #: Jobs this worker actually executed (mapper ran).
        self.executed = 0
        #: Registration refresh counter; paired into the stats snapshot
        #: so the doctor can spot sequence regressions (skew debris).
        self._reg_seq = 0
        self._reg_started: float | None = None
        #: (monotonic time, published) at the last stats publish, for
        #: the throughput figure in the stats snapshot.
        self._stats_prev = (time.monotonic(), 0)

    def stop(self) -> None:
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- main loop -----------------------------------------------------------------
    def run(self) -> int:
        """Serve the board until stopped; returns receipts published."""
        self.board.ensure_dirs()
        self._reg_started = time.time()
        reg_path = self.board.register_worker(
            self.worker_id, self.REGISTRATION_INTERVAL, host=self.host,
            seq=self._reg_seq, started_unix=self._reg_started)
        restore: dict[int, object] = {}
        if (self.install_signals
                and threading.current_thread() is threading.main_thread()):
            def _handler(signum, frame):
                log.warning("worker %s: signal %d, finishing current job",
                            self.worker_id, signum)
                self.stop()

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    restore[sig] = signal.signal(sig, _handler)
                except (ValueError, OSError):  # pragma: no cover - platform
                    pass
        log.info("worker %s serving board at %s", self.worker_id,
                 self.board.root)
        self._publish_stats()  # visible in fleet views before first claim
        last_registration = time.monotonic()
        last_work = time.monotonic()
        try:
            while not self._stop.is_set():
                now = time.monotonic()
                if now - last_registration >= self.REGISTRATION_INTERVAL:
                    self._refresh_registration(reg_path)
                    self._publish_stats()
                    last_registration = now
                worked = self._scan_once()
                if worked:
                    last_work = time.monotonic()
                if self.once:
                    break
                if worked:
                    continue
                if (self.idle_exit is not None
                        and time.monotonic() - last_work >= self.idle_exit):
                    log.info("worker %s idle for %.1fs; exiting",
                             self.worker_id, self.idle_exit)
                    break
                self._stop.wait(self.poll)
        finally:
            # Final stats publish *before* deregistering: the snapshot
            # survives the registration and keeps the fleet totals
            # honest after a clean exit, same as after a SIGKILL.
            self._publish_stats()
            self.board.deregister_worker(self.worker_id)
            for sig, prev in restore.items():
                signal.signal(sig, prev)
        return self.published

    def _publish_stats(self) -> None:
        """Publish this worker's telemetry snapshot to the board.

        Registry caveat: in-thread test workers share the process-wide
        registry, so the ``metrics`` section reflects the *process*, not
        strictly this worker — exact for spawned subprocess fleets,
        which is what the aggregation is for.
        """
        now = time.monotonic()
        prev_t, prev_published = self._stats_prev
        dt = now - prev_t
        rate = (self.published - prev_published) / dt if dt > 0 else 0.0
        self._stats_prev = (now, self.published)
        snapshot = get_registry().snapshot()
        metrics = {
            name: doc
            for name, doc in snapshot.items()
            if name.startswith(("fleet.", "engine.", "store."))
        }
        self.board.publish_worker_stats(self.worker_id, {
            "interval": self.REGISTRATION_INTERVAL,
            "published": self.published,
            "executed": self.executed,
            "jobs_per_second": rate,
            "seq": self._reg_seq,
            "metrics": metrics,
        }, host=self.host)

    def _refresh_registration(self, reg_path: Path) -> None:
        # A full rewrite rather than a bare utime: the refresh bumps the
        # registration's seq counter (skew forensics for the doctor) and
        # transparently re-registers if a doctor --repair (or an
        # operator) swept the file while we were busy.
        self._reg_seq += 1
        self.board.register_worker(
            self.worker_id, self.REGISTRATION_INTERVAL, host=self.host,
            seq=self._reg_seq, started_unix=self._reg_started)

    # -- one scan ------------------------------------------------------------------
    def _scan_once(self) -> bool:
        """Claim and process at most one job; True when work was done."""
        now = time.time()
        for key in self.board.list_queue():
            if self._stop.is_set():
                return False
            entry = self.board.read_entry(key)
            if entry is None:
                continue
            try:
                if float(entry.get("not_before") or 0.0) > now:
                    continue  # reclaim backoff window
            except (TypeError, ValueError):
                pass
            lease = self._lease_of(entry)
            speculative = False
            claim = self.board.try_claim(key, self.worker_id, lease,
                                         host=self.host)
            if claim is None and entry.get("speculate"):
                # The primary holder is a straggler: race it through the
                # one speculative slot. First receipt wins either way.
                claim = self.board.try_claim(key, self.worker_id, lease,
                                             speculative=True,
                                             host=self.host)
                speculative = claim is not None
            if claim is None:
                continue
            if self.board.read_receipt(key) is not None:
                # Finished between our scan and our claim; nothing to do.
                self.board.release_claim(claim, self.worker_id)
                continue
            self._process(key, entry, claim, speculative)
            return True
        return False

    @staticmethod
    def _lease_of(entry: dict) -> float:
        try:
            lease = float(entry.get("lease_seconds") or 10.0)
        except (TypeError, ValueError):
            lease = 10.0
        return max(lease, 0.1)

    # -- executing one claim -------------------------------------------------------
    def _process(self, key: str, entry: dict, claim_path: Path,
                 speculative: bool) -> None:
        # The worst moment to die: claim held, nothing durable yet. The
        # chaos suite arms this to prove the lease reaper recovers.
        faultinject.inject("worker-kill-after-claim")
        registry = get_registry()
        registry.counter("fleet.worker_claims").inc()
        log.info("worker %s claimed %s%s (%s)", self.worker_id, key[:12],
                 " [speculative]" if speculative else "",
                 entry.get("describe", "?"))
        lease = self._lease_of(entry)
        stop_beat = threading.Event()
        state = _LeaseState()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(claim_path, max(lease / 4.0, 0.02), stop_beat, state),
            daemon=True,
        )
        beat.start()
        t0 = time.perf_counter()
        receipt = {
            "kind": "fleet_receipt",
            "schema": BOARD_SCHEMA_VERSION,
            "key": key,
            "worker": self.worker_id,
            "host": self.host,
            "pid": os.getpid(),
            "speculative": speculative,
            "executed": False,
            "error": None,
            "timed_out": False,
            "degraded": False,
            "map_seconds": None,
        }
        executed = False
        try:
            if key in self.store:
                # The original owner of a reclaimed job finished after
                # its lease expired: its commit is durable, so this
                # re-execution is a free cache hit — zero mapper work.
                registry.counter("fleet.worker_cache_hits").inc()
                log.info("worker %s: %s already in store (free cache hit)",
                         self.worker_id, key[:12])
            else:
                job = mapping_job_from_payload(entry["spec"])
                runtime = None
                if entry.get("runtime"):
                    runtime = JobRuntime(**entry["runtime"])
                timeout = entry.get("timeout")
                with _deadline(timeout):
                    payload = execute_mapping_job(job, runtime=runtime)
                executed = True
                self.executed += 1
                receipt["executed"] = True
                receipt["map_seconds"] = payload.get("map_seconds")
                # Span trees are timing-nondeterministic and must never
                # enter the content-addressed store; they ride the
                # receipt home for the coordinator to graft.
                trace_docs = payload.pop("trace", None)
                if trace_docs:
                    receipt["trace"] = trace_docs
                receipt["degraded"] = bool(payload.get("degraded"))
                stored = False
                if not receipt["degraded"]:
                    try:
                        self.store.put(key, payload)
                        stored = True
                    except (OSError, ServiceError) as exc:
                        log.warning("worker %s: could not store %s (%s); "
                                    "shipping payload in the receipt",
                                    self.worker_id, key[:12], exc)
                if not stored:
                    # Degraded (quality-barred from the cache) or the
                    # store refused the commit: the receipt is the only
                    # road home for this result.
                    receipt["payload"] = payload
        except JobTimeoutError as exc:
            receipt["error"] = f"{type(exc).__name__}: {exc}"
            receipt["timed_out"] = True
            registry.counter("fleet.worker_timeouts").inc()
        except ServiceError as exc:
            receipt["error"] = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
            receipt["error"] = f"{type(exc).__name__}: {exc}"
        finally:
            stop_beat.set()
            beat.join(timeout=2.0)
        receipt["wall_seconds"] = time.perf_counter() - t0
        receipt["time_unix"] = time.time()
        if self._fenced(state, claim_path, lease):
            # Self-fence: our lease was (or may have been) reclaimed
            # while we worked. The store commit — if any — still stands
            # (first commit wins), but we must not race the reclaiming
            # coordinator's requeue into the receipt slot: demote to a
            # duplicate marker so fleet accounting stays consistent.
            registry.counter("fleet.worker_fenced").inc()
            if executed:
                registry.counter("fleet.worker_duplicate_executions").inc()
            self.board.record_duplicate(key, self.worker_id,
                                        reason="fenced", executed=executed,
                                        host=self.host)
            log.warning("worker %s: fenced on %s (lease lost%s); demoted "
                        "to duplicate marker", self.worker_id, key[:12],
                        " after executing" if executed else "")
        elif self.board.publish_receipt(key, receipt):
            self.published += 1
        elif executed:
            # Lost the first-commit-wins race *after* running the
            # mapper: record it, so duplicate executions are observable
            # (the chaos suite asserts there are none without
            # speculation in play).
            registry.counter("fleet.worker_duplicate_executions").inc()
            self.board.record_duplicate(key, self.worker_id, host=self.host)
            log.warning("worker %s: lost receipt race for %s after "
                        "executing it", self.worker_id, key[:12])
        self.board.release_claim(claim_path, self.worker_id)

    # -- fencing -------------------------------------------------------------------
    def _fenced(self, state: _LeaseState, claim_path: Path,
                lease: float) -> bool:
        """Must this completion be demoted to a duplicate marker?

        Called with the heartbeat thread already joined, so the claim
        file is quiescent from our side. Proof of reclaim (a failed
        beat) fences outright; a partition (beats stopped, no proof)
        first waits out the reaper — a partitioned worker cannot
        distinguish "coordinator reclaimed me" from "coordinator is
        slow", and publishing before the reaper's horizon passes would
        reopen exactly the race fencing exists to close.
        """
        if state.partitioned:
            self._await_partition_verdict(claim_path, lease)
        if state.fenced.is_set():
            return True
        doc = read_json(claim_path)
        if doc is None:
            # Missing (reclaimed from under us) or unreadable: without
            # positive proof of ownership we must not publish. The
            # result, if committed, resurfaces as a free cache hit.
            return True
        return doc.get("worker") != self.worker_id

    def _await_partition_verdict(self, claim_path: Path,
                                 lease: float) -> None:
        """Wait until the reaper has decided our fate (claim reclaimed)
        or long enough that it never will (we still own the claim after
        its skew-tolerant horizon, ~2 leases, with margin)."""
        deadline = time.monotonic() + 4.0 * max(lease, 0.1) + 1.0
        while time.monotonic() < deadline:
            doc = read_json(claim_path)
            if doc is None or doc.get("worker") != self.worker_id:
                return
            time.sleep(0.05)

    def _heartbeat_loop(self, claim_path: Path, interval: float,
                        stop: threading.Event,
                        state: _LeaseState | None = None) -> None:
        state = state if state is not None else _LeaseState()
        stalled = False
        skewed = False
        while not stop.wait(interval):
            if stalled:
                continue
            if faultinject.fires("worker-partition"):
                # Full partition: the board is unreachable from here on.
                # Unlike a plain stall, the worker *knows* it cannot know
                # whether it still holds the lease — the publish path
                # must self-fence.
                log.warning("worker %s: partitioned from board (injected)",
                            self.worker_id)
                state.partitioned = True
                stalled = True
                continue
            if faultinject.fires("heartbeat-stall"):
                # Wedged-but-alive: the process keeps computing but the
                # lease goes quiet, so the reaper must treat it as dead.
                log.warning("worker %s: heartbeat stalled (injected)",
                            self.worker_id)
                stalled = True
                continue
            delay = faultinject.stall_seconds("lease-renew-latency")
            if delay:
                # Slow shared mount: the renewal itself lags.
                time.sleep(delay)
            if not self.board.heartbeat(claim_path,
                                        worker_id=self.worker_id):
                # Reclaimed from under us (our lease expired). Keep
                # computing — the store commit may still land first and
                # win — but flag the loss so the publish path fences.
                state.fenced.set()
                return
            if skewed or faultinject.fires("clock-skew"):
                # Clock-skewed host: the beat succeeded (seq advanced)
                # but the mtime tells the coordinator we died an hour
                # ago. The seq-aware reaper must not believe it.
                skewed = True
                past = time.time() - 3600.0
                try:
                    os.utime(claim_path, (past, past))
                except OSError:
                    state.fenced.set()
                    return
