"""Submit adapters: how a coordinator launches fleet workers.

The cluster-tools shape: a *spawner* turns "give me a worker against
this cache dir" into a concrete launch mechanism and hands back a
:class:`WorkerHandle` for liveness checks and teardown.

:class:`SubprocessSpawner` is the working implementation — local
``python -m repro.cli worker DIR`` subprocesses, one per fleet slot,
with stdout/stderr teed into ``board/workers/*.log`` for postmortems.
:class:`SshSpawner` carries the same interface shaped for remote hosts;
its :meth:`SshSpawner.command` is real (and tested) so the launch
contract is pinned down, while actually dispatching over SSH stays out
of scope until a multi-host CI rig exists.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.distributed.board import JobBoard
from repro.utils.logconf import get_logger

__all__ = ["WorkerHandle", "SubprocessSpawner", "SshSpawner"]

log = get_logger("distributed.spawn")

_spawn_seq = itertools.count(1)


class WorkerHandle:
    """One launched worker process: liveness, termination, log path."""

    def __init__(self, process: subprocess.Popen, label: str,
                 log_path: Path | None = None):
        self.process = process
        self.label = label
        self.log_path = log_path

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self) -> None:
        """Ask the worker to finish its current job and exit."""
        if self.alive():
            try:
                self.process.send_signal(signal.SIGTERM)
            except OSError:  # pragma: no cover - already gone
                pass

    def stop(self, timeout: float = 5.0) -> int | None:
        """SIGTERM, wait, escalate to SIGKILL; returns the exit code."""
        self.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            log.warning("worker %s ignored SIGTERM for %.1fs; killing",
                        self.label, timeout)
            self.process.kill()
            try:
                return self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                return None


class SubprocessSpawner:
    """Launch fleet workers as local subprocesses of this interpreter."""

    def __init__(self, cache_dir, poll: float = 0.05,
                 idle_exit: float | None = 300.0,
                 env: dict | None = None):
        # Resolved eagerly: the child runs *from* the cache directory, so
        # a relative path handed to the command line would make the
        # worker look for the board inside itself.
        self.cache_dir = Path(cache_dir).resolve()
        self.poll = float(poll)
        self.idle_exit = idle_exit
        self.env = dict(env or {})

    def command(self, worker_id: str | None = None) -> list[str]:
        cmd = [sys.executable, "-m", "repro.cli", "worker",
               str(self.cache_dir), "--poll", f"{self.poll:.6g}"]
        if self.idle_exit is not None:
            cmd += ["--idle-exit", f"{float(self.idle_exit):.6g}"]
        if worker_id:
            cmd += ["--id", worker_id]
        return cmd

    def spawn(self, worker_id: str | None = None) -> WorkerHandle:
        board = JobBoard.under_cache(self.cache_dir)
        board.ensure_dirs()
        label = worker_id or f"spawn-{os.getpid()}-{next(_spawn_seq)}"
        log_path = board.workers_dir / f"{label}.log"
        env = dict(os.environ)
        env.update(self.env)
        # The child runs from the cache directory, so a relative
        # PYTHONPATH (the uninstalled `PYTHONPATH=src` invocation CI
        # uses) must be absolutized against *our* cwd or the worker
        # dies on `import repro` before it can even log why.
        if env.get("PYTHONPATH"):
            env["PYTHONPATH"] = os.pathsep.join(
                os.path.abspath(p) if p else p
                for p in env["PYTHONPATH"].split(os.pathsep))
        log_file = open(log_path, "ab")
        try:
            process = subprocess.Popen(
                self.command(worker_id),
                stdout=log_file,
                stderr=subprocess.STDOUT,
                env=env,
                cwd=str(self.cache_dir),
            )
        finally:
            log_file.close()
        log.info("spawned fleet worker %s (pid %d, log %s)", label,
                 process.pid, log_path)
        return WorkerHandle(process, label, log_path=log_path)


class SshSpawner:
    """The SSH-shaped submit adapter (launch contract only, for now).

    Builds the exact remote command a multi-host deployment would run —
    the cache directory must be a shared mount path valid on the remote
    host. :meth:`spawn` is deliberately unimplemented until there is a
    second host to test against; the interface and command shape are
    what downstream automation codes against.
    """

    def __init__(self, host: str, cache_dir, python: str = "python3",
                 poll: float = 0.05, idle_exit: float | None = 300.0,
                 ssh_options: tuple = ("-o", "BatchMode=yes")):
        self.host = host
        self.cache_dir = str(cache_dir)
        self.python = python
        self.poll = float(poll)
        self.idle_exit = idle_exit
        self.ssh_options = tuple(ssh_options)

    def command(self, worker_id: str | None = None) -> list[str]:
        remote = [self.python, "-m", "repro.cli", "worker", self.cache_dir,
                  "--poll", f"{self.poll:.6g}"]
        if self.idle_exit is not None:
            remote += ["--idle-exit", f"{float(self.idle_exit):.6g}"]
        if worker_id:
            remote += ["--id", worker_id]
        return ["ssh", *self.ssh_options, self.host, *remote]

    def spawn(self, worker_id: str | None = None) -> WorkerHandle:
        raise NotImplementedError(
            "SshSpawner pins the launch contract (see command()); actual "
            "SSH dispatch needs a multi-host test rig"
        )
