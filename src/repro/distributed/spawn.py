"""Submit adapters: how a coordinator launches fleet workers.

The cluster-tools shape: a *spawner* turns "give me a worker against
this cache dir" into a concrete launch mechanism and hands back a
:class:`WorkerHandle` for liveness checks and teardown.

Three working implementations share the shape:

- :class:`SubprocessSpawner` — local ``python -m repro.cli worker DIR``
  subprocesses, one per fleet slot, stdout/stderr teed into
  ``board/workers/*.log`` for postmortems.
- :class:`SshSpawner` — the same worker on a remote host, dispatched
  through a :class:`~repro.distributed.transport.SshTransport`. The
  local ssh client process proxies liveness and carries the remote log
  home; the remote pid is recovered from a marker line the launch
  script prints (``::repro-worker-pid N``) so SIGTERM/SIGKILL
  escalation reaches the *worker*, not just the ssh client.
- :class:`SlurmSpawner` — ``srun`` submission reusing the identical
  remote command contract; srun forwards signals and proxies exit
  status itself, so the plain local handle suffices.

:func:`build_spawner` maps a :class:`HostSpec` (``[kind:]name[*slots]``
strings accepted) onto the right adapter — this is what
``DistributedConfig.hosts`` feeds through.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import re
import signal
import shlex
import subprocess
import sys
from pathlib import Path

from repro.distributed.board import JobBoard
from repro.distributed.transport import LocalTransport, SshTransport, Transport
from repro.utils.logconf import get_logger

__all__ = [
    "WorkerHandle", "RemoteWorkerHandle", "SubprocessSpawner",
    "SshSpawner", "SlurmSpawner", "HostSpec", "build_spawner",
    "PID_MARKER",
]

log = get_logger("distributed.spawn")

_spawn_seq = itertools.count(1)

#: Marker line a transport-launched worker script prints before exec'ing
#: the worker, so the handle can address signals to the remote pid.
PID_MARKER = "::repro-worker-pid"


class WorkerHandle:
    """One launched worker process: liveness, termination, log path."""

    def __init__(self, process: subprocess.Popen, label: str,
                 log_path: Path | None = None, host: str = "local"):
        self.process = process
        self.label = label
        self.log_path = log_path
        self.host = host

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self) -> None:
        """Ask the worker to finish its current job and exit."""
        if self.alive():
            try:
                self.process.send_signal(signal.SIGTERM)
            except OSError:  # pragma: no cover - already gone
                pass

    def stop(self, timeout: float = 5.0) -> int | None:
        """SIGTERM, wait, escalate to SIGKILL; returns the exit code."""
        self.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            log.warning("worker %s ignored SIGTERM for %.1fs; killing",
                        self.label, timeout)
            self.process.kill()
            try:
                return self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                return None


class RemoteWorkerHandle(WorkerHandle):
    """A worker behind a transport: the local process is only a proxy.

    SIGTERM/SIGKILL on the local ssh client would orphan the remote
    worker mid-lease; signals must travel through the transport to the
    remote pid, which the launch script printed as a ``::repro-worker-pid``
    marker into the teed log. Local signalling remains the fallback for
    a transport that never got far enough to print the marker.
    """

    def __init__(self, process: subprocess.Popen, label: str,
                 transport: Transport, log_path: Path | None = None):
        super().__init__(process, label, log_path=log_path,
                         host=transport.host)
        self.transport = transport
        self._remote_pid: int | None = None

    def remote_pid(self) -> int | None:
        """Pid of the worker on the remote host, parsed from its log."""
        if self._remote_pid is None and self.log_path is not None:
            try:
                text = self.log_path.read_text(errors="replace")
            except OSError:
                return None
            match = re.search(rf"^{re.escape(PID_MARKER)} (\d+)\s*$",
                              text, re.MULTILINE)
            if match:
                self._remote_pid = int(match.group(1))
        return self._remote_pid

    def _signal_remote(self, sig: int) -> bool:
        pid = self.remote_pid()
        if pid is None:
            return False
        return self.transport.run(f"kill -{int(sig)} {pid}")

    def terminate(self) -> None:
        if not self.alive():
            return
        if not self._signal_remote(signal.SIGTERM):
            super().terminate()

    def stop(self, timeout: float = 5.0) -> int | None:
        self.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            log.warning("remote worker %s ignored SIGTERM for %.1fs; "
                        "killing", self.label, timeout)
            self._signal_remote(signal.SIGKILL)
            self.process.kill()
            try:
                return self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                return None


def _prepare_env(extra: dict) -> dict:
    env = dict(os.environ)
    env.update(extra)
    # The child runs from the cache directory, so a relative
    # PYTHONPATH (the uninstalled `PYTHONPATH=src` invocation CI
    # uses) must be absolutized against *our* cwd or the worker
    # dies on `import repro` before it can even log why.
    if env.get("PYTHONPATH"):
        env["PYTHONPATH"] = os.pathsep.join(
            os.path.abspath(p) if p else p
            for p in env["PYTHONPATH"].split(os.pathsep))
    return env


def _launch(argv: list[str], cache_dir: Path, label: str,
            env: dict) -> tuple[subprocess.Popen, Path]:
    """Start one worker-carrying process with its log teed to the board."""
    board = JobBoard.under_cache(cache_dir)
    board.ensure_dirs()
    log_path = board.workers_dir / f"{label}.log"
    log_file = open(log_path, "ab")
    try:
        process = subprocess.Popen(
            argv,
            stdout=log_file,
            stderr=subprocess.STDOUT,
            env=_prepare_env(env),
            cwd=str(cache_dir),
        )
    finally:
        log_file.close()
    return process, log_path


class SubprocessSpawner:
    """Launch fleet workers as local subprocesses of this interpreter."""

    def __init__(self, cache_dir, poll: float = 0.05,
                 idle_exit: float | None = 300.0,
                 env: dict | None = None,
                 host_label: str | None = None):
        # Resolved eagerly: the child runs *from* the cache directory, so
        # a relative path handed to the command line would make the
        # worker look for the board inside itself.
        self.cache_dir = Path(cache_dir).resolve()
        self.poll = float(poll)
        self.idle_exit = idle_exit
        self.env = dict(env or {})
        self.host_label = host_label

    def command(self, worker_id: str | None = None) -> list[str]:
        cmd = [sys.executable, "-m", "repro.cli", "worker",
               str(self.cache_dir), "--poll", f"{self.poll:.6g}"]
        if self.idle_exit is not None:
            cmd += ["--idle-exit", f"{float(self.idle_exit):.6g}"]
        if worker_id:
            cmd += ["--id", worker_id]
        if self.host_label:
            cmd += ["--host-label", self.host_label]
        return cmd

    def spawn(self, worker_id: str | None = None) -> WorkerHandle:
        label = worker_id or f"spawn-{os.getpid()}-{next(_spawn_seq)}"
        process, log_path = _launch(self.command(worker_id),
                                    self.cache_dir, label, self.env)
        log.info("spawned fleet worker %s (pid %d, log %s)", label,
                 process.pid, log_path)
        return WorkerHandle(process, label, log_path=log_path,
                            host=self.host_label or "local")


class SshSpawner:
    """Launch fleet workers on a remote host over SSH.

    The cache directory must be a shared mount path valid on the remote
    host. The launch travels as one remote shell command: exported env
    (fault plans ride this in tests), the pid marker, then ``exec`` into
    the worker so the printed pid *is* the worker's pid. The local ssh
    client is the liveness proxy and log pipe; :class:`RemoteWorkerHandle`
    routes signal escalation back through the transport.
    """

    def __init__(self, host: str, cache_dir, python: str = "python3",
                 poll: float = 0.05, idle_exit: float | None = 300.0,
                 ssh_options: tuple = ("-o", "BatchMode=yes"),
                 env: dict | None = None, ssh_command=None):
        self.host = host
        self.cache_dir = str(cache_dir)
        self.python = python
        self.poll = float(poll)
        self.idle_exit = idle_exit
        self.ssh_options = tuple(ssh_options)
        self.env = dict(env or {})
        self.transport = SshTransport(host, ssh_command=ssh_command,
                                      options=self.ssh_options)

    def remote_command(self, worker_id: str | None = None) -> list[str]:
        """The worker argv as it runs on the remote host."""
        remote = [self.python, "-m", "repro.cli", "worker", self.cache_dir,
                  "--poll", f"{self.poll:.6g}"]
        if self.idle_exit is not None:
            remote += ["--idle-exit", f"{float(self.idle_exit):.6g}"]
        if worker_id:
            remote += ["--id", worker_id]
        remote += ["--host-label", self.host]
        return remote

    def command(self, worker_id: str | None = None) -> list[str]:
        return ["ssh", *self.ssh_options, self.host,
                *self.remote_command(worker_id)]

    def _launch_script(self, worker_id: str | None) -> str:
        parts = [
            f"export {key}={shlex.quote(str(value))}"
            for key, value in sorted(self.env.items())
        ]
        parts.append(f'echo "{PID_MARKER} $$"')
        parts.append("exec " + shlex.join(self.remote_command(worker_id)))
        return "; ".join(parts)

    def spawn(self, worker_id: str | None = None) -> RemoteWorkerHandle:
        label = worker_id or f"{self.host}-{os.getpid()}-{next(_spawn_seq)}"
        argv = self.transport.launch_argv(self._launch_script(worker_id))
        # Env rides inside the remote script, not the local process env
        # — ssh does not forward arbitrary variables.
        process, log_path = _launch(argv, Path(self.cache_dir).resolve(),
                                    label, env={})
        log.info("spawned remote fleet worker %s on %s (local pid %d, "
                 "log %s)", label, self.host, process.pid, log_path)
        return RemoteWorkerHandle(process, label, self.transport,
                                  log_path=log_path)


class SlurmSpawner:
    """Launch fleet workers as SLURM job steps via ``srun``.

    Reuses the exact remote command contract of :class:`SshSpawner`.
    ``srun`` itself forwards SIGTERM/SIGKILL to the step and mirrors its
    exit status, so the plain local :class:`WorkerHandle` is the right
    supervisor — no remote-pid bookkeeping needed. The worker's own
    ``gethostname()`` labels its claims with the allocated node.
    """

    def __init__(self, cache_dir, python: str = "python3",
                 poll: float = 0.05, idle_exit: float | None = 300.0,
                 partition: str | None = None,
                 srun_options: tuple = (), env: dict | None = None):
        self.cache_dir = str(cache_dir)
        self.python = python
        self.poll = float(poll)
        self.idle_exit = idle_exit
        self.partition = partition
        self.srun_options = tuple(srun_options)
        self.env = dict(env or {})

    def remote_command(self, worker_id: str | None = None) -> list[str]:
        remote = [self.python, "-m", "repro.cli", "worker", self.cache_dir,
                  "--poll", f"{self.poll:.6g}"]
        if self.idle_exit is not None:
            remote += ["--idle-exit", f"{float(self.idle_exit):.6g}"]
        if worker_id:
            remote += ["--id", worker_id]
        return remote

    def command(self, worker_id: str | None = None) -> list[str]:
        cmd = ["srun", "--nodes=1", "--ntasks=1", "--unbuffered"]
        if self.partition:
            cmd += ["--partition", self.partition]
        cmd += [*self.srun_options, *self.remote_command(worker_id)]
        return cmd

    def spawn(self, worker_id: str | None = None) -> WorkerHandle:
        label = worker_id or f"slurm-{os.getpid()}-{next(_spawn_seq)}"
        process, log_path = _launch(self.command(worker_id),
                                    Path(self.cache_dir).resolve(),
                                    label, self.env)
        log.info("spawned slurm fleet worker %s (srun pid %d, log %s)",
                 label, process.pid, log_path)
        return WorkerHandle(process, label, log_path=log_path, host="slurm")


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """One fleet host: where workers run and how many.

    Parsed from ``[kind:]name[*slots]`` — ``"local*2"``, ``"ssh:node7"``,
    ``"node7*4"`` (bare names default to ssh unless the name is
    ``local``), ``"slurm:gpu*8"`` (the name becomes the partition,
    ``-`` meaning the cluster default).
    """

    name: str
    slots: int = 1
    kind: str = "ssh"
    python: str = "python3"

    KINDS = ("local", "ssh", "slurm")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown host kind {self.kind!r} "
                             f"(expected one of {self.KINDS})")
        if self.slots < 1:
            raise ValueError(f"host {self.name!r}: slots must be >= 1, "
                             f"got {self.slots}")

    @classmethod
    def parse(cls, spec) -> "HostSpec":
        if isinstance(spec, cls):
            return spec
        text = str(spec).strip()
        kind = None
        if ":" in text:
            kind, text = text.split(":", 1)
            kind = kind.strip().lower()
        slots = 1
        if "*" in text:
            text, raw_slots = text.rsplit("*", 1)
            try:
                slots = int(raw_slots)
            except ValueError:
                raise ValueError(
                    f"host spec {spec!r}: slot count {raw_slots!r} is not "
                    "an integer") from None
        name = text.strip()
        if not name:
            raise ValueError(f"host spec {spec!r} has no host name")
        if kind is None:
            kind = "local" if name == "local" else "ssh"
        return cls(name=name, slots=slots, kind=kind)


def build_spawner(spec: HostSpec, cache_dir, *, poll: float = 0.05,
                  idle_exit: float | None = 300.0,
                  env: dict | None = None, python: str | None = None):
    """Instantiate the submit adapter a :class:`HostSpec` calls for."""
    python = python or spec.python
    if spec.kind == "local":
        return SubprocessSpawner(
            cache_dir, poll=poll, idle_exit=idle_exit, env=env,
            host_label=spec.name if spec.name != "local" else None)
    if spec.kind == "ssh":
        return SshSpawner(spec.name, cache_dir, python=python, poll=poll,
                          idle_exit=idle_exit, env=env)
    if spec.kind == "slurm":
        partition = None if spec.name in ("-", "default") else spec.name
        return SlurmSpawner(cache_dir, python=python, poll=poll,
                            idle_exit=idle_exit, partition=partition,
                            env=env)
    raise ValueError(f"unknown host kind {spec.kind!r}")  # pragma: no cover
