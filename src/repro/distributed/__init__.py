"""Fault-tolerant distributed execution of mapping batches.

A shared **job board** under the cache directory (claim files with
O_EXCL + lease heartbeats, receipts with first-commit-wins publish), a
**coordinator** that reaps expired leases back onto the queue with the
DirectoryLock rename-aside discipline, and **workers** (``repro worker
DIR``) that claim, execute and commit through the checksummed result
store. See ``docs/distributed.md`` for semantics and the operator
runbook.
"""

from repro.distributed.board import (
    BOARD_DIR,
    BOARD_SCHEMA_VERSION,
    JobBoard,
    exclusive_publish_json,
)
from repro.distributed.coordinator import DistributedConfig, DistributedExecutor
from repro.distributed.spawn import SshSpawner, SubprocessSpawner, WorkerHandle
from repro.distributed.worker import FleetWorker, default_worker_id

__all__ = [
    "BOARD_DIR",
    "BOARD_SCHEMA_VERSION",
    "JobBoard",
    "exclusive_publish_json",
    "DistributedConfig",
    "DistributedExecutor",
    "SubprocessSpawner",
    "SshSpawner",
    "WorkerHandle",
    "FleetWorker",
    "default_worker_id",
]
