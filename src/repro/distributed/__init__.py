"""Fault-tolerant distributed execution of mapping batches.

A shared **job board** under the cache directory (claim files with
O_EXCL + lease heartbeats carrying a monotonic sequence number,
receipts with first-commit-wins publish), a **coordinator** that reaps
expired leases back onto the queue with the DirectoryLock rename-aside
discipline (skew-aware: a stale mtime with an advancing seq is a live
worker on a bad clock, not a corpse), and **workers** (``repro worker
DIR``) that claim, execute, commit through the checksummed result
store, and *self-fence* — demoting to a duplicate marker instead of a
receipt when their lease was reclaimed mid-job. Spawners dispatch
workers locally, over SSH (through a pluggable transport, so the full
remote lifecycle runs in CI against a fake-ssh shim), or via SLURM
``srun``. See ``docs/distributed.md`` for semantics and the operator
runbook.
"""

from repro.distributed.board import (
    BOARD_DIR,
    BOARD_SCHEMA_VERSION,
    ENV_HOST_LABEL,
    JobBoard,
    exclusive_publish_json,
    node_host,
)
from repro.distributed.coordinator import DistributedConfig, DistributedExecutor
from repro.distributed.spawn import (
    HostSpec,
    RemoteWorkerHandle,
    SlurmSpawner,
    SshSpawner,
    SubprocessSpawner,
    WorkerHandle,
    build_spawner,
)
from repro.distributed.transport import LocalTransport, SshTransport, Transport
from repro.distributed.worker import FleetWorker, default_worker_id

__all__ = [
    "BOARD_DIR",
    "BOARD_SCHEMA_VERSION",
    "ENV_HOST_LABEL",
    "JobBoard",
    "exclusive_publish_json",
    "node_host",
    "DistributedConfig",
    "DistributedExecutor",
    "SubprocessSpawner",
    "SshSpawner",
    "SlurmSpawner",
    "RemoteWorkerHandle",
    "WorkerHandle",
    "HostSpec",
    "build_spawner",
    "Transport",
    "LocalTransport",
    "SshTransport",
    "FleetWorker",
    "default_worker_id",
]
