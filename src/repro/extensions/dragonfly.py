"""Dragonfly topology, minimal routing, and hierarchical mapper.

The canonical dragonfly (Kim et al., ISCA 2008): ``g`` groups of ``r``
routers; routers within a group are fully connected by *local* links; each
router owns ``p`` compute hosts and ``h`` *global* links; the groups form
a complete graph over global links, router ``peer_index // h`` of a group
handling its ``peer_index``-th peer group.

Minimal routing host a -> host b takes at most local-global-local:
source router, local hop to the router holding the global link toward the
destination group, global hop, local hop to the destination router.

Mapping on a dragonfly is dominated by two cuts: host->router->group
clustering controls local-link and (critically) global-link pressure —
groups pairs share a *single* global link, the network's scarcest
resource. :class:`DragonflyMapper` clusters hierarchically along exactly
those boundaries (the fat-tree argument of Section VI, applied twice).
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.core.clustering import cluster_fixed_size
from repro.errors import ConfigError, TopologyError
from repro.mapping.mapping import Mapping
from repro.utils.validation import check_positive_int

__all__ = ["Dragonfly", "DragonflyRouter", "DragonflyMapper"]


class Dragonfly:
    """A canonical dragonfly network.

    Parameters
    ----------
    groups:
        Number of groups ``g`` (must satisfy ``g <= r * h + 1``).
    routers_per_group:
        Routers per group ``r`` (all-to-all local links).
    hosts_per_router:
        Compute hosts per router ``p``.
    global_per_router:
        Global links per router ``h``.
    """

    def __init__(
        self,
        groups: int,
        routers_per_group: int,
        hosts_per_router: int,
        global_per_router: int = 1,
    ):
        self.groups = check_positive_int(groups, "groups")
        self.routers_per_group = check_positive_int(
            routers_per_group, "routers_per_group"
        )
        self.hosts_per_router = check_positive_int(
            hosts_per_router, "hosts_per_router"
        )
        self.global_per_router = check_positive_int(
            global_per_router, "global_per_router"
        )
        if self.groups > self.routers_per_group * self.global_per_router + 1:
            raise TopologyError(
                f"{groups} groups need r*h >= g-1 global links per group "
                f"(r={routers_per_group}, h={global_per_router})"
            )
        if self.groups < 2:
            raise TopologyError("dragonfly needs >= 2 groups")
        self.num_routers = self.groups * self.routers_per_group
        self.num_nodes = self.num_routers * self.hosts_per_router  # hosts
        # Channel slot layout:
        #   terminal:  2 per host (host->router, router->host)
        #   local:     r*(r-1) directed pairs per group
        #   global:    g*(g-1) directed group pairs
        self._n_terminal = 2 * self.num_nodes
        self._n_local = self.groups * self.routers_per_group * (
            self.routers_per_group - 1
        )
        self._n_global = self.groups * (self.groups - 1)
        self.num_channel_slots = self._n_terminal + self._n_local + self._n_global
        self.channel_valid = np.ones(self.num_channel_slots, dtype=bool)
        # local pair indexing within a group: (a, b), a != b ->
        # a * (r-1) + (b if b < a else b - 1)
        self._r = self.routers_per_group

    # -- host/router/group decomposition -----------------------------------------
    def router_of(self, hosts) -> np.ndarray:
        return np.asarray(hosts, dtype=np.int64) // self.hosts_per_router

    def group_of_router(self, routers) -> np.ndarray:
        return np.asarray(routers, dtype=np.int64) // self.routers_per_group

    def group_of(self, hosts) -> np.ndarray:
        return self.group_of_router(self.router_of(hosts))

    def global_router(self, src_group, dst_group) -> np.ndarray:
        """Router (global id) in ``src_group`` holding the global link to
        ``dst_group``."""
        src_group = np.asarray(src_group, dtype=np.int64)
        dst_group = np.asarray(dst_group, dtype=np.int64)
        peer_index = np.where(dst_group > src_group, dst_group - 1, dst_group)
        local_router = peer_index // self.global_per_router
        if np.any(local_router >= self.routers_per_group):
            raise TopologyError("global link assignment out of range")
        return src_group * self.routers_per_group + local_router

    # -- channel slots ------------------------------------------------------------
    def terminal_slot(self, hosts, direction) -> np.ndarray:
        """direction 0 = injection (host->router), 1 = ejection."""
        return np.asarray(hosts, dtype=np.int64) * 2 + direction

    def local_slot(self, src_routers, dst_routers) -> np.ndarray:
        src = np.asarray(src_routers, dtype=np.int64)
        dst = np.asarray(dst_routers, dtype=np.int64)
        g = self.group_of_router(src)
        if np.any(g != self.group_of_router(dst)) or np.any(src == dst):
            raise TopologyError("local links connect distinct same-group routers")
        a = src % self._r
        b = dst % self._r
        pair = a * (self._r - 1) + np.where(b < a, b, b - 1)
        return self._n_terminal + g * self._r * (self._r - 1) + pair

    def global_slot(self, src_group, dst_group) -> np.ndarray:
        sg = np.asarray(src_group, dtype=np.int64)
        dg = np.asarray(dst_group, dtype=np.int64)
        if np.any(sg == dg):
            raise TopologyError("global links connect distinct groups")
        pair = sg * (self.groups - 1) + np.where(dg < sg, dg, dg - 1)
        return self._n_terminal + self._n_local + pair

    # -- distances ------------------------------------------------------------------
    def hop_distance(self, a, b) -> np.ndarray:
        """Router hops of the minimal route (terminal hops excluded)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        ra, rb = self.router_of(a), self.router_of(b)
        ga, gb = self.group_of_router(ra), self.group_of_router(rb)
        same_router = ra == rb
        same_group = ga == gb
        gsrc = self.global_router(ga, np.where(same_group, (ga + 1) % self.groups, gb))
        gdst = self.global_router(gb, np.where(same_group, (gb + 1) % self.groups, ga))
        inter = 1 + (ra != gsrc).astype(np.int64) + (rb != gdst).astype(np.int64)
        return np.where(
            a == b, 0, np.where(same_router, 0, np.where(same_group, 1, inter))
        )

    def describe(self) -> str:
        return (
            f"dragonfly g={self.groups} r={self.routers_per_group} "
            f"p={self.hosts_per_router} h={self.global_per_router} "
            f"({self.num_nodes} hosts)"
        )

    def __repr__(self) -> str:
        return (
            f"Dragonfly(groups={self.groups}, "
            f"routers_per_group={self.routers_per_group}, "
            f"hosts_per_router={self.hosts_per_router}, "
            f"global_per_router={self.global_per_router})"
        )


class DragonflyRouter:
    """Minimal (local-global-local) routing with per-link load reporting."""

    name = "dragonfly-minimal"

    def __init__(self, topology: Dragonfly):
        self.topology = topology

    def link_loads(self, srcs, dsts, vols, out: np.ndarray | None = None):
        df = self.topology
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        if out is None:
            out = np.zeros(df.num_channel_slots)
        offhost = srcs != dsts
        if not offhost.any():
            return out
        srcs, dsts, vols = srcs[offhost], dsts[offhost], vols[offhost]
        # Terminal links: every off-host flow injects and ejects once.
        np.add.at(out, df.terminal_slot(srcs, 0), vols)
        np.add.at(out, df.terminal_slot(dsts, 1), vols)

        ra, rb = df.router_of(srcs), df.router_of(dsts)
        ga, gb = df.group_of_router(ra), df.group_of_router(rb)
        offrouter = ra != rb
        same_group = (ga == gb) & offrouter
        if same_group.any():
            np.add.at(out, df.local_slot(ra[same_group], rb[same_group]),
                      vols[same_group])
        inter = ga != gb
        if inter.any():
            s_r, d_r = ra[inter], rb[inter]
            s_g, d_g = ga[inter], gb[inter]
            v = vols[inter]
            gsrc = df.global_router(s_g, d_g)
            gdst = df.global_router(d_g, s_g)
            np.add.at(out, df.global_slot(s_g, d_g), v)
            first = s_r != gsrc
            if first.any():
                np.add.at(out, df.local_slot(s_r[first], gsrc[first]), v[first])
            last = d_r != gdst
            if last.any():
                np.add.at(out, df.local_slot(gdst[last], d_r[last]), v[last])
        return out

    def max_channel_load(self, srcs, dsts, vols) -> float:
        loads = self.link_loads(srcs, dsts, vols)
        return float(loads.max()) if loads.size else 0.0


class DragonflyMapper:
    """Hierarchical clustering mapper: tasks -> groups -> routers -> hosts."""

    name = "dragonfly-hierarchical"

    def __init__(self, topology: Dragonfly):
        if not isinstance(topology, Dragonfly):
            raise ConfigError("DragonflyMapper requires a Dragonfly topology")
        self.topology = topology

    def map(self, graph: CommGraph) -> Mapping:
        df = self.topology
        if graph.num_tasks % df.num_nodes:
            raise ConfigError(
                f"{graph.num_tasks} tasks do not divide over "
                f"{df.num_nodes} hosts"
            )
        concentration = graph.num_tasks // df.num_nodes
        level = cluster_fixed_size(graph, concentration)
        current = level.graph  # one cluster per host
        host_of_cluster = np.zeros(current.num_tasks, dtype=np.int64)

        # tasks -> groups.
        per_group = current.num_tasks // df.groups
        group_level = cluster_fixed_size(current, per_group)
        for g in range(df.groups):
            members = np.flatnonzero(group_level.labels == g)
            sub = current.subgraph(members)
            # group -> routers.
            per_router = len(members) // df.routers_per_group
            router_level = cluster_fixed_size(sub, per_router)
            for r in range(df.routers_per_group):
                sel = members[np.flatnonzero(router_level.labels == r)]
                router = g * df.routers_per_group + r
                base = router * df.hosts_per_router
                host_of_cluster[sel] = base + np.arange(len(sel))
        return Mapping(df, host_of_cluster[level.labels],
                       tasks_per_node=concentration)
