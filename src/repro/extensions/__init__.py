"""Section VI extensions: RAHTM's ideas beyond the torus.

The paper argues (Section VI, "Applicability to other topologies") that
RAHTM's ingredients — optimal leaf sub-problems, MCL-driven incremental
merging, candidate pruning — carry to any partitionable topology, with
only the leaf structure and the minimal-routing definition changing. This
package demonstrates that claim end to end on two non-torus networks:

- :mod:`repro.extensions.fattree` — k-ary (full or slimmed) fat-trees.
  Subtrees at every level are interchangeable (tree automorphisms), so the
  orientation search degenerates and mapping reduces to *hierarchical
  clustering* that minimizes the volume crossing each level — which the
  :class:`FatTreeMapper` performs exactly in that spirit.
- :mod:`repro.extensions.dragonfly` — canonical dragonfly (all-to-all
  local groups, one global link per group pair). Minimal routing is the
  3-hop local-global-local path; the :class:`DragonflyMapper` clusters
  hierarchically (hosts -> routers -> groups).

Both provide the same ``link_loads``-style evaluation interface as the
torus routers, so :func:`repro.metrics.evaluate_mapping` and the
:class:`repro.mapping.Mapping` container work unchanged.
"""

from repro.extensions.fattree import FatTree, FatTreeRouter, FatTreeMapper
from repro.extensions.dragonfly import (
    Dragonfly,
    DragonflyRouter,
    DragonflyMapper,
)

__all__ = [
    "FatTree",
    "FatTreeRouter",
    "FatTreeMapper",
    "Dragonfly",
    "DragonflyRouter",
    "DragonflyMapper",
]
