"""Fat-tree topology, routing model, and hierarchical mapper.

A ``k``-ary fat-tree with ``L`` switch levels connects ``k^L`` compute
nodes (leaves). The *bundle* between a depth-``d`` subtree and its parent
carries ``multiplicity(d)`` parallel physical links: ``k^(L-d)`` for the
full (constant-bisection) fat-tree, 1 for a plain tree, or anything in
between via a slimming factor.

Routing is up-down through the least common ancestor, with each flow
spread uniformly over a bundle's parallel links (the ECMP/D-mod-K
behaviour of real fat-trees); reported channel loads are per *physical
link* (bundle load / multiplicity), making MCL directly comparable to the
torus models.

Mapping insight (paper Section VI): every permutation of a node's subtrees
is an automorphism of the fat-tree, so phase-3's orientation search is
vacuous here and optimal mapping reduces to *hierarchical clustering* —
minimize the volume crossing each level, most aggressively at the top
where bundles are the scarcest per-flow resource (or cheapest, for the
full fat-tree). :class:`FatTreeMapper` implements exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.core.clustering import cluster_fixed_size
from repro.errors import ConfigError, TopologyError
from repro.mapping.mapping import Mapping
from repro.utils.validation import check_positive_int

__all__ = ["FatTree", "FatTreeRouter", "FatTreeMapper"]

DIR_UP = 0
DIR_DOWN = 1


class FatTree:
    """A k-ary fat-tree.

    Parameters
    ----------
    arity:
        Children per switch (k).
    levels:
        Switch levels (L); ``k^L`` leaves.
    slimming:
        Bundle multiplicity shrink per level going *up*: multiplicity of
        the bundle above a depth-``d`` subtree is
        ``max(1, round((arity / slimming) ** (levels - d)))``. ``slimming=1``
        is the full fat-tree (multiplicity = leaves below), ``slimming=arity``
        a plain tree (multiplicity 1).
    """

    def __init__(self, arity: int, levels: int, slimming: float = 1.0):
        self.arity = check_positive_int(arity, "arity")
        self.levels = check_positive_int(levels, "levels")
        if arity < 2:
            raise TopologyError("fat-tree arity must be >= 2")
        if slimming < 1.0 or slimming > arity:
            raise TopologyError(
                f"slimming must be in [1, arity], got {slimming}"
            )
        self.slimming = float(slimming)
        self.num_leaves = arity**levels
        self.num_nodes = self.num_leaves  # compute nodes (Mapping protocol)
        # Tree-node numbering: depth d has arity^d nodes starting at
        # offset[d]; node (d, i) has id offset[d] + i.
        self._offsets = np.zeros(self.levels + 2, dtype=np.int64)
        for d in range(1, self.levels + 2):
            self._offsets[d] = self._offsets[d - 1] + arity ** (d - 1)
        self.num_tree_nodes = int(self._offsets[self.levels + 1])
        # One up/down bundle pair per non-root tree node.
        self.num_channel_slots = self.num_tree_nodes * 2
        self.channel_valid = np.ones(self.num_channel_slots, dtype=bool)
        self.channel_valid[self._slot(0, 0, DIR_UP)] = False
        self.channel_valid[self._slot(0, 0, DIR_DOWN)] = False
        # Bundle multiplicity per depth (bundle above a depth-d node).
        self.multiplicity = np.ones(self.levels + 1)
        for d in range(1, self.levels + 1):
            self.multiplicity[d] = max(
                1.0, round((arity / self.slimming) ** (self.levels - d))
            )

    # -- tree indexing ---------------------------------------------------------
    def _slot(self, depth: int, index: int, direction: int) -> int:
        return int(self._offsets[depth] + index) * 2 + direction

    def ancestor(self, leaves, depth: int) -> np.ndarray:
        """Index (within its depth) of the depth-``depth`` ancestor."""
        leaves = np.asarray(leaves, dtype=np.int64)
        return leaves // (self.arity ** (self.levels - depth))

    def lca_depth(self, a, b) -> np.ndarray:
        """Depth of the least common ancestor of leaf pairs."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        result = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        # Deepest depth at which the ancestors coincide (ancestors only
        # re-converge going up, so the running maximum is correct).
        for d in range(self.levels + 1):
            same = self.ancestor(a, d) == self.ancestor(b, d)
            result = np.where(same, d, result)
        return result

    def hop_distance(self, a, b) -> np.ndarray:
        """Switch hops of the up-down route (0 when same leaf)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        lca = self.lca_depth(a, b)
        return np.where(a == b, 0, 2 * (self.levels - lca))

    def describe(self) -> str:
        kind = (
            "full fat-tree" if self.slimming == 1.0
            else f"slimmed fat-tree (factor {self.slimming:g})"
        )
        return (
            f"{self.arity}-ary {self.levels}-level {kind} "
            f"({self.num_leaves} leaves)"
        )

    def __repr__(self) -> str:
        return (
            f"FatTree(arity={self.arity}, levels={self.levels}, "
            f"slimming={self.slimming:g})"
        )


class FatTreeRouter:
    """Up-down (ECMP-spread) routing with per-physical-link load reporting."""

    name = "fat-tree-updown"

    def __init__(self, topology: FatTree):
        self.topology = topology

    def link_loads(self, srcs, dsts, vols, out: np.ndarray | None = None):
        """Per-physical-link loads over the dense bundle-slot space."""
        ft = self.topology
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        vols = np.asarray(vols, dtype=np.float64)
        if out is None:
            out = np.zeros(ft.num_channel_slots)
        offnode = srcs != dsts
        if not offnode.any():
            return out
        srcs, dsts, vols = srcs[offnode], dsts[offnode], vols[offnode]
        lca = ft.lca_depth(srcs, dsts)
        for d in range(1, ft.levels + 1):
            crosses = lca < d
            if not crosses.any():
                continue
            share = vols[crosses] / ft.multiplicity[d]
            up_nodes = ft._offsets[d] + ft.ancestor(srcs[crosses], d)
            dn_nodes = ft._offsets[d] + ft.ancestor(dsts[crosses], d)
            np.add.at(out, up_nodes * 2 + DIR_UP, share)
            np.add.at(out, dn_nodes * 2 + DIR_DOWN, share)
        return out

    def max_channel_load(self, srcs, dsts, vols) -> float:
        loads = self.link_loads(srcs, dsts, vols)
        return float(loads.max()) if loads.size else 0.0


class FatTreeMapper:
    """Hierarchical-clustering mapper for fat-trees.

    Top-down, each cluster splits into ``arity`` equal sub-clusters with
    minimal cross volume; sub-cluster -> subtree assignment is arbitrary
    because subtrees are interchangeable under tree automorphisms (the
    degenerate form of RAHTM's phase 3 on this topology).
    """

    name = "fattree-hierarchical"

    def __init__(self, topology: FatTree):
        if not isinstance(topology, FatTree):
            raise ConfigError("FatTreeMapper requires a FatTree topology")
        self.topology = topology

    def map(self, graph: CommGraph) -> Mapping:
        ft = self.topology
        if graph.num_tasks % ft.num_leaves:
            raise ConfigError(
                f"{graph.num_tasks} tasks do not divide over "
                f"{ft.num_leaves} leaves"
            )
        concentration = graph.num_tasks // ft.num_leaves
        # Leaf-level concentration clustering first.
        level = cluster_fixed_size(graph, concentration)
        task_to_cluster = level.labels
        current = level.graph  # one cluster per leaf

        # Recursive top-down splitting, tracked as a per-cluster path of
        # child indices that becomes the leaf id.
        leaf_of_cluster = np.zeros(current.num_tasks, dtype=np.int64)
        groups: list[np.ndarray] = [np.arange(current.num_tasks)]
        for depth in range(ft.levels):
            next_groups: list[np.ndarray] = []
            for members in groups:
                sub = current.subgraph(members)
                child_size = len(members) // ft.arity
                sub_level = cluster_fixed_size(sub, child_size)
                for child in range(ft.arity):
                    sel = members[np.flatnonzero(sub_level.labels == child)]
                    leaf_of_cluster[sel] = leaf_of_cluster[sel] * ft.arity + child
                    next_groups.append(sel)
            groups = next_groups
        return Mapping(ft, leaf_of_cluster[task_to_cluster],
                       tasks_per_node=concentration)
