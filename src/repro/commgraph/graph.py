"""The :class:`CommGraph` container.

Edges are stored deduplicated in arrays (srcs, dsts, vols) sorted by
(src, dst); all transformation methods (contraction, subgraphs,
relabeling, symmetrization) are vectorized. Self-loops represent
intra-task (or after contraction, intra-cluster) volume; they are kept by
default because phase-1 clustering *wants* to maximize them, and mappers
ignore them since co-located traffic never enters the network.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import CommGraphError

__all__ = ["CommGraph"]


class CommGraph:
    """A weighted directed communication graph over ``num_tasks`` ranks.

    Parameters
    ----------
    num_tasks:
        Number of vertices (MPI ranks / clusters).
    srcs, dsts, vols:
        Parallel edge arrays. Duplicate (src, dst) pairs are summed.
    grid_shape:
        Optional logical process-grid shape with ``prod == num_tasks``;
        enables structure-preserving tiling in RAHTM phase 1.
    """

    def __init__(self, num_tasks: int, srcs, dsts, vols,
                 grid_shape: tuple[int, ...] | None = None):
        if num_tasks <= 0:
            raise CommGraphError(f"num_tasks must be positive, got {num_tasks}")
        self.num_tasks = int(num_tasks)
        srcs = np.asarray(srcs, dtype=np.int64).ravel()
        dsts = np.asarray(dsts, dtype=np.int64).ravel()
        vols = np.asarray(vols, dtype=np.float64).ravel()
        if not (len(srcs) == len(dsts) == len(vols)):
            raise CommGraphError("srcs, dsts, vols must have equal length")
        if len(srcs) and (
            srcs.min() < 0 or srcs.max() >= num_tasks
            or dsts.min() < 0 or dsts.max() >= num_tasks
        ):
            raise CommGraphError("edge endpoint out of range")
        if np.any(vols < 0):
            raise CommGraphError("communication volumes must be >= 0")
        if len(srcs) == 0:
            self.srcs = np.empty(0, dtype=np.int64)
            self.dsts = np.empty(0, dtype=np.int64)
            self.vols = np.empty(0)
            self.grid_shape = self._check_grid(grid_shape)
            return
        # Deduplicate: sum volumes of repeated (src, dst) pairs.
        keys = srcs * num_tasks + dsts
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vols = vols[order]
        uniq_mask = np.r_[True, keys[1:] != keys[:-1]]
        uniq_keys = keys[uniq_mask]
        seg_ids = np.cumsum(uniq_mask) - 1
        summed = np.zeros(len(uniq_keys))
        np.add.at(summed, seg_ids, vols)
        keep = summed > 0
        uniq_keys = uniq_keys[keep]
        self.srcs = (uniq_keys // num_tasks).astype(np.int64)
        self.dsts = (uniq_keys % num_tasks).astype(np.int64)
        self.vols = summed[keep]
        self.grid_shape = self._check_grid(grid_shape)

    def _check_grid(self, grid_shape):
        if grid_shape is None:
            return None
        grid_shape = tuple(int(g) for g in grid_shape)
        if int(np.prod(grid_shape)) != self.num_tasks:
            raise CommGraphError(
                f"grid_shape {grid_shape} does not cover {self.num_tasks} tasks"
            )
        return grid_shape

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_edges(cls, num_tasks: int, edges, grid_shape=None) -> "CommGraph":
        """Build from an iterable of ``(src, dst, vol)`` triples."""
        edges = list(edges)
        if not edges:
            return cls(num_tasks, [], [], [], grid_shape=grid_shape)
        srcs, dsts, vols = zip(*edges)
        return cls(num_tasks, srcs, dsts, vols, grid_shape=grid_shape)

    @classmethod
    def from_matrix(cls, matrix, grid_shape=None) -> "CommGraph":
        """Build from a dense or scipy-sparse volume matrix (row=src)."""
        if sp.issparse(matrix):
            coo = matrix.tocoo()
            n = coo.shape[0]
            if coo.shape[0] != coo.shape[1]:
                raise CommGraphError(f"matrix must be square, got {coo.shape}")
            return cls(n, coo.row, coo.col, coo.data, grid_shape=grid_shape)
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise CommGraphError(f"matrix must be square 2-D, got {matrix.shape}")
        srcs, dsts = np.nonzero(matrix)
        return cls(matrix.shape[0], srcs, dsts, matrix[srcs, dsts],
                   grid_shape=grid_shape)

    # -- views ---------------------------------------------------------------
    def to_matrix(self, dense: bool = False):
        """Volume matrix as CSR (or dense when ``dense=True``)."""
        m = sp.csr_matrix(
            (self.vols, (self.srcs, self.dsts)),
            shape=(self.num_tasks, self.num_tasks),
        )
        return m.toarray() if dense else m

    def to_networkx(self):
        """Directed networkx graph with ``volume`` edge attributes."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_tasks))
        g.add_weighted_edges_from(
            zip(self.srcs.tolist(), self.dsts.tolist(), self.vols.tolist()),
            weight="volume",
        )
        return g

    @property
    def num_edges(self) -> int:
        return len(self.vols)

    @property
    def total_volume(self) -> float:
        return float(self.vols.sum())

    @property
    def offdiagonal_volume(self) -> float:
        """Volume between *distinct* tasks (what can hit the network)."""
        mask = self.srcs != self.dsts
        return float(self.vols[mask].sum())

    def without_self_loops(self) -> "CommGraph":
        mask = self.srcs != self.dsts
        return CommGraph(
            self.num_tasks, self.srcs[mask], self.dsts[mask], self.vols[mask],
            grid_shape=self.grid_shape,
        )

    def task_volumes(self) -> np.ndarray:
        """Per-task total (in + out) off-diagonal volume."""
        out = np.zeros(self.num_tasks)
        mask = self.srcs != self.dsts
        np.add.at(out, self.srcs[mask], self.vols[mask])
        np.add.at(out, self.dsts[mask], self.vols[mask])
        return out

    # -- transforms ------------------------------------------------------------
    def symmetrized(self) -> "CommGraph":
        """Undirected view: ``W' = W + W.T`` (self-loops doubled too)."""
        return CommGraph(
            self.num_tasks,
            np.r_[self.srcs, self.dsts],
            np.r_[self.dsts, self.srcs],
            np.r_[self.vols, self.vols],
            grid_shape=self.grid_shape,
        )

    def contract(self, labels, num_clusters: int | None = None,
                 grid_shape=None) -> "CommGraph":
        """Contract tasks into clusters given per-task cluster labels.

        Volumes between clusters sum; intra-cluster volume becomes the
        cluster's self-loop. ``grid_shape`` annotates the contracted graph
        (it cannot be inferred).
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.num_tasks,):
            raise CommGraphError(
                f"labels must have shape ({self.num_tasks},), got {labels.shape}"
            )
        if num_clusters is None:
            num_clusters = int(labels.max()) + 1 if len(labels) else 0
        if len(labels) and (labels.min() < 0 or labels.max() >= num_clusters):
            raise CommGraphError("cluster label out of range")
        return CommGraph(
            num_clusters, labels[self.srcs], labels[self.dsts], self.vols,
            grid_shape=grid_shape,
        )

    def relabeled(self, perm) -> "CommGraph":
        """Rename task ``t`` to ``perm[t]`` (perm must be a permutation)."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_tasks,) or (
            np.sort(perm) != np.arange(self.num_tasks)
        ).any():
            raise CommGraphError("perm must be a permutation of all tasks")
        new_grid = self.grid_shape  # permutation invalidates grid structure
        return CommGraph(
            self.num_tasks, perm[self.srcs], perm[self.dsts], self.vols,
            grid_shape=new_grid,
        )

    def subgraph(self, task_ids) -> "CommGraph":
        """Induced subgraph over ``task_ids``, reindexed to 0..len-1."""
        task_ids = np.asarray(task_ids, dtype=np.int64)
        if len(np.unique(task_ids)) != len(task_ids):
            raise CommGraphError("task_ids must be unique")
        lookup = np.full(self.num_tasks, -1, dtype=np.int64)
        lookup[task_ids] = np.arange(len(task_ids))
        mask = (lookup[self.srcs] >= 0) & (lookup[self.dsts] >= 0)
        return CommGraph(
            len(task_ids),
            lookup[self.srcs[mask]],
            lookup[self.dsts[mask]],
            self.vols[mask],
        )

    def scaled(self, factor: float) -> "CommGraph":
        """All volumes multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise CommGraphError(f"scale factor must be > 0, got {factor}")
        return CommGraph(
            self.num_tasks, self.srcs, self.dsts, self.vols * factor,
            grid_shape=self.grid_shape,
        )

    def __add__(self, other: "CommGraph") -> "CommGraph":
        if not isinstance(other, CommGraph):
            return NotImplemented
        if other.num_tasks != self.num_tasks:
            raise CommGraphError("cannot add graphs with different task counts")
        return CommGraph(
            self.num_tasks,
            np.r_[self.srcs, other.srcs],
            np.r_[self.dsts, other.dsts],
            np.r_[self.vols, other.vols],
            grid_shape=self.grid_shape or other.grid_shape,
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CommGraph)
            and self.num_tasks == other.num_tasks
            and np.array_equal(self.srcs, other.srcs)
            and np.array_equal(self.dsts, other.dsts)
            and np.allclose(self.vols, other.vols)
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        grid = f", grid={self.grid_shape}" if self.grid_shape else ""
        return (
            f"CommGraph(tasks={self.num_tasks}, edges={self.num_edges}, "
            f"volume={self.total_volume:g}{grid})"
        )
