"""Serialization of communication graphs.

Two formats:

- ``.npz`` (default): compact binary via :func:`numpy.savez_compressed`.
- ``.json``: human-inspectable, used by the examples for small graphs.

Both round-trip ``grid_shape``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.errors import CommGraphError

__all__ = ["save_commgraph", "load_commgraph"]


def save_commgraph(graph: CommGraph, path) -> None:
    """Write ``graph`` to ``path`` (format chosen by suffix: .npz or .json)."""
    path = Path(path)
    if path.suffix == ".npz":
        grid = np.asarray(graph.grid_shape if graph.grid_shape else [], dtype=np.int64)
        np.savez_compressed(
            path,
            num_tasks=np.int64(graph.num_tasks),
            srcs=graph.srcs,
            dsts=graph.dsts,
            vols=graph.vols,
            grid_shape=grid,
        )
    elif path.suffix == ".json":
        payload = {
            "num_tasks": graph.num_tasks,
            "grid_shape": list(graph.grid_shape) if graph.grid_shape else None,
            "edges": [
                [int(s), int(d), float(v)]
                for s, d, v in zip(graph.srcs, graph.dsts, graph.vols)
            ],
        }
        path.write_text(json.dumps(payload, indent=1))
    else:
        raise CommGraphError(f"unsupported commgraph format {path.suffix!r}")


def load_commgraph(path) -> CommGraph:
    """Read a graph previously written by :func:`save_commgraph`."""
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path) as data:
            grid = tuple(int(g) for g in data["grid_shape"]) or None
            return CommGraph(
                int(data["num_tasks"]),
                data["srcs"],
                data["dsts"],
                data["vols"],
                grid_shape=grid,
            )
    if path.suffix == ".json":
        payload = json.loads(path.read_text())
        edges = payload["edges"]
        grid = payload.get("grid_shape")
        return CommGraph.from_edges(
            payload["num_tasks"],
            [(int(s), int(d), float(v)) for s, d, v in edges],
            grid_shape=tuple(grid) if grid else None,
        )
    raise CommGraphError(f"unsupported commgraph format {path.suffix!r}")
