"""Application communication graphs.

A :class:`CommGraph` is the mapper's view of an application: tasks (MPI
ranks) as vertices and directed communication volumes as weighted edges —
what the paper extracts from IPM profiles of iterative applications.

Graphs optionally carry a ``grid_shape``: the application's logical process
grid (e.g. the sqrt(P) x sqrt(P) grid of NAS BT). RAHTM's phase-1 tiling
search (Figure 2) exploits it when present and falls back to generic
clustering when absent.
"""

from repro.commgraph.graph import CommGraph
from repro.commgraph.io import save_commgraph, load_commgraph

__all__ = ["CommGraph", "save_commgraph", "load_commgraph"]
