"""Per-flow link-load attribution: the sparse flow x link matrix.

:mod:`repro.metrics.core` reports MCL as one opaque scalar; this module
decomposes the per-channel load vector into *who* put the bytes there.
For a set of node-level flows under a :class:`~repro.routing.base.Router`
it builds a sparse ``(flows x channel-slots)`` matrix of route fractions
using the same stencil machinery (and the same
:meth:`~repro.routing.base.Router.stencil_slots` slot arithmetic) that
:meth:`~repro.routing.base.Router.link_loads` uses, so the attribution
sums back to the load vector exactly — up to floating-point reassociation
— by construction.

Construction is chunked: triplets are flushed into CSR parts whenever the
pending chunk exceeds ``chunk_nnz`` entries, so graphs with tens of
thousands of processes never materialize one giant COO buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.errors import ReproError

if TYPE_CHECKING:  # typing only: routing.base imports observability.metrics,
    # so a runtime import here would close an import cycle.
    from repro.commgraph.graph import CommGraph
    from repro.mapping.mapping import Mapping
    from repro.routing.base import Router

__all__ = [
    "FlowLinkAttribution",
    "attribute_flows",
    "attribute_mapping",
]

#: Default cap on pending (row, col, frac) triplets before a chunk flush.
DEFAULT_CHUNK_NNZ = 1 << 21


@dataclass(frozen=True)
class FlowLinkAttribution:
    """Per-flow channel-load decomposition for one (router, flows) pair.

    Attributes
    ----------
    router:
        The router the routes came from.
    srcs, dsts, vols:
        The attributed *network* flows (off-node, positive volume), in
        the order the matrix rows use.
    fractions:
        ``(F x num_channel_slots)`` CSR matrix; ``fractions[i, s]`` is
        the fraction of flow ``i``'s volume crossing channel slot ``s``.
    """

    router: Router
    srcs: np.ndarray
    dsts: np.ndarray
    vols: np.ndarray
    fractions: sp.csr_matrix

    @property
    def num_flows(self) -> int:
        return len(self.vols)

    def channel_loads(self) -> np.ndarray:
        """Dense per-slot load vector: column sums of the load matrix."""
        return np.asarray(self.fractions.T @ self.vols).ravel()

    def load_matrix(self) -> sp.csr_matrix:
        """``(F x S)`` matrix of absolute per-flow loads (vols * fracs)."""
        return sp.diags(self.vols) @ self.fractions

    def usage_matrix(self) -> sp.csr_matrix:
        """``(S x F)`` route-fraction matrix, the fluid simulator's shape."""
        return self.fractions.T.tocsr()

    def flows_through(self, slot: int):
        """Flows crossing channel ``slot``: (flow_indices, contributions).

        Contributions are absolute loads (``vol * fraction``), sorted
        descending, and sum to the slot's entry in
        :meth:`channel_loads`.
        """
        col = self.fractions.getcol(int(slot)).tocoo()
        idx = col.row
        contrib = col.data * self.vols[idx]
        order = np.argsort(-contrib, kind="stable")
        return idx[order], contrib[order]

    def max_residual(self) -> float:
        """Largest |attributed - direct| channel load (consistency check)."""
        direct = self.router.link_loads(self.srcs, self.dsts, self.vols)
        return float(np.abs(self.channel_loads() - direct).max(initial=0.0))


def attribute_flows(
    router: Router,
    srcs,
    dsts,
    vols,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
) -> FlowLinkAttribution:
    """Build the flow x link attribution for explicit node-level flows.

    Flows with ``src == dst`` or zero volume carry no network load and
    are dropped (matching :meth:`Router.link_loads` semantics); the
    returned attribution's ``srcs/dsts/vols`` reflect the kept flows.
    """
    topo = router.topology
    srcs = np.asarray(srcs, dtype=np.int64).ravel()
    dsts = np.asarray(dsts, dtype=np.int64).ravel()
    vols = np.asarray(vols, dtype=np.float64).ravel()
    if not (srcs.shape == dsts.shape == vols.shape):
        raise ReproError("srcs, dsts, vols must be equal-length 1-D arrays")
    keep = (srcs != dsts) & (vols > 0)
    srcs, dsts, vols = srcs[keep], dsts[keep], vols[keep]
    shape = (len(srcs), topo.num_channel_slots)
    if len(srcs) == 0:
        return FlowLinkAttribution(
            router, srcs, dsts, vols, sp.csr_matrix(shape)
        )

    deltas, groups = router.group_flows_by_offset(srcs, dsts)
    parts: list[sp.csr_matrix] = []
    rows_buf: list[np.ndarray] = []
    cols_buf: list[np.ndarray] = []
    data_buf: list[np.ndarray] = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if not pending:
            return
        parts.append(
            sp.csr_matrix(
                (
                    np.concatenate(data_buf),
                    (np.concatenate(rows_buf), np.concatenate(cols_buf)),
                ),
                shape=shape,
            )
        )
        rows_buf.clear()
        cols_buf.clear()
        data_buf.clear()
        pending = 0

    for rows in groups:
        st = router.stencil(deltas[rows[0]])
        if st.num_entries == 0:
            continue
        slots = router.stencil_slots(st, srcs[rows])  # (g, E)
        g, e = slots.shape
        rows_buf.append(np.repeat(rows, e))
        cols_buf.append(slots.ravel())
        data_buf.append(np.broadcast_to(st.fracs, (g, e)).ravel())
        pending += g * e
        if pending >= chunk_nnz:
            flush()
    flush()

    if not parts:
        matrix = sp.csr_matrix(shape)
    elif len(parts) == 1:
        matrix = parts[0]
    else:
        # Chunks partition the flow rows, so summing is a disjoint union.
        matrix = parts[0]
        for part in parts[1:]:
            matrix = matrix + part
    matrix.sum_duplicates()
    return FlowLinkAttribution(router, srcs, dsts, vols, matrix.tocsr())


def attribute_mapping(
    router: Router,
    mapping: Mapping,
    graph: CommGraph,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
) -> FlowLinkAttribution:
    """Attribution for the network flows of ``graph`` under ``mapping``."""
    srcs, dsts, vols = mapping.network_flows(graph)
    return attribute_flows(router, srcs, dsts, vols, chunk_nnz=chunk_nnz)
