"""Network introspection: hotspot reports, load stats, mapping diffs.

Everything RAHTM optimizes collapses into one scalar — the maximum
channel load — and this module answers the questions that scalar hides:
*which* links are hot, *which* flows (and task pairs) load them, how the
load distributes across dimensions and directions, and what changed
between two mappings. It sits on top of
:mod:`repro.observability.attribution` (the sparse flow x link matrix)
and cross-checks saturation against the fluid simulator's max-min fair
rates, so the per-link story is consistent with both load models.

Artifacts are schema-versioned JSON (:data:`NETVIEW_SCHEMA_VERSION`);
``kind`` distinguishes full net views (``"netview"``), compact payload
summaries (``"netview_summary"``) and mapping diffs (``"mapping_diff"``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.observability.attribution import FlowLinkAttribution, attribute_mapping

if TYPE_CHECKING:  # typing only, keeping the observability package import-light
    from repro.commgraph.graph import CommGraph
    from repro.mapping.mapping import Mapping
    from repro.routing.base import Router

__all__ = [
    "NETVIEW_SCHEMA_VERSION",
    "LinkRef",
    "FlowContribution",
    "LinkHotspot",
    "LoadStats",
    "DimensionLoad",
    "SaturationEstimate",
    "NetView",
    "MappingDiff",
    "build_netview",
    "diff_mappings",
    "netview_summary",
    "load_stats",
    "gini",
]

#: Version of every JSON artifact this module emits.
NETVIEW_SCHEMA_VERSION = 1


# -- link identity ---------------------------------------------------------------------
@dataclass(frozen=True)
class LinkRef:
    """A directed channel slot, resolved to human-readable coordinates."""

    slot: int
    src_node: int
    dst_node: int
    src_coords: tuple[int, ...]
    dim: int
    direction: str  # "+" or "-"

    @classmethod
    def from_slot(cls, topology, slot: int) -> "LinkRef":
        slot = int(slot)
        return cls(
            slot=slot,
            src_node=int(topology.channel_src[slot]),
            dst_node=int(topology.channel_dst[slot]),
            src_coords=tuple(
                int(x) for x in topology.coords_array[topology.channel_src[slot]]
            ),
            dim=int(topology.channel_dim[slot]),
            direction="+" if int(topology.channel_dir[slot]) == 0 else "-",
        )

    def label(self) -> str:
        coords = ",".join(map(str, self.src_coords))
        return f"({coords}) dim{self.dim}{self.direction}"


# -- per-link hotspot decomposition ----------------------------------------------------
@dataclass(frozen=True)
class FlowContribution:
    """One node-level flow's share of a hot link."""

    src_node: int
    dst_node: int
    volume: float
    contribution: float  # absolute load this flow puts on the link
    share: float  # contribution / link load
    task_pairs: list = field(default_factory=list)  # [(src_task, dst_task, vol)]


@dataclass(frozen=True)
class LinkHotspot:
    """One of the k hottest links and the flows that load it."""

    link: LinkRef
    load: float
    share_of_mcl: float
    share_of_total: float
    flows: list  # list[FlowContribution], descending contribution


@dataclass(frozen=True)
class LoadStats:
    """Distribution statistics over valid-channel loads."""

    mcl: float
    mean: float
    p50: float
    p95: float
    p99: float
    gini: float
    imbalance: float  # mcl / mean (1.0 == perfectly balanced)
    total_load: float
    num_channels: int
    zero_channels: int


@dataclass(frozen=True)
class DimensionLoad:
    """Load balance of one (dimension, direction) channel class."""

    dim: int
    direction: str
    max: float
    mean: float
    total: float


@dataclass(frozen=True)
class SaturationEstimate:
    """Max-min-fair saturation picture, cross-checked with the fluid model.

    ``utilization`` entries are per-link demand/capacity under the fluid
    simulator's progressive-filling rates
    (:func:`repro.simulator.fluid.max_min_fair_rates`); ``agrees`` is
    True when the MCL link is (one of) the fluid model's saturated
    bottlenecks — i.e. the MCL abstraction and the fluid model blame the
    same place.
    """

    link_bandwidth: float
    bottleneck: LinkRef
    bottleneck_utilization: float
    mcl_link_utilization: float
    saturated_links: int
    mcl_seconds: float  # phase time the MCL abstraction predicts
    agrees: bool


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative load vector (0 = equal)."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    n = len(x)
    total = float(x.sum())
    if n == 0 or total <= 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float(2.0 * (ranks * x).sum() / (n * total) - (n + 1) / n)


def load_stats(loads: np.ndarray, valid: np.ndarray) -> LoadStats:
    """Distribution statistics of ``loads`` over the ``valid`` mask."""
    sub = loads[valid]
    if sub.size == 0:
        return LoadStats(
            mcl=0.0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, gini=0.0,
            imbalance=0.0, total_load=0.0, num_channels=0, zero_channels=0,
        )
    mean = float(sub.mean())
    mcl = float(sub.max())
    p50, p95, p99 = (float(v) for v in np.percentile(sub, [50, 95, 99]))
    return LoadStats(
        mcl=mcl,
        mean=mean,
        p50=p50,
        p95=p95,
        p99=p99,
        gini=gini(sub),
        imbalance=mcl / mean if mean else 0.0,
        total_load=float(sub.sum()),
        num_channels=int(sub.size),
        zero_channels=int((sub == 0).sum()),
    )


def _dimension_loads(topology, loads: np.ndarray) -> list[DimensionLoad]:
    out: list[DimensionLoad] = []
    for d in range(topology.ndim):
        for direction, sign in ((0, "+"), (1, "-")):
            sel = (
                topology.channel_valid
                & (topology.channel_dim == d)
                & (topology.channel_dir == direction)
            )
            if not sel.any():
                continue
            sub = loads[sel]
            out.append(
                DimensionLoad(
                    dim=d,
                    direction=sign,
                    max=float(sub.max()),
                    mean=float(sub.mean()),
                    total=float(sub.sum()),
                )
            )
    return out


def _task_pairs(
    mapping: Mapping, graph: CommGraph, src_node: int, dst_node: int, limit: int
) -> list:
    """Heaviest task pairs behind one node-level flow (src_node->dst_node)."""
    if limit <= 0:
        return []
    t2n = mapping.task_to_node
    sel = (t2n[graph.srcs] == src_node) & (t2n[graph.dsts] == dst_node)
    idx = np.flatnonzero(sel)
    if len(idx) == 0:
        return []
    order = idx[np.argsort(-graph.vols[idx], kind="stable")][:limit]
    return [
        (int(graph.srcs[i]), int(graph.dsts[i]), float(graph.vols[i]))
        for i in order
    ]


def _hotspots(
    attribution: FlowLinkAttribution,
    loads: np.ndarray,
    mapping: Mapping | None,
    graph: CommGraph | None,
    top_k: int,
    flows_per_link: int,
    task_pairs_per_flow: int,
) -> list[LinkHotspot]:
    topo = attribution.router.topology
    valid = topo.channel_valid
    mcl = float(loads[valid].max()) if valid.any() else 0.0
    total = float(loads[valid].sum()) if valid.any() else 0.0
    valid_slots = np.flatnonzero(valid)
    order = valid_slots[np.argsort(-loads[valid], kind="stable")]
    hotspots: list[LinkHotspot] = []
    for slot in order[: max(top_k, 0)]:
        load = float(loads[slot])
        if load <= 0:
            break  # remaining links are idle; an empty tail is not a hotspot
        flow_idx, contribs = attribution.flows_through(int(slot))
        flows = []
        for i, contrib in zip(flow_idx[:flows_per_link], contribs):
            s_node = int(attribution.srcs[i])
            d_node = int(attribution.dsts[i])
            pairs = (
                _task_pairs(mapping, graph, s_node, d_node, task_pairs_per_flow)
                if mapping is not None and graph is not None
                else []
            )
            flows.append(
                FlowContribution(
                    src_node=s_node,
                    dst_node=d_node,
                    volume=float(attribution.vols[i]),
                    contribution=float(contrib),
                    share=float(contrib / load) if load else 0.0,
                    task_pairs=pairs,
                )
            )
        hotspots.append(
            LinkHotspot(
                link=LinkRef.from_slot(topo, int(slot)),
                load=load,
                share_of_mcl=load / mcl if mcl else 0.0,
                share_of_total=load / total if total else 0.0,
                flows=flows,
            )
        )
    return hotspots


def _saturation(
    attribution: FlowLinkAttribution,
    loads: np.ndarray,
    link_bandwidth: float,
) -> SaturationEstimate | None:
    from repro.simulator.fluid import max_min_fair_rates

    topo = attribution.router.topology
    valid = topo.channel_valid
    if attribution.num_flows == 0 or not valid.any():
        return None
    usage = attribution.usage_matrix()
    capacity = np.full(usage.shape[0], float(link_bandwidth))
    active = np.ones(attribution.num_flows, dtype=bool)
    rates = max_min_fair_rates(usage, capacity, active)
    utilization = np.asarray(usage @ rates).ravel() / capacity
    utilization[~valid] = 0.0
    bottleneck_slot = int(utilization.argmax())
    mcl_slot = int(np.flatnonzero(valid)[loads[valid].argmax()])
    tol = 1.0 - 1e-6
    mcl = float(loads[valid].max())
    return SaturationEstimate(
        link_bandwidth=float(link_bandwidth),
        bottleneck=LinkRef.from_slot(topo, bottleneck_slot),
        bottleneck_utilization=float(utilization[bottleneck_slot]),
        mcl_link_utilization=float(utilization[mcl_slot]),
        saturated_links=int((utilization >= tol).sum()),
        mcl_seconds=mcl / float(link_bandwidth) if link_bandwidth > 0 else 0.0,
        agrees=bool(utilization[mcl_slot] >= tol),
    )


# -- the full report -------------------------------------------------------------------
@dataclass(frozen=True)
class NetView:
    """The complete network-level explanation of one mapping's MCL."""

    router: str
    topology_shape: tuple[int, ...]
    topology_wrap: tuple[bool, ...]
    num_flows: int
    stats: LoadStats
    dimension_loads: list  # list[DimensionLoad]
    hotspots: list  # list[LinkHotspot]
    saturation: SaturationEstimate | None = None
    max_residual: float = 0.0

    @property
    def mcl(self) -> float:
        return self.stats.mcl

    def to_dict(self) -> dict:
        return {
            "schema": NETVIEW_SCHEMA_VERSION,
            "kind": "netview",
            "router": self.router,
            "topology": {
                "shape": list(self.topology_shape),
                "wrap": list(self.topology_wrap),
            },
            "num_flows": self.num_flows,
            "mcl": self.stats.mcl,
            "stats": asdict(self.stats),
            "dimension_loads": [asdict(d) for d in self.dimension_loads],
            "hotspots": [
                {
                    **asdict(h),
                    "link": {**asdict(h.link), "label": h.link.label()},
                }
                for h in self.hotspots
            ],
            "saturation": (
                None
                if self.saturation is None
                else {
                    **asdict(self.saturation),
                    "bottleneck": {
                        **asdict(self.saturation.bottleneck),
                        "label": self.saturation.bottleneck.label(),
                    },
                }
            ),
            "max_residual": self.max_residual,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "NetView":
        if doc.get("schema") != NETVIEW_SCHEMA_VERSION:
            raise ReproError(
                f"netview artifact schema {doc.get('schema')!r} unsupported "
                f"(expected {NETVIEW_SCHEMA_VERSION})"
            )

        def link(d: dict) -> LinkRef:
            return LinkRef(
                slot=int(d["slot"]),
                src_node=int(d["src_node"]),
                dst_node=int(d["dst_node"]),
                src_coords=tuple(int(x) for x in d["src_coords"]),
                dim=int(d["dim"]),
                direction=str(d["direction"]),
            )

        sat = doc.get("saturation")
        return cls(
            router=doc["router"],
            topology_shape=tuple(doc["topology"]["shape"]),
            topology_wrap=tuple(bool(w) for w in doc["topology"]["wrap"]),
            num_flows=int(doc["num_flows"]),
            stats=LoadStats(**doc["stats"]),
            dimension_loads=[DimensionLoad(**d) for d in doc["dimension_loads"]],
            hotspots=[
                LinkHotspot(
                    link=link(h["link"]),
                    load=float(h["load"]),
                    share_of_mcl=float(h["share_of_mcl"]),
                    share_of_total=float(h["share_of_total"]),
                    flows=[
                        FlowContribution(
                            src_node=int(f["src_node"]),
                            dst_node=int(f["dst_node"]),
                            volume=float(f["volume"]),
                            contribution=float(f["contribution"]),
                            share=float(f["share"]),
                            task_pairs=[tuple(p) for p in f["task_pairs"]],
                        )
                        for f in h["flows"]
                    ],
                )
                for h in doc["hotspots"]
            ],
            saturation=(
                None
                if sat is None
                else SaturationEstimate(
                    link_bandwidth=float(sat["link_bandwidth"]),
                    bottleneck=link(sat["bottleneck"]),
                    bottleneck_utilization=float(sat["bottleneck_utilization"]),
                    mcl_link_utilization=float(sat["mcl_link_utilization"]),
                    saturated_links=int(sat["saturated_links"]),
                    mcl_seconds=float(sat["mcl_seconds"]),
                    agrees=bool(sat["agrees"]),
                )
            ),
            max_residual=float(doc.get("max_residual", 0.0)),
        )

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


def build_netview(
    router: Router,
    mapping: Mapping,
    graph: CommGraph,
    top_k: int = 5,
    flows_per_link: int = 5,
    task_pairs_per_flow: int = 4,
    saturation: bool = False,
    link_bandwidth: float = 1.8e9,
    attribution: FlowLinkAttribution | None = None,
) -> NetView:
    """Explain one mapping's channel loads end to end.

    ``saturation=True`` additionally runs one progressive-filling pass of
    the fluid model's max-min fair rates to estimate per-link utilization
    (opt-in: it costs one sparse matvec per freeze round).
    """
    if attribution is None:
        attribution = attribute_mapping(router, mapping, graph)
    loads = attribution.channel_loads()
    topo = router.topology
    return NetView(
        router=getattr(router, "name", type(router).__name__),
        topology_shape=tuple(topo.shape),
        topology_wrap=tuple(topo.wrap),
        num_flows=attribution.num_flows,
        stats=load_stats(loads, topo.channel_valid),
        dimension_loads=_dimension_loads(topo, loads),
        hotspots=_hotspots(
            attribution, loads, mapping, graph,
            top_k, flows_per_link, task_pairs_per_flow,
        ),
        saturation=(
            _saturation(attribution, loads, link_bandwidth) if saturation else None
        ),
        max_residual=attribution.max_residual(),
    )


def netview_summary(
    router: Router,
    mapping: Mapping,
    graph: CommGraph,
    top_k: int = 3,
) -> dict:
    """Compact JSON-ready summary for job payloads and bench snapshots.

    Deliberately small (no per-flow task pairs, no saturation): it rides
    inside service payloads and snapshot cells, where a few hundred bytes
    per cell is the budget.
    """
    view = build_netview(
        router, mapping, graph,
        top_k=top_k, flows_per_link=0, task_pairs_per_flow=0,
    )
    return {
        "schema": NETVIEW_SCHEMA_VERSION,
        "kind": "netview_summary",
        "router": view.router,
        "mcl": view.stats.mcl,
        "p95": view.stats.p95,
        "p99": view.stats.p99,
        "gini": view.stats.gini,
        "imbalance": view.stats.imbalance,
        "num_flows": view.num_flows,
        "top": [
            {
                "slot": h.link.slot,
                "label": h.link.label(),
                "dim": h.link.dim,
                "direction": h.link.direction,
                "load": h.load,
                "share_of_total": h.share_of_total,
            }
            for h in view.hotspots
        ],
    }


# -- mapping diffs ---------------------------------------------------------------------
@dataclass(frozen=True)
class MappingDiff:
    """Link-by-link comparison of two mappings of the same graph.

    ``moved_load`` is half the L1 distance between the two load vectors —
    the volume-weighted amount of traffic that changed links.
    ``phase_seconds`` (optional) carries the per-phase wall-time
    attribution recorded by the PR 3 tracing spans for each side, so a
    diff artifact also says *which pipeline phase* paid for the change.
    """

    label_a: str
    label_b: str
    router: str
    topology_shape: tuple[int, ...]
    mcl_a: float
    mcl_b: float
    total_a: float
    total_b: float
    moved_load: float
    tasks_moved: int
    moved_tasks: list  # first few (task, node_a, node_b) triples
    hotspots_entered: list  # LinkRef dicts hot in b but not in a
    hotspots_left: list  # LinkRef dicts hot in a but not in b
    top_deltas: list  # [{link, load_a, load_b, delta}] by |delta|
    phase_seconds: dict | None = None

    @property
    def delta_mcl(self) -> float:
        return self.mcl_b - self.mcl_a

    def to_dict(self) -> dict:
        return {
            "schema": NETVIEW_SCHEMA_VERSION,
            "kind": "mapping_diff",
            "label_a": self.label_a,
            "label_b": self.label_b,
            "router": self.router,
            "topology": {"shape": list(self.topology_shape)},
            "mcl_a": self.mcl_a,
            "mcl_b": self.mcl_b,
            "delta_mcl": self.delta_mcl,
            "total_a": self.total_a,
            "total_b": self.total_b,
            "moved_load": self.moved_load,
            "tasks_moved": self.tasks_moved,
            "moved_tasks": [list(t) for t in self.moved_tasks],
            "hotspots_entered": self.hotspots_entered,
            "hotspots_left": self.hotspots_left,
            "top_deltas": self.top_deltas,
            "phase_seconds": self.phase_seconds,
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary_line(self) -> str:
        arrow = "=" if self.delta_mcl == 0 else ("^" if self.delta_mcl > 0 else "v")
        return (
            f"{self.label_a} -> {self.label_b}: MCL {self.mcl_a:.6g} -> "
            f"{self.mcl_b:.6g} ({arrow}{abs(self.delta_mcl):.6g}), "
            f"moved load {self.moved_load:.6g}, tasks moved {self.tasks_moved}"
        )


def diff_mappings(
    router: Router,
    graph: CommGraph,
    mapping_a: Mapping,
    mapping_b: Mapping,
    label_a: str = "a",
    label_b: str = "b",
    top_k: int = 5,
    max_moved_tasks: int = 16,
    phase_seconds_a: dict | None = None,
    phase_seconds_b: dict | None = None,
) -> MappingDiff:
    """Compare two mappings of the same graph under the same router."""
    topo = router.topology
    if mapping_a.topology != mapping_b.topology:
        raise ReproError("mappings target different topologies")
    if mapping_a.num_tasks != mapping_b.num_tasks:
        raise ReproError("mappings place different task counts")
    loads_a = router.link_loads(*mapping_a.network_flows(graph))
    loads_b = router.link_loads(*mapping_b.network_flows(graph))
    valid = topo.channel_valid
    sub_a, sub_b = loads_a[valid], loads_b[valid]
    mcl_a = float(sub_a.max()) if sub_a.size else 0.0
    mcl_b = float(sub_b.max()) if sub_b.size else 0.0
    delta = loads_b - loads_a
    moved = np.flatnonzero(mapping_a.task_to_node != mapping_b.task_to_node)

    def top_slots(loads: np.ndarray) -> list[int]:
        slots = np.flatnonzero(valid)
        hot = slots[np.argsort(-loads[valid], kind="stable")][:top_k]
        return [int(s) for s in hot if loads[s] > 0]

    hot_a, hot_b = set(top_slots(loads_a)), set(top_slots(loads_b))

    def describe(slots) -> list[dict]:
        out = []
        for slot in sorted(slots):
            ref = LinkRef.from_slot(topo, slot)
            out.append({**asdict(ref), "label": ref.label()})
        return out

    delta_order = np.flatnonzero(valid)[
        np.argsort(-np.abs(delta[valid]), kind="stable")
    ][:top_k]
    top_deltas = []
    for slot in delta_order:
        if delta[slot] == 0:
            break
        ref = LinkRef.from_slot(topo, int(slot))
        top_deltas.append(
            {
                "link": {**asdict(ref), "label": ref.label()},
                "load_a": float(loads_a[slot]),
                "load_b": float(loads_b[slot]),
                "delta": float(delta[slot]),
            }
        )
    phases = None
    if phase_seconds_a or phase_seconds_b:
        phases = {
            "a": dict(phase_seconds_a or {}),
            "b": dict(phase_seconds_b or {}),
        }
    return MappingDiff(
        label_a=label_a,
        label_b=label_b,
        router=getattr(router, "name", type(router).__name__),
        topology_shape=tuple(topo.shape),
        mcl_a=mcl_a,
        mcl_b=mcl_b,
        total_a=float(sub_a.sum()) if sub_a.size else 0.0,
        total_b=float(sub_b.sum()) if sub_b.size else 0.0,
        moved_load=float(np.abs(delta[valid]).sum() / 2.0) if sub_a.size else 0.0,
        tasks_moved=int(len(moved)),
        moved_tasks=[
            (int(t), int(mapping_a.task_to_node[t]), int(mapping_b.task_to_node[t]))
            for t in moved[:max_moved_tasks]
        ],
        hotspots_entered=describe(hot_b - hot_a),
        hotspots_left=describe(hot_a - hot_b),
        top_deltas=top_deltas,
        phase_seconds=phases,
    )
