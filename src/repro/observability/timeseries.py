"""Bounded time-series sampling of the metrics registry.

The :class:`MetricsRegistry` is a point-in-time snapshot: between two
scrapes, queue waits and admission decisions vanish. The serve daemon
closes that gap by running a :class:`TimeSeriesRecorder` on its janitor
cadence: each tick snapshots the registry and derives the things a
snapshot alone cannot show — counter *rates* (delta over wall time since
the previous sample) and histogram quantiles (from the snapshot's
``cumulative`` pairs) — into a schema-versioned row held in a ring
buffer, so ``repro top`` and the health endpoint can show trends without
unbounded memory.

:class:`TelemetrySink` persists those rows as JSONL under
``<cache>/telemetry/`` with size-based rotation, same append-only
discipline as trace files: one meta row per writer, then samples. The
files are diagnostics, not state — losing one loses history, never
correctness.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path

from .metrics import MetricsRegistry, quantile_from_cumulative

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetrySink",
    "TimeSeriesRecorder",
]

#: Bump when the sample row shape changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

#: Quantiles derived for every histogram in a sample.
_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


class TimeSeriesRecorder:
    """Ring buffer of derived registry samples.

    ``capacity`` bounds retention (default 720 samples: one hour at the
    daemon's 5 s default interval). Rates are computed against the
    previous *retained* sample, so the first sample after start (or a
    counter reset, e.g. tests clearing the registry) reports no rate
    rather than a negative one.
    """

    def __init__(self, registry: MetricsRegistry, capacity: int = 720):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._registry = registry
        self._samples: deque[dict] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def capacity(self) -> int:
        return self._samples.maxlen or 0

    def sample(self, now: float | None = None) -> dict:
        """Snapshot the registry into a new row and retain it."""
        now = time.time() if now is None else float(now)
        prev = self._samples[-1] if self._samples else None
        dt = now - prev["time_unix"] if prev is not None else 0.0
        prev_metrics = prev["metrics"] if prev is not None else {}

        metrics: dict[str, dict] = {}
        for name, doc in self._registry.snapshot().items():
            kind = doc.get("type")
            if kind == "counter":
                cell = {"type": "counter", "value": doc["value"]}
                before = prev_metrics.get(name)
                if before is not None and before.get("type") == "counter" and dt > 0:
                    # Clamp resets to zero instead of a negative rate.
                    cell["rate"] = max(doc["value"] - before["value"], 0.0) / dt
            elif kind == "gauge":
                cell = {"type": "gauge", "value": doc["value"]}
            elif kind == "histogram":
                cumulative = doc.get("cumulative") or []
                cell = {
                    "type": "histogram",
                    "count": doc["count"],
                    "sum": doc["sum"],
                }
                for q, label in _QUANTILES:
                    cell[label] = quantile_from_cumulative(cumulative, q)
                before = prev_metrics.get(name)
                if before is not None and "count" in before and dt > 0:
                    cell["rate"] = max(doc["count"] - before["count"], 0.0) / dt
            else:
                continue
            metrics[name] = cell

        row = {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "time_unix": now,
            "metrics": metrics,
        }
        self._samples.append(row)
        return row

    def latest(self) -> dict | None:
        return self._samples[-1] if self._samples else None

    def rows(self) -> list[dict]:
        """Retained samples, oldest first."""
        return list(self._samples)

    def series(self, name: str, field: str = "value") -> list[tuple[float, float]]:
        """``(time_unix, value)`` points for one metric field.

        Samples where the metric (or field) is absent are skipped, so a
        metric created mid-run yields a shorter series, not Nones.
        """
        out: list[tuple[float, float]] = []
        for row in self._samples:
            cell = row["metrics"].get(name)
            if cell is None:
                continue
            value = cell.get(field)
            if value is None:
                continue
            out.append((row["time_unix"], value))
        return out


class TelemetrySink:
    """Append-only JSONL persistence with size-based rotation.

    Rows land in ``<directory>/<name>``; when the file would exceed
    ``rotate_bytes`` it is renamed to ``<name>.1`` (shifting prior
    generations up to ``keep``) and a fresh file is started. Every fresh
    file begins with a meta row carrying the schema version and writer
    pid, mirroring the trace-file convention. Writes are best-effort
    diagnostics: rotation uses plain :func:`os.replace` with no fsync.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        name: str = "metrics.jsonl",
        rotate_bytes: int = 4 << 20,
        keep: int = 2,
    ):
        if rotate_bytes < 1024:
            raise ValueError(f"rotate_bytes must be >= 1024, got {rotate_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.name = name
        self.rotate_bytes = rotate_bytes
        self.keep = keep

    @property
    def path(self) -> Path:
        return self.directory / self.name

    def _rotated(self, generation: int) -> Path:
        return self.directory / f"{self.name}.{generation}"

    def _rotate(self) -> None:
        oldest = self._rotated(self.keep)
        if oldest.exists():
            oldest.unlink()
        for generation in range(self.keep - 1, 0, -1):
            src = self._rotated(generation)
            if src.exists():
                os.replace(src, self._rotated(generation + 1))
        os.replace(self.path, self._rotated(1))

    def append(self, row: dict) -> Path:
        """Append one sample row, rotating and stamping meta as needed."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            size = 0
        if size >= self.rotate_bytes:
            self._rotate()
            size = 0
        with path.open("a", encoding="utf-8") as fh:
            if size == 0:
                meta = {
                    "telemetry_schema": TELEMETRY_SCHEMA_VERSION,
                    "kind": "telemetry_meta",
                    "pid": os.getpid(),
                    "time_unix": time.time(),
                }
                fh.write(json.dumps(meta, sort_keys=True) + "\n")
            fh.write(json.dumps(row, sort_keys=True) + "\n")
        return path
