"""Process-wide metrics: counters, gauges, log-scale histograms.

One :class:`MetricsRegistry` per process (:func:`get_registry`) collects
named instruments from every subsystem — MILP solve times, LP sizes, beam
candidates explored, cache hits/misses, degradation events, executor
retries. A :meth:`MetricsRegistry.snapshot` is a plain sorted dict, ready
for JSON, logging, or the CLI's ``--metrics`` table.

Instruments are designed for the hot path: callers bind the instrument
object once (``self._hits = registry.counter("router.stencil_hits")``) and
pay one attribute add per observation. Histograms bucket by power of two
(``bucket e`` counts values in ``[2^e, 2^(e+1))``), which spans the
nanoseconds-to-minutes range of solver timings in ~60 buckets.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "quantile_from_cumulative",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways (last-set or accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def add(self, d: float) -> None:
        self.value += d

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Exponent clamp: 2^-30 (~1ns as seconds) .. 2^63.
_MIN_EXP, _MAX_EXP = -30, 63


class Histogram:
    """Log2-bucketed distribution with count/sum/min/max.

    ``record(v)`` files ``v`` under bucket ``floor(log2(v))`` (clamped);
    non-positive values land in the dedicated ``zero`` bucket.
    """

    __slots__ = ("name", "buckets", "zero", "count", "total", "vmin", "vmax")

    def __init__(self, name: str):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.zero = 0
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def record(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v
        if v <= 0.0:
            self.zero += 1
            return
        e = min(max(int(math.floor(math.log2(v))), _MIN_EXP), _MAX_EXP)
        self.buckets[e] = self.buckets.get(e, 0) + 1

    def quantile(self, q: float) -> float | None:
        """Approximate the ``q``-quantile from the log2 buckets.

        Accurate to within a factor of two (a bucket spans one octave);
        the returned value is the geometric midpoint of the bucket the
        quantile sample falls in. Used by the serve daemon's health
        endpoint for wait-time p50/p95 without storing raw samples.
        Returns ``None`` on an empty histogram.
        """
        if self.count == 0:
            return None
        q = min(max(q, 0.0), 1.0)
        rank = q * (self.count - 1)
        seen = self.zero
        if rank < seen:
            return 0.0
        for e in sorted(self.buckets):
            seen += self.buckets[e]
            if rank < seen:
                return 2.0 ** e * 1.5
        return self.vmax

    def snapshot(self) -> dict:
        buckets = {f"2^{e}": self.buckets[e] for e in sorted(self.buckets)}
        if self.zero:
            buckets = {"zero": self.zero, **buckets}
        # Cumulative ``[upper_bound, count_at_or_below]`` pairs, ending
        # with ``["+Inf", count]`` — the Prometheus bucket shape, and
        # enough to recompute quantiles from a serialized snapshot
        # (:func:`quantile_from_cumulative`) without the instrument.
        cumulative: list[list] = []
        running = 0
        if self.zero:
            running = self.zero
            cumulative.append([0.0, running])
        for e in sorted(self.buckets):
            running += self.buckets[e]
            cumulative.append([2.0 ** (e + 1), running])
        cumulative.append(["+Inf", self.count])
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": buckets,
            "cumulative": cumulative,
        }


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors.

    Creation is locked (instruments may be bound from worker threads);
    observation is lock-free — CPython's GIL makes the float adds safe
    enough for telemetry.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = cls(name)
                    self._instruments[name] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """All instruments as a sorted ``{name: {...}}`` dict."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def reset(self) -> None:
        """Drop every instrument (tests; callers re-bind lazily)."""
        with self._lock:
            self._instruments.clear()

    def report(self) -> str:
        """Human-readable table for the CLI's ``--metrics``."""
        lines = [f"{'metric':<44} {'type':<9} value"]
        for name, snap in self.snapshot().items():
            if snap["type"] == "histogram" and snap["count"]:
                value = (
                    f"count={snap['count']} sum={snap['sum']:.6g} "
                    f"min={snap['min']:.6g} max={snap['max']:.6g}"
                )
            elif snap["type"] == "histogram":
                value = "count=0"
            else:
                value = f"{snap['value']:.6g}"
            lines.append(f"{name:<44} {snap['type']:<9} {value}")
        return "\n".join(lines)


def quantile_from_cumulative(cumulative, q: float) -> float | None:
    """Approximate the ``q``-quantile from a snapshot's ``cumulative`` pairs.

    Works on the serialized form of a histogram — what telemetry rows,
    ``/metrics`` JSON and worker stats files carry — so consumers that
    never see the live :class:`Histogram` (the time-series recorder,
    ``repro top``) can still report honest p50/p95/p99s. Matches
    :meth:`Histogram.quantile`: the geometric midpoint of the log2
    bucket the quantile sample falls in (``upper_bound * 0.75``).
    Returns ``None`` when the histogram is empty.
    """
    if not cumulative:
        return None
    try:
        total = int(cumulative[-1][1])
    except (TypeError, ValueError, IndexError):
        return None
    if total <= 0:
        return None
    rank = min(max(float(q), 0.0), 1.0) * (total - 1)
    prev = 0.0
    for le, cum in cumulative:
        if rank < cum:
            if le == "+Inf":
                return prev
            le = float(le)
            return 0.0 if le <= 0.0 else le * 0.75
        if le != "+Inf":
            prev = float(le)
    return prev


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem records into."""
    return _REGISTRY
