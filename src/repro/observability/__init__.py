"""Observability: pipeline tracing + process-wide metrics.

- :mod:`repro.observability.trace` — nestable spans recorded into a
  per-run tree, exportable as JSONL and Chrome trace-event JSON. Off by
  default: a disabled :func:`span` is a shared no-op.
- :mod:`repro.observability.metrics` — counters, gauges and log-scale
  histograms in one process-wide :class:`MetricsRegistry` with a
  snapshot API.
- :mod:`repro.observability.attribution` — the sparse flow x link
  matrix decomposing per-channel loads into per-flow contributions.
- :mod:`repro.observability.netview` — hotspot reports, load-balance
  statistics, saturation cross-checks and mapping diffs built on the
  attribution, exported as schema-versioned JSON artifacts.
- :mod:`repro.observability.timeseries` — bounded ring-buffer sampling
  of the registry (counter rates, histogram quantiles) with JSONL
  persistence + rotation; the serve daemon's live telemetry source.
- :mod:`repro.observability.prometheus` — text exposition rendering for
  ``GET /metrics?format=prometheus`` and the strict parser the CI smoke
  uses to prove the output is scrapable.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.observability.attribution import (
    FlowLinkAttribution,
    attribute_flows,
    attribute_mapping,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_from_cumulative,
)
from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.timeseries import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetrySink,
    TimeSeriesRecorder,
)
from repro.observability.netview import (
    NETVIEW_SCHEMA_VERSION,
    MappingDiff,
    NetView,
    build_netview,
    diff_mappings,
    gini,
    load_stats,
    netview_summary,
)
from repro.observability.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    activate,
    active_tracer,
    clear_active_tracer,
    event,
    span,
)

__all__ = [
    "NETVIEW_SCHEMA_VERSION",
    "PROMETHEUS_CONTENT_TYPE",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "FlowLinkAttribution",
    "Gauge",
    "Histogram",
    "MappingDiff",
    "MetricsRegistry",
    "NetView",
    "Span",
    "TelemetrySink",
    "TimeSeriesRecorder",
    "Tracer",
    "activate",
    "active_tracer",
    "attribute_flows",
    "attribute_mapping",
    "build_netview",
    "clear_active_tracer",
    "diff_mappings",
    "event",
    "get_registry",
    "gini",
    "load_stats",
    "netview_summary",
    "parse_prometheus",
    "quantile_from_cumulative",
    "render_prometheus",
    "span",
]
