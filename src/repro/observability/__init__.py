"""Observability: pipeline tracing + process-wide metrics.

- :mod:`repro.observability.trace` — nestable spans recorded into a
  per-run tree, exportable as JSONL and Chrome trace-event JSON. Off by
  default: a disabled :func:`span` is a shared no-op.
- :mod:`repro.observability.metrics` — counters, gauges and log-scale
  histograms in one process-wide :class:`MetricsRegistry` with a
  snapshot API.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.observability.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    activate,
    active_tracer,
    event,
    span,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "event",
    "get_registry",
    "span",
]
