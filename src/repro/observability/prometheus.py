"""Prometheus text exposition for :class:`MetricsRegistry` snapshots.

:func:`render_prometheus` turns a registry snapshot into the text-based
exposition format (version 0.0.4) that Prometheus, VictoriaMetrics, and
every compatible scraper understand: counters and gauges as single
samples, histograms as cumulative ``_bucket{le="..."}`` series plus
``_sum``/``_count``, derived from the snapshot's ``cumulative`` pairs.

Metric names are sanitized (dots become underscores) and per-tenant
instruments — ``serve.tenant.<tenant>.<rest>`` — are folded into one
family per ``<rest>`` with a ``tenant`` label, so dashboards can group
and alert across tenants without regex gymnastics.

:func:`parse_prometheus` is the inverse used by tests and the
serve-smoke CI job: a strict parser that raises :class:`ValueError` on
malformed exposition (untyped samples, non-monotone histogram buckets,
``+Inf`` bucket disagreeing with ``_count``), so "the daemon emits
something scrapable" is a checkable invariant, not a hope.
"""

from __future__ import annotations

import re

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "parse_prometheus",
    "render_prometheus",
]

#: Content-Type for the text exposition format understood by Prometheus.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_TENANT = re.compile(r"^serve\.tenant\.([^.]+)\.(.+)$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[^{}]*\})?"  # optional label set
    r" (NaN|[+-]?Inf|[+-]?[0-9][0-9eE.+-]*|\.[0-9][0-9eE.+-]*)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Metric types a ``# TYPE`` line may legally declare.
_FAMILY_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _sanitize(name: str) -> str:
    out = _NAME_OK.sub("_", name)
    if out[:1].isdigit():
        out = "_" + out
    return out


def _split_tenant(name: str) -> tuple[str, dict[str, str]]:
    """Metric name -> (prometheus family name, labels)."""
    m = _TENANT.match(name)
    if m:
        tenant, rest = m.groups()
        return _sanitize(f"serve.tenant.{rest}"), {"tenant": tenant}
    return _sanitize(name), {}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return format(float(value), ".17g")


def render_prometheus(snapshot: dict) -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as text exposition."""
    # Group samples into families: tenant metrics share one family name
    # with distinct label sets, so the # TYPE line is emitted once.
    families: dict[str, dict] = {}
    for name in sorted(snapshot):
        doc = snapshot[name]
        kind = doc.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        fam_name, labels = _split_tenant(name)
        fam = families.setdefault(fam_name, {"type": kind, "samples": []})
        if fam["type"] != kind:
            # Same sanitized name, different instrument types (possible
            # across tenants only through misuse); keep both scrapable.
            fam_name = f"{fam_name}_{kind}"
            fam = families.setdefault(fam_name, {"type": kind, "samples": []})
        fam["samples"].append((labels, doc))

    lines: list[str] = []
    for fam_name in sorted(families):
        fam = families[fam_name]
        lines.append(f"# TYPE {fam_name} {fam['type']}")
        for labels, doc in fam["samples"]:
            if fam["type"] in ("counter", "gauge"):
                lines.append(
                    f"{fam_name}{_labels_text(labels)} {_fmt(doc['value'])}"
                )
                continue
            for le, cum in doc.get("cumulative") or [["+Inf", doc["count"]]]:
                le_text = "+Inf" if le == "+Inf" else _fmt(float(le))
                bucket_labels = {**labels, "le": le_text}
                lines.append(
                    f"{fam_name}_bucket{_labels_text(bucket_labels)} {cum}"
                )
            lab = _labels_text(labels)
            lines.append(f"{fam_name}_sum{lab} {_fmt(doc['sum'])}")
            lines.append(f"{fam_name}_count{lab} {doc['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(text: str) -> float:
    if text == "NaN":
        return float("nan")
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse + validate text exposition; the inverse of the renderer.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``
    where histogram families collect their ``_bucket``/``_sum``/``_count``
    series. Raises :class:`ValueError` on anything a real scraper would
    choke on: unparseable lines, samples without a ``# TYPE``, duplicate
    conflicting types, non-monotone cumulative buckets, or a ``+Inf``
    bucket that disagrees with ``_count``.
    """
    families: dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
                _, _, fam_name, fam_type = parts
                if fam_type not in _FAMILY_TYPES:
                    raise ValueError(
                        f"line {lineno}: unknown metric type {fam_type!r}"
                    )
                prior = families.get(fam_name)
                if prior is not None and prior["type"] != fam_type:
                    raise ValueError(
                        f"line {lineno}: {fam_name} re-typed "
                        f"{prior['type']} -> {fam_type}"
                    )
                families[fam_name] = prior or {"type": fam_type, "samples": []}
            continue  # HELP and other comments are free-form
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample: {raw!r}")
        name, label_text, value_text = m.groups()
        labels: dict[str, str] = {}
        if label_text:
            body = label_text[1:-1].strip()
            if body:
                matched = _LABEL.findall(body)
                stripped = _LABEL.sub("", body).replace(",", "").strip()
                if stripped:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {label_text!r}"
                    )
                labels = dict(matched)
        fam_name = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                fam_name = base
                break
        fam = families.get(fam_name)
        if fam is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE")
        fam["samples"].append((name, labels, _parse_value(value_text)))

    # Histogram invariants, per label set.
    for fam_name, fam in families.items():
        if fam["type"] != "histogram":
            continue
        series: dict[tuple, dict] = {}
        for name, labels, value in fam["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            slot = series.setdefault(key, {"buckets": [], "count": None})
            if name == fam_name + "_bucket":
                if "le" not in labels:
                    raise ValueError(f"{fam_name}: bucket without le label")
                slot["buckets"].append((_parse_value(labels["le"]), value))
            elif name == fam_name + "_count":
                slot["count"] = value
        for key, slot in series.items():
            buckets = slot["buckets"]
            if not buckets:
                raise ValueError(f"{fam_name}{dict(key)}: histogram has no buckets")
            les = [le for le, _ in buckets]
            if les != sorted(les):
                raise ValueError(f"{fam_name}{dict(key)}: le bounds not sorted")
            cums = [c for _, c in buckets]
            if any(b < a for a, b in zip(cums, cums[1:])):
                raise ValueError(
                    f"{fam_name}{dict(key)}: cumulative buckets decrease"
                )
            if les[-1] != float("inf"):
                raise ValueError(f"{fam_name}{dict(key)}: missing +Inf bucket")
            if slot["count"] is not None and cums[-1] != slot["count"]:
                raise ValueError(
                    f"{fam_name}{dict(key)}: +Inf bucket {cums[-1]} "
                    f"!= _count {slot['count']}"
                )
    return families
