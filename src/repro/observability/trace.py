"""Zero-dependency pipeline tracing: nestable spans, JSONL + Chrome export.

A :class:`Tracer` records a tree of :class:`Span`\\ s — one per pipeline
phase — each carrying wall time, CPU time, and arbitrary attributes::

    tracer = Tracer(run_id="map-bgq")
    with activate(tracer):
        with span("phase2.milp", level=3) as sp:
            solve()
            sp.set(status="optimal")
    tracer.write_jsonl("out.jsonl")
    tracer.write_chrome("out.chrome.json")

Design constraints (the hot path runs with tracing *off* by default):

- :func:`span`/:func:`event` are module-level and consult one global; with
  no active tracer they return a shared no-op handle, so a disabled span
  costs one attribute load and one identity check — no allocation beyond
  the caller's kwargs.
- Span content is deterministic apart from the timing fields
  (``start_unix``/``wall_s``/``cpu_s``): ids are assigned depth-first at
  export time, so traces produced by pooled workers can be grafted into a
  parent trace (see :meth:`Tracer.graft`) and re-exported without id
  collisions.
- Exports are schema-versioned (:data:`TRACE_SCHEMA_VERSION`). The JSONL
  file opens with a meta row; the Chrome file is a standard
  ``chrome://tracing`` / Perfetto "trace event" JSON object.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "clear_active_tracer",
    "event",
    "span",
]

#: Version of the JSONL row schema and the span-dict payload shape.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One node of the trace tree.

    Attributes
    ----------
    name:
        Dotted phase label (``"rahtm.pseudo_pin.level"``).
    attrs:
        Arbitrary JSON-able key/value attributes.
    start_unix:
        Wall-clock start (``time.time()``); 0.0 for grafted spans whose
        producer did not record one.
    wall_s / cpu_s:
        Durations filled in when the span closes (events keep 0.0).
    is_event:
        True for zero-duration instant events (degradations, cache hits).
    """

    __slots__ = (
        "name",
        "attrs",
        "start_unix",
        "wall_s",
        "cpu_s",
        "children",
        "is_event",
    )

    def __init__(self, name: str, attrs: dict | None = None, is_event: bool = False):
        self.name = str(name)
        self.attrs = dict(attrs) if attrs else {}
        self.start_unix = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: list[Span] = []
        self.is_event = is_event

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open (or closed) span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "attrs": self.attrs,
            "start_unix": self.start_unix,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.is_event:
            out["event"] = True
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        sp = cls(
            doc.get("name", "?"),
            doc.get("attrs"),
            is_event=bool(doc.get("event")),
        )
        sp.start_unix = float(doc.get("start_unix", 0.0))
        sp.wall_s = float(doc.get("wall_s", 0.0))
        sp.cpu_s = float(doc.get("cpu_s", 0.0))
        sp.children = [cls.from_dict(c) for c in doc.get("children", ())]
        return sp

    def find(self, name: str) -> list["Span"]:
        """Every descendant (including self) whose name matches."""
        hits = [self] if self.name == name else []
        for child in self.children:
            hits.extend(child.find(name))
        return hits

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_s:.6f}s, "
            f"children={len(self.children)})"
        )


class _SpanHandle:
    """Context manager opening/closing one real span."""

    __slots__ = ("_tracer", "_span", "_t0", "_c0")

    def __init__(self, tracer: "Tracer", sp: Span):
        self._tracer = tracer
        self._span = sp

    def __enter__(self) -> Span:
        sp = self._span
        sp.start_unix = time.time()
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self._tracer._push(sp)
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        sp = self._span
        sp.wall_s = time.perf_counter() - self._t0
        sp.cpu_s = time.process_time() - self._c0
        if exc_type is not None:
            sp.attrs["error"] = exc_type.__name__
        self._tracer._pop(sp)
        return False  # never swallow exceptions


class _NullSpan:
    """Shared no-op handle returned when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects one run's span tree.

    The tracer keeps an open-span stack; :meth:`span` attaches new spans
    under the innermost open one (or as a root). Spans left open by an
    exception are closed by their handle's ``__exit__`` on unwind, so the
    stack can never leak.

    Long-lived processes (the serve daemon) pass ``sink`` and/or
    ``max_roots``: whenever the stack empties, completed root spans are
    appended to the ``sink`` JSONL file (meta row written once per
    tracer, ids continuing across flushes) and in-memory retention is
    trimmed to the newest ``max_roots`` roots — a week of ``repro
    serve`` batches streams to disk instead of accumulating in RAM.
    :meth:`rows`/:meth:`write_jsonl` keep their batch semantics over
    whatever is still retained.
    """

    def __init__(
        self,
        run_id: str = "",
        sink: str | os.PathLike | None = None,
        max_roots: int | None = None,
    ):
        if max_roots is not None and max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.run_id = str(run_id)
        #: Owning process: a forked pool worker inherits the parent's
        #: active tracer, whose recordings would die with the fork's
        #: address space. Workers compare pids to decide whether the
        #: active tracer is actually theirs (see execute_mapping_job).
        self.pid = os.getpid()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.sink = Path(sink) if sink is not None else None
        self.max_roots = max_roots
        self._sink_started = False
        self._flushed = 0  # roots[:_flushed] are already in the sink
        self._next_id = 1  # first id for the next sink flush

    # -- recording ----------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        return _SpanHandle(self, Span(name, attrs))

    def event(self, name: str, **attrs) -> Span:
        """Record a zero-duration instant event under the open span."""
        sp = Span(name, attrs, is_event=True)
        sp.start_unix = time.time()
        self._attach(sp)
        return sp

    def graft(self, span_dicts, **extra_attrs) -> list[Span]:
        """Attach serialized subtrees (e.g. from a pooled worker's payload)
        under the currently open span; ``extra_attrs`` are merged into each
        grafted root so merged traces stay attributable to their job."""
        grafted = []
        for doc in span_dicts or ():
            sp = Span.from_dict(doc)
            sp.attrs.update(extra_attrs)
            self._attach(sp)
            grafted.append(sp)
        return grafted

    def _attach(self, sp: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)

    def _push(self, sp: Span) -> None:
        self._attach(sp)
        self._stack.append(sp)

    def _pop(self, sp: Span) -> None:
        # Tolerate out-of-order pops (a handle closed twice): unwind to sp.
        while self._stack:
            top = self._stack.pop()
            if top is sp:
                break
        if not self._stack and (self.sink is not None or self.max_roots is not None):
            self._drain_roots()

    def _drain_roots(self) -> None:
        """Flush completed roots to the sink and trim retention."""
        if self.sink is not None and self._flushed < len(self.roots):
            fresh = self.roots[self._flushed :]
            try:
                self._append_to_sink(fresh)
            except OSError:
                pass  # diagnostics only — never fail the traced work
            self._flushed = len(self.roots)
        if self.max_roots is not None and len(self.roots) > self.max_roots:
            drop = len(self.roots) - self.max_roots
            del self.roots[:drop]
            self._flushed = max(self._flushed - drop, 0)

    def _append_to_sink(self, roots: list[Span]) -> None:
        rows = self._rows_for(roots, self._next_id)
        if not rows:
            return
        self.sink.parent.mkdir(parents=True, exist_ok=True)
        with self.sink.open("a") as fh:
            if not self._sink_started:
                meta = {
                    "trace_schema": TRACE_SCHEMA_VERSION,
                    "run_id": self.run_id,
                    "streaming": True,
                }
                fh.write(json.dumps(meta, sort_keys=True) + "\n")
                self._sink_started = True
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        self._next_id += len(rows)

    # -- export -------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.roots]

    def rows(self) -> list[dict]:
        """Flatten the tree depth-first into JSONL-ready rows.

        Ids are assigned during the walk, so they are unique within one
        export by construction — including across grafted worker subtrees.
        """
        return self._rows_for(self.roots, 1)

    @staticmethod
    def _rows_for(roots: list[Span], first_id: int) -> list[dict]:
        out: list[dict] = []

        def visit(sp: Span, parent: int | None, depth: int) -> None:
            row = {
                "id": first_id + len(out),
                "parent": parent,
                "depth": depth,
                "name": sp.name,
                "attrs": sp.attrs,
                "start_unix": sp.start_unix,
                "wall_s": sp.wall_s,
                "cpu_s": sp.cpu_s,
                "event": sp.is_event,
            }
            out.append(row)
            my_id = row["id"]
            for child in sp.children:
                visit(child, my_id, depth + 1)

        for root in roots:
            visit(root, None, 0)
        return out

    def write_jsonl(self, path) -> Path:
        """One meta row, then one row per span, depth-first."""
        path = Path(path)
        rows = self.rows()
        meta = {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "spans": len(rows),
        }
        with path.open("w") as fh:
            fh.write(json.dumps(meta, sort_keys=True) + "\n")
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        return path

    def write_chrome(self, path) -> Path:
        """A ``chrome://tracing`` / Perfetto-loadable trace event file."""
        path = Path(path)
        rows = self.rows()
        starts = [r["start_unix"] for r in rows if r["start_unix"] > 0]
        base = min(starts) if starts else 0.0
        pid = os.getpid()
        events = []
        for row in rows:
            ts = max(row["start_unix"] - base, 0.0) * 1e6
            ev = {
                "name": row["name"],
                "ph": "i" if row["event"] else "X",
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "args": {str(k): v for k, v in row["attrs"].items()},
            }
            if row["event"]:
                ev["s"] = "t"  # thread-scoped instant marker
            else:
                ev["dur"] = row["wall_s"] * 1e6
                ev["args"]["cpu_s"] = row["cpu_s"]
            events.append(ev)
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"run_id": self.run_id, "trace_schema": TRACE_SCHEMA_VERSION},
        }
        with path.open("w") as fh:
            json.dump(doc, fh, default=str)
        return path


# -- module-level current tracer -------------------------------------------------------
_ACTIVE: Tracer | None = None


class _Activation:
    """Context manager installing a tracer as the process-wide current one."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer | None):
        self._tracer = tracer

    def __enter__(self) -> Tracer | None:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def activate(tracer: Tracer | None) -> _Activation:
    """``with activate(tracer): ...`` — spans inside record into it."""
    return _Activation(tracer)


def active_tracer() -> Tracer | None:
    return _ACTIVE


def clear_active_tracer() -> None:
    """Forcibly drop any active tracer (test isolation; not for pipelines —
    they should exit their :func:`activate` context instead)."""
    global _ACTIVE
    _ACTIVE = None


def span(name: str, **attrs):
    """Open a span on the active tracer; a cheap no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an instant event on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(name, **attrs)
