"""Per-tenant SLO rules evaluated on the daemon's telemetry cadence.

An :class:`SloPolicy` names the thresholds an operator cares about —
per-tenant p99 end-to-end latency, per-tenant reject rate, fleet-wide
lease deaths per minute — and :class:`SloEvaluator` turns the metrics
registry into a list of *firing alerts* each time the janitor's
telemetry tick runs. Alerts are plain dicts surfaced verbatim in
``/healthz`` (and rendered by ``repro top``); each carries ``since_unix``
so an alert that keeps firing across ticks keeps its original onset
time rather than flapping.

The evaluator reads the same instruments the daemon already records
(``serve.tenant.<t>.e2e_seconds`` / ``.submitted`` / ``.rejected``,
``fleet.reclaims``), so the rules need no extra bookkeeping in the
request path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.observability.metrics import MetricsRegistry

__all__ = ["SloEvaluator", "SloPolicy"]


@dataclass(frozen=True)
class SloPolicy:
    """Alert thresholds; ``None`` disables a rule.

    ``min_samples`` guards the ratio/quantile rules against firing off
    one unlucky request: a tenant needs at least that many e2e samples
    (or submissions, for the reject rule) before its rules evaluate.
    """

    p99_latency_seconds: float | None = None
    reject_rate: float | None = None
    lease_deaths_per_minute: float | None = None
    min_samples: int = 1

    def __post_init__(self):
        for field in ("p99_latency_seconds", "reject_rate",
                      "lease_deaths_per_minute"):
            value = getattr(self, field)
            if value is not None and value <= 0:
                raise ValueError(f"{field} must be > 0, got {value}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}")

    @property
    def active(self) -> bool:
        return any(value is not None for value in (
            self.p99_latency_seconds, self.reject_rate,
            self.lease_deaths_per_minute))


class SloEvaluator:
    """Stateful rule evaluation over a metrics registry.

    State is minimal: which alerts were firing at the previous tick
    (for stable ``since_unix``) and the previous ``fleet.reclaims``
    reading (the lease-death rule is a rate over the tick interval).
    """

    def __init__(self, registry: MetricsRegistry, policy: SloPolicy):
        self.registry = registry
        self.policy = policy
        self._firing: dict[tuple, dict] = {}
        self._last_reclaims: tuple[float, float] | None = None

    def evaluate(self, tenants, now: float | None = None) -> list[dict]:
        """Evaluate every rule; returns the currently firing alerts."""
        now = time.time() if now is None else float(now)
        policy = self.policy
        if not policy.active:
            return []
        current: dict[tuple, dict] = {}

        for tenant in sorted(set(tenants)):
            prefix = f"serve.tenant.{tenant}"
            if policy.p99_latency_seconds is not None:
                hist = self.registry.histogram(f"{prefix}.e2e_seconds")
                if hist.count >= policy.min_samples:
                    p99 = hist.quantile(0.99)
                    if p99 is not None and p99 > policy.p99_latency_seconds:
                        current[("p99_latency", tenant)] = {
                            "value": p99,
                            "threshold": policy.p99_latency_seconds,
                            "detail": (f"e2e p99 {p99:.4g}s > "
                                       f"{policy.p99_latency_seconds:.4g}s "
                                       f"over {hist.count} jobs"),
                        }
            if policy.reject_rate is not None:
                submitted = self.registry.counter(f"{prefix}.submitted").value
                rejected = self.registry.counter(f"{prefix}.rejected").value
                if submitted >= policy.min_samples and submitted > 0:
                    rate = rejected / submitted
                    if rate > policy.reject_rate:
                        current[("reject_rate", tenant)] = {
                            "value": rate,
                            "threshold": policy.reject_rate,
                            "detail": (f"{rejected:.0f}/{submitted:.0f} "
                                       f"submissions rejected "
                                       f"({rate:.1%} > "
                                       f"{policy.reject_rate:.1%})"),
                        }

        if policy.lease_deaths_per_minute is not None:
            reclaims = self.registry.counter("fleet.reclaims").value
            if self._last_reclaims is not None:
                then, before = self._last_reclaims
                dt = now - then
                if dt > 0:
                    per_minute = max(reclaims - before, 0.0) / dt * 60.0
                    if per_minute > policy.lease_deaths_per_minute:
                        current[("lease_deaths", None)] = {
                            "value": per_minute,
                            "threshold": policy.lease_deaths_per_minute,
                            "detail": (f"{per_minute:.2f} lease deaths/min "
                                       f"> {policy.lease_deaths_per_minute:.2f}"),
                        }
            self._last_reclaims = (now, reclaims)

        firing: dict[tuple, dict] = {}
        for key, info in current.items():
            rule, tenant = key
            since = self._firing.get(key, {}).get("since_unix", now)
            firing[key] = {
                "rule": rule, "tenant": tenant, "since_unix": since, **info}
        self._firing = firing
        return [firing[key] for key in sorted(firing, key=str)]
