"""Deadline-budget admission control for the mapping daemon.

The daemon's currency is the same one PR 2's
:class:`~repro.resilience.budget.Budget` spends: **wall-clock seconds of
mapping deadline**. Every job entering the queue reserves its declared
deadline (or, when it declares none, a configured default cost
estimate); the controller tracks the aggregate outstanding reservation
against a fixed capacity — ``workers × horizon`` seconds of compute the
operator is willing to promise at once.

When a submission would push the aggregate past capacity the controller
does what the degradation ladder taught the mapper to survive:

- **degrade** — grant whatever capacity remains as a *tighter* deadline
  (never below ``min_grant_seconds``). The granted figure flows into
  the job's :class:`~repro.service.jobs.JobRuntime`, which builds the
  actual :class:`~repro.resilience.budget.Budget` the mapper runs
  under, so an over-committed daemon trades mapping quality for
  admission instead of queueing unboundedly;
- **reject** — below the minimum useful grant there is nothing left to
  degrade to: the submission is refused (HTTP 429) and the client
  should retry later or at lower demand.

Reservations are released when the job finishes, fails, is cancelled,
or is drained. The controller is thread-safe and purely arithmetical —
time does not deplete it; only completion returns capacity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.observability.metrics import get_registry

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``action`` is ``"admit"``, ``"degrade"`` or ``"reject"``.
    ``granted_seconds`` is the deadline the job must run under (``None``
    = no daemon-imposed deadline); ``cost_seconds`` is the reservation
    held until :meth:`AdmissionController.release`.
    """

    action: str
    cost_seconds: float
    granted_seconds: float | None
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action != "reject"

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "cost_seconds": self.cost_seconds,
            "granted_seconds": self.granted_seconds,
            "reason": self.reason,
        }


class AdmissionController:
    """Reserve-or-refuse ledger over deadline-seconds.

    Parameters
    ----------
    capacity_seconds:
        Aggregate deadline demand the daemon will hold at once
        (queued + running). ``None`` disables admission control —
        everything is admitted untouched.
    default_cost_seconds:
        Reservation for jobs that declare no deadline of their own.
    min_grant_seconds:
        Smallest degraded deadline worth granting; below this remaining
        capacity, submissions are rejected outright.
    """

    def __init__(self, capacity_seconds: float | None = None,
                 default_cost_seconds: float = 10.0,
                 min_grant_seconds: float = 0.5):
        if capacity_seconds is not None and capacity_seconds <= 0:
            raise ConfigError("capacity_seconds must be > 0 (or None)")
        if default_cost_seconds <= 0:
            raise ConfigError("default_cost_seconds must be > 0")
        if min_grant_seconds <= 0:
            raise ConfigError("min_grant_seconds must be > 0")
        self.capacity_seconds = capacity_seconds
        self.default_cost_seconds = default_cost_seconds
        self.min_grant_seconds = min_grant_seconds
        self.outstanding_seconds = 0.0
        self._lock = threading.Lock()

    def remaining(self) -> float:
        if self.capacity_seconds is None:
            return float("inf")
        with self._lock:
            return self.capacity_seconds - self.outstanding_seconds

    def admit(self, deadline_seconds: float | None = None,
              force: bool = False) -> AdmissionDecision:
        """Try to reserve capacity for one job.

        ``deadline_seconds`` is the client's requested budget (``None``
        = none requested; the default cost estimate is reserved and no
        deadline is imposed unless degradation demands one). ``force``
        admits regardless of capacity — used when requeuing jobs that
        were already admitted before a restart, which must never bounce.
        """
        requested = deadline_seconds
        cost = (self.default_cost_seconds if requested is None
                else float(requested))
        registry = get_registry()
        with self._lock:
            if self.capacity_seconds is None or force:
                self.outstanding_seconds += cost
                registry.counter("serve.admitted").inc()
                return AdmissionDecision("admit", cost, requested)
            free = self.capacity_seconds - self.outstanding_seconds
            if cost <= free:
                self.outstanding_seconds += cost
                registry.counter("serve.admitted").inc()
                return AdmissionDecision("admit", cost, requested)
            if free >= self.min_grant_seconds:
                # Over-committed but not dry: grant the remainder as a
                # tightened deadline and let the mapper's degradation
                # ladder absorb the squeeze.
                self.outstanding_seconds += free
                registry.counter("serve.admission_degraded").inc()
                return AdmissionDecision(
                    "degrade", free, free,
                    reason=(f"queue demand exceeds capacity "
                            f"({self.capacity_seconds:.3g}s); deadline "
                            f"tightened from "
                            f"{'none' if requested is None else f'{requested:.3g}s'} "
                            f"to {free:.3g}s"),
                )
            registry.counter("serve.admission_rejected").inc()
            return AdmissionDecision(
                "reject", 0.0, None,
                reason=(f"aggregate deadline demand "
                        f"({self.outstanding_seconds:.3g}s) exhausts "
                        f"capacity ({self.capacity_seconds:.3g}s); "
                        f"retry later"),
            )

    def release(self, decision: AdmissionDecision) -> None:
        """Return a finished/cancelled/drained job's reservation."""
        if not decision.admitted or decision.cost_seconds <= 0:
            return
        with self._lock:
            self.outstanding_seconds = max(
                0.0, self.outstanding_seconds - decision.cost_seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity_seconds": self.capacity_seconds,
                "outstanding_seconds": self.outstanding_seconds,
                "default_cost_seconds": self.default_cost_seconds,
                "min_grant_seconds": self.min_grant_seconds,
            }
